"""Setup shim: keeps `pip install -e .` working on offline environments
without the `wheel` package (falls back to legacy setuptools develop)."""
from setuptools import setup

setup()
