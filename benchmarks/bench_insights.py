"""Benchmarks regenerating the §3 insight figures and the video tables.

Covers: Tab. 1, Tab. 2, Tab. 3, Fig. 1a-d, Fig. 2a-d, Fig. 15, Fig. 19.
"""

import numpy as np

from benchmarks.conftest import format_rows
from repro.experiments import figures


def test_tables(benchmark):
    """Tab. 1 + Tab. 2 + Tab. 3: video and ladder characterization."""

    def run():
        return (
            figures.table1_videos(),
            figures.table2_ladder(),
            figures.table3_youtube(),
        )

    table1, table2, table3 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(table1, ["video", "genre", "std_mbps"], "Tab. 1"))
    print(format_rows(
        table2, ["quality", "resolution", "avg_bitrate_mbps", "total_size_mb"],
        "Tab. 2",
    ))
    print(format_rows(table3, ["video", "genre", "std_mbps"], "Tab. 3"))
    assert len(table1) == 4 and len(table2) == 13 and len(table3) == 10


def test_fig1_drop_tolerance(benchmark):
    """Fig. 1a-c: tolerable frame-drop CDFs at Q12/0.99, Q9/0.99, Q9/0.95."""

    def run():
        return figures.fig1_drop_tolerance(segment_stride=3)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for case, per_video in out.items():
        for video, cdf in per_video.items():
            rows.append(
                {
                    "case": case,
                    "video": video,
                    "median_drop_pct": float(np.median(cdf["x"])),
                    "p90_drop_pct": float(np.percentile(cdf["x"], 90)),
                }
            )
    print(format_rows(
        rows, ["case", "video", "median_drop_pct", "p90_drop_pct"],
        "Fig. 1a-c: frame-drop tolerance",
    ))
    # Headline: at Q12/0.99 the canonical videos tolerate >=10% median.
    for video in ("bbb", "ed", "sintel", "tos"):
        med = float(np.median(out["Q12/0.99"][video]["x"]))
        assert med >= 8.0, f"{video} Q12 tolerance collapsed: {med}"
    # Tolerance shrinks at Q9/0.99 and recovers at Q9/0.95.
    for video in ("bbb", "tos"):
        q12 = float(np.median(out["Q12/0.99"][video]["x"]))
        q9_99 = float(np.median(out["Q9/0.99"][video]["x"]))
        q9_95 = float(np.median(out["Q9/0.95"][video]["x"]))
        assert q9_99 < q12
        assert q9_95 > q9_99


def test_fig1d_low_quality_ssim(benchmark):
    """Fig. 1d: most Q9/Q6 segments score below 0.99."""

    def run():
        return figures.fig1d_low_quality_ssim()

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, cdf in out.items():
        below = float(np.mean(cdf["x"] < 0.99))
        rows.append({"series": label, "frac_below_0.99": below,
                     "median_ssim": float(np.median(cdf["x"]))})
    print(format_rows(
        rows, ["series", "frac_below_0.99", "median_ssim"],
        "Fig. 1d: low-quality SSIM",
    ))
    assert float(np.mean(out["bbb/Q9"]["x"] < 0.99)) > 0.5
    assert float(np.median(out["bbb/Q6"]["x"])) < float(
        np.median(out["bbb/Q9"]["x"])
    )


def test_fig2a_positions(benchmark):
    """Fig. 2a: droppable frames are distributed across the segment."""

    def run():
        return figures.fig2a_droppable_positions(segment_stride=5)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for video, fractions in out.items():
        # The I-frame is never droppable; the rest of the segment has
        # droppable frames spread around, not only at the tail.
        assert fractions[0] == 0.0
        first_half = fractions[1:48].mean()
        second_half = fractions[48:].mean()
        print(
            f"Fig. 2a {video}: droppable fraction first half "
            f"{first_half:.2f}, second half {second_half:.2f}"
        )
        assert first_half > 0.05


def test_fig2b_orderings(benchmark):
    """Fig. 2b: QoE ranking beats naive tail-only drops."""

    def run():
        return figures.fig2b_ordering_comparison(segment_stride=3)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for video, data in out.items():
        ranked = float(np.median(data["ranked"]["x"]))
        tail = float(np.median(data["tail"]["x"]))
        print(
            f"Fig. 2b {video}: median tolerance ranked {ranked:.1f}% vs "
            f"tail {tail:.1f}%; referenced-drop fraction ranked "
            f"{data['ranked_referenced_fraction']:.2f} vs tail "
            f"{data['tail_referenced_fraction']:.2f}"
        )
        assert ranked >= tail
        assert (
            data["tail_referenced_fraction"]
            >= data["ranked_referenced_fraction"]
        )


def test_fig2cd_virtual_levels(benchmark):
    """Fig. 2c/d: virtual levels sit between the real ladder rungs."""

    def run():
        return figures.fig2cd_virtual_levels()

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for video, series in out.items():
        q12 = float(np.median(series["Q12"]["x"]))
        q11 = float(np.median(series["Q11"]["x"]))
        v99 = float(np.median(series["Q12/0.99"]["x"]))
        v95 = float(np.median(series["Q12/0.95"]["x"]))
        print(
            f"Fig. 2c/d {video}: median Mbps Q12 {q12:.1f} > Q12/0.99 "
            f"{v99:.1f} > Q12/0.95 {v95:.1f} (Q11 {q11:.1f})"
        )
        assert v99 < q12
        assert v95 <= v99


def test_fig15_vbr(benchmark):
    """Fig. 15: capped-VBR segment-size variation per level."""

    def run():
        return figures.fig15_vbr_variation()

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for video, series in out.items():
        q12 = series["Q12"]
        print(
            f"Fig. 15 {video}: Q12 mean {q12.mean():.1f} Mbps, "
            f"min {q12.min():.1f}, max {q12.max():.1f}"
        )
        assert q12.max() <= 2.2 * 10.0
        assert q12.max() / max(q12.min(), 0.1) > 1.5  # real variation


def test_fig19_youtube(benchmark):
    """Fig. 19: the insights generalize; P9/P10 are the outliers."""

    def run():
        return figures.fig19_youtube_tolerance(segment_stride=3)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    q12 = out["Q12/0.99"]
    rows = [
        {"video": video, "median_drop_pct": float(np.median(cdf["x"]))}
        for video, cdf in q12.items()
    ]
    print(format_rows(rows, ["video", "median_drop_pct"],
                      "Fig. 19 (Q12/0.99)"))
    p9 = float(np.median(q12["p9"]["x"]))
    p10 = float(np.median(q12["p10"]["x"]))
    others = [
        float(np.median(q12[v]["x"])) for v in ("p1", "p5", "p6", "p7")
    ]
    assert p9 > max(others)  # the static unboxing video tolerates most
    assert p10 < min(others) + 8  # the dance video tolerates least-ish
    # At Q9/0.95 P9 tolerates massive drops.
    p9_q9 = float(np.median(out["Q9/0.95"]["p9"]["x"]))
    assert p9_q9 > 50.0
