"""Benchmark for §5.3 / Fig. 14: the simulated user survey."""

from benchmarks.conftest import format_rows
from repro.experiments.survey import DIMENSIONS, fig14_survey


def test_fig14_survey(benchmark):
    """Fig. 14: MOS deltas and the preference majority."""

    def run():
        return fig14_survey(clips=8, participants=54, seed=0)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "dimension": dim,
            "VOXEL": result.mos["VOXEL"][dim],
            "BOLA": result.mos["BOLA"][dim],
            "delta": result.mos_delta(dim),
        }
        for dim in DIMENSIONS
    ]
    print(format_rows(
        rows, ["dimension", "VOXEL", "BOLA", "delta"],
        "Fig. 14: mean opinion scores (paper deltas: clarity -0.49, "
        "glitches -0.19, fluidity +1.7, experience +0.77)",
    ))
    print(
        f"Preference for VOXEL: {result.preference_voxel * 100:.0f}% "
        f"(paper: 84%); would stop: VOXEL "
        f"{result.would_stop['VOXEL'] * 100:.0f}% / BOLA "
        f"{result.would_stop['BOLA'] * 100:.0f}% (paper: 10% / 31%)"
    )
    # The paper's headline: a large majority prefers VOXEL, driven by
    # fluidity, while clarity dips slightly.
    assert result.preference_voxel > 0.6
    assert result.mos_delta("fluidity") > 0.5
    assert result.mos_delta("experience") > 0.0
    assert result.mos_delta("clarity") < 0.2
    assert result.would_stop["VOXEL"] < result.would_stop["BOLA"]
