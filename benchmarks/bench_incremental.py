"""Benchmarks for §5.1 — vanilla ABR algorithms over QUIC vs QUIC*.

Covers Fig. 3 (bufRatio), Fig. 4 (bitrates) and Fig. 5 (cross traffic).
"""

import numpy as np

from benchmarks.conftest import format_rows
from repro.experiments import figures


def _group(rows, keys):
    out = {}
    for row in rows:
        out[tuple(row[k] for k in keys)] = row
    return out


def test_fig3_fig4_vanilla_quicstar(benchmark, reduced_reps):
    """Fig. 3/4: MPC and BOLA gain rebuffering headroom from QUIC*."""

    def run():
        return figures.fig3_fig4_vanilla_quicstar(
            videos=("bbb",),
            buffers=(5, 7),
            repetitions=reduced_reps,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows,
        ["abr", "trace", "buffer", "transport", "buf_ratio_p90",
         "bitrate_kbps"],
        "Fig. 3/4: vanilla ABRs, QUIC vs QUIC*",
    ))
    grouped = _group(rows, ("abr", "trace", "buffer", "transport"))
    improvements = []
    for abr in ("mpc", "bola"):
        for trace in ("tmobile", "verizon"):
            for buffer in (5, 7):
                q = grouped[(abr, trace, buffer, "Q")]["buf_ratio_p90"]
                qstar = grouped[(abr, trace, buffer, "Q*")]["buf_ratio_p90"]
                improvements.append(q - qstar)
    # QUIC* lowers rebuffering for vanilla ABRs on aggregate (Fig. 3),
    # though not necessarily in every single cell (the paper notes BOLA
    # regressions in some settings).
    assert float(np.mean(improvements)) >= -0.005


def test_fig5_cross_traffic(benchmark):
    """Fig. 5: vanilla ABRs with QUIC* under 20 Mbps cross traffic."""

    def run():
        return figures.fig5_cross_traffic_vanilla(
            videos=("bbb",),
            buffers=(5, 7),
            repetitions=2,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows,
        ["abr", "buffer", "transport", "buf_ratio_p90", "bitrate_kbps"],
        "Fig. 5: cross traffic (20 Mbps)",
    ))
    assert all(row["bitrate_kbps"] > 0 for row in rows)
    grouped = _group(rows, ("abr", "buffer", "transport"))
    deltas = [
        grouped[(abr, buf, "Q")]["buf_ratio_p90"]
        - grouped[(abr, buf, "Q*")]["buf_ratio_p90"]
        for abr in ("bola", "mpc")
        for buf in (5, 7)
    ]
    assert float(np.mean(deltas)) >= -0.01
