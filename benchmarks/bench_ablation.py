"""Ablation benchmarks: component isolation and design-choice studies.

Covers Fig. 10 (BOLA vs BOLA-SSIM vs VOXEL on the 3G corpus), Fig. 18c/d
(partial-reliability ablation), and the §4.2 selective-retransmission
residual-loss numbers.
"""

import numpy as np

from benchmarks.conftest import format_rows
from repro.experiments import figures


def test_fig10_components(benchmark):
    """Fig. 10: each ABR* ingredient isolated over 3G commute traces."""

    def run():
        return figures.fig10_components(trace_count=40)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "system": system,
            "mean_bufratio_pct": data["mean_buf_ratio"] * 100.0,
            "mean_ssim": data["mean_ssim"],
        }
        for system, data in out.items()
    ]
    print(format_rows(
        rows, ["system", "mean_bufratio_pct", "mean_ssim"],
        "Fig. 10: component isolation (3G corpus, 1-segment buffer)",
    ))
    # VOXEL rebuffers drastically less than both BOLA flavours; the
    # BOLA-SSIM step alone does not reduce rebuffering (the paper even
    # measures a slight increase).
    assert out["VOXEL"]["mean_buf_ratio"] < 0.7 * out["BOLA"]["mean_buf_ratio"]
    assert (
        out["BOLA-SSIM"]["mean_buf_ratio"]
        > 0.75 * out["BOLA"]["mean_buf_ratio"]
    )


def test_fig18cd_reliability(benchmark, reduced_reps):
    """Fig. 18c/d: disabling unreliable streams costs rebuffering."""

    def run():
        return figures.fig18cd_reliability_ablation(
            videos=("bbb",), traces=("tmobile", "verizon"),
            buffers=(1, 3), repetitions=reduced_reps,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows, ["trace", "buffer", "system", "buf_ratio_p90", "ssim"],
        "Fig. 18c/d: partial reliability on/off",
    ))
    grouped = {
        (r["trace"], r["buffer"], r["system"]): r for r in rows
    }
    deltas = []
    for trace in ("tmobile", "verizon"):
        for buffer in (1, 3):
            with_pr = grouped[(trace, buffer, "VOXEL")]["buf_ratio_p90"]
            without = grouped[(trace, buffer, "VOXEL rel")]["buf_ratio_p90"]
            deltas.append(without - with_pr)
    # Partial reliability reduces rebuffering on aggregate (the paper
    # sees the bufRatio double without it).
    assert float(np.mean(deltas)) >= -0.005


def test_selective_retransmission(benchmark):
    """§4.2: residual loss after selective retransmission stays small."""

    def run():
        return figures.selective_retransmission_residual(
            buffers=(2, 3, 7), repetitions=4
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows, ["buffer", "residual_loss_pct"],
        "§4.2: residual loss after selective retransmission "
        "(paper: 0.9/1.5/1.8 %)",
    ))
    for row in rows:
        assert row["residual_loss_pct"] < 5.0
