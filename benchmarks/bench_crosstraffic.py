"""Benchmarks for Fig. 12: VOXEL vs BOLA under Harpoon-style cross traffic."""

import numpy as np

from benchmarks.conftest import format_rows
from repro.experiments import figures


def test_fig12_cross_traffic(benchmark):
    """Fig. 12: 20 Mbps of competing flows on a 20 Mbps link."""

    def run():
        return figures.fig12_cross_traffic(
            videos=("bbb",), buffers=(1, 3, 7), repetitions=2
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows, ["buffer", "system", "buf_ratio_p90", "bitrate_kbps"],
        "Fig. 12: cross traffic (20 Mbps average)",
    ))
    grouped = {(r["buffer"], r["system"]): r for r in rows}
    for buffer in (1, 3, 7):
        voxel = grouped[(buffer, "VOXEL")]
        bola = grouped[(buffer, "BOLA")]
        # VOXEL keeps rebuffering at/below BOLA's under contention...
        assert voxel["buf_ratio_p90"] <= bola["buf_ratio_p90"] + 0.01
        # ...without collapsing the bitrate.
        assert voxel["bitrate_kbps"] > 0.5 * bola["bitrate_kbps"]
    # VOXEL at a 1-segment buffer experiences low rebuffering.
    assert grouped[(1, "VOXEL")]["buf_ratio_p90"] < 0.1
