"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper at a reduced
repetition count (the full protocol's 30 repetitions per cell are a
``repetitions=`` argument away) and prints the resulting rows/series in a
paper-like layout.  Run with::

    pytest benchmarks/ --benchmark-only -s

The printed output is the reproduction artifact; the benchmark timings
document the cost of regenerating each figure.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks share prepared videos heavily; warm the cache once so
    # per-figure timings measure the experiment, not the one-time prep.
    from repro.prep.prepare import get_prepared

    for video in ("bbb", "tos"):
        get_prepared(video)


@pytest.fixture(scope="session")
def reduced_reps() -> int:
    """Repetitions per experiment cell (paper: 30)."""
    return 3


def format_rows(rows, columns, title):
    """Render experiment rows as an aligned text table."""
    lines = [f"\n=== {title} ==="]
    header = " | ".join(f"{c:>14s}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:14.4g}")
            else:
                cells.append(f"{str(value):>14s}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
