"""Extension benchmark: live / low-latency streaming.

Not a paper figure per se — the paper motivates VOXEL with live
streaming and evaluates "live-streaming-like settings" through small
buffers (Fig. 6).  This benchmark makes the live constraint explicit
(segments become available at the live edge; latency is the metric) and
verifies that VOXEL's small-buffer advantage translates into flatter
end-to-end latency.
"""

import numpy as np

from benchmarks.conftest import format_rows
from repro.abr import make_abr
from repro.network import get_trace
from repro.player import stream_live
from repro.prep.prepare import get_prepared


def test_live_latency(benchmark):
    """Live broadcast: end-to-end latency of BOLA vs VOXEL."""

    def run():
        prepared = get_prepared("bbb")
        trace = get_trace("tmobile")
        rows = []
        for buffer_segments in (1, 2):
            for label, abr_name, pr in (
                ("BOLA", "bola", False),
                ("VOXEL", "abr_star", True),
            ):
                latencies, stalls = [], []
                for i in range(4):
                    abr = make_abr(abr_name, prepared=prepared)
                    live = stream_live(
                        prepared, abr, trace.shifted(i * 80.0),
                        buffer_segments=buffer_segments,
                        encoder_delay=1.0,
                        partially_reliable=pr,
                    )
                    latencies.append(live.mean_latency)
                    stalls.append(live.session.buf_ratio)
                rows.append({
                    "buffer": buffer_segments,
                    "system": label,
                    "mean_latency_s": float(np.mean(latencies)),
                    "p95_latency_s": float(np.percentile(latencies, 95)),
                    "buf_ratio_pct": float(np.mean(stalls)) * 100,
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows,
        ["buffer", "system", "mean_latency_s", "p95_latency_s",
         "buf_ratio_pct"],
        "Live extension: latency behind the live edge",
    ))
    by = {(r["buffer"], r["system"]): r for r in rows}
    for buffer_segments in (1, 2):
        voxel = by[(buffer_segments, "VOXEL")]
        bola = by[(buffer_segments, "BOLA")]
        # VOXEL's latency is at or below BOLA's at the same buffer.
        assert voxel["mean_latency_s"] <= bola["mean_latency_s"] + 0.5
    # The live edge gates buffering, so latency stays near its floor
    # (segment duration + encoder delay + ~1 segment of pipeline).
    assert by[(1, "VOXEL")]["mean_latency_s"] < 10.0
