"""Benchmarks for Fig. 11d and Fig. 13: in-the-wild(-like) trials."""

import numpy as np

from benchmarks.conftest import format_rows
from repro.experiments import figures


def test_fig11d_fig13_wild(benchmark, reduced_reps):
    """Fig. 11d/13: WiFi-path trials with small and large buffers."""

    def run():
        return figures.fig11d_fig13_wild(
            videos=("bbb", "tos"), buffers=(1, 7),
            repetitions=reduced_reps,
        )

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        out["rows"],
        ["video", "buffer", "system", "buf_ratio_p90", "ssim"],
        "Fig. 11d: in-the-wild bufRatio",
    ))
    grouped = {
        (r["video"], r["buffer"], r["system"]): r for r in out["rows"]
    }
    for video in ("bbb", "tos"):
        # Small buffers: VOXEL at or below BOLA's rebuffering.
        assert (
            grouped[(video, 1, "VOXEL")]["buf_ratio_p90"]
            <= grouped[(video, 1, "BOLA")]["buf_ratio_p90"] + 0.01
        )
        # Large buffers: both effectively rebuffer-free.
        assert grouped[(video, 7, "VOXEL")]["buf_ratio_p90"] < 0.05
        assert grouped[(video, 7, "BOLA")]["buf_ratio_p90"] < 0.05
    # Fig. 13: SSIM comparable at the 1-segment buffer.
    for video in ("bbb", "tos"):
        voxel = float(np.median(out["cdfs"][f"{video}/VOXEL"]["x"]))
        bola = float(np.median(out["cdfs"][f"{video}/BOLA"]["x"]))
        assert voxel >= bola - 0.05
