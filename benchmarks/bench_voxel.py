"""Benchmarks for §5.2 — the full VOXEL system vs BOLA and BETA.

Covers Fig. 6 (bufRatio across traces/buffers), Fig. 7a-c (QoE-metric
agnosticism), Fig. 7d (data skipped), Fig. 8 (bitrates), Fig. 9 (SSIM
CDFs), Fig. 17 (untuned VOXEL) and Fig. 18a/b (FCC).
"""

import numpy as np

from benchmarks.conftest import format_rows
from repro.experiments import figures


def _group(rows, keys):
    return {tuple(r[k] for k in keys): r for r in rows}


def test_fig6_bufratio(benchmark, reduced_reps):
    """Fig. 6: VOXEL (ABR*+QUIC*) vs BOLA and BETA, four traces."""

    def run():
        return figures.fig6_bufratio(
            videos=("bbb", "tos"),
            traces=("att", "3g", "verizon", "tmobile"),
            buffers=(1, 7),
            repetitions=reduced_reps,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows,
        ["video", "trace", "buffer", "system", "buf_ratio_p90", "ssim"],
        "Fig. 6: 90th-pct bufRatio",
    ))
    grouped = _group(rows, ("video", "trace", "buffer", "system"))
    # VOXEL never rebuffers more than BOLA, per cell, beyond noise; and
    # aggregate rebuffering drops substantially.
    bola_total, voxel_total = 0.0, 0.0
    for video in ("bbb", "tos"):
        for trace in ("att", "3g", "verizon", "tmobile"):
            for buffer in (1, 7):
                bola = grouped[(video, trace, buffer, "BOLA")]
                voxel = grouped[(video, trace, buffer, "VOXEL")]
                bola_total += bola["buf_ratio_p90"]
                voxel_total += voxel["buf_ratio_p90"]
    assert voxel_total <= bola_total * 0.75 + 1e-6


def test_fig7_metric_agnostic(benchmark, reduced_reps):
    """Fig. 7a-c: VOXEL wins regardless of the QoE metric optimized."""

    def run():
        return figures.fig7_metric_agnostic(
            buffers=(1, 3), repetitions=reduced_reps
        )

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        out["rows"], ["system", "buffer", "buf_ratio_p90", "ssim"],
        "Fig. 7a: metric-agnostic bufRatio",
    ))
    grouped = _group(out["rows"], ("system", "buffer"))
    for metric in ("SSIM", "VMAF", "PSNR"):
        for buffer in (1, 3):
            voxel = grouped[(f"VOXEL/{metric}", buffer)]["buf_ratio_p90"]
            bola = grouped[("BOLA", buffer)]["buf_ratio_p90"]
            assert voxel <= bola + 0.01
    assert {"BOLA/ssim", "VOXEL/ssim", "BOLA/vmaf", "VOXEL/vmaf"} <= set(
        out["cdfs"]
    )


def test_fig7d_data_skipped(benchmark):
    """Fig. 7d: data skipped shrinks as the buffer grows."""

    def run():
        return figures.fig7d_data_skipped(
            videos=("bbb", "tos"), buffers=(1, 3, 7), repetitions=2
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows, ["video", "buffer", "data_skipped_pct"],
        "Fig. 7d: % data skipped",
    ))
    grouped = _group(rows, ("video", "buffer"))
    for video in ("bbb", "tos"):
        small = grouped[(video, 1)]["data_skipped_pct"]
        large = grouped[(video, 7)]["data_skipped_pct"]
        assert large <= small + 0.5
        assert small < 40.0  # skipping is targeted, not wholesale


def test_fig8_bitrates(benchmark, reduced_reps):
    """Fig. 8: VOXEL sustains bitrates on par with BOLA."""

    def run():
        return figures.fig8_bitrates(
            videos=("bbb", "tos"), buffers=(1, 7), repetitions=reduced_reps
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows,
        ["video", "trace", "buffer", "system", "bitrate_kbps",
         "buf_ratio_p90"],
        "Fig. 8: average bitrates",
    ))
    grouped = _group(rows, ("video", "trace", "buffer", "system"))
    ratios = []
    for video in ("bbb", "tos"):
        for trace in ("tmobile", "verizon"):
            for buffer in (1, 7):
                voxel = grouped[(video, trace, buffer, "VOXEL")]
                bola = grouped[(video, trace, buffer, "BOLA")]
                ratios.append(
                    voxel["bitrate_kbps"] / max(bola["bitrate_kbps"], 1.0)
                )
    # On aggregate VOXEL's delivered bitrate is at least ~75 % of BOLA's
    # (it trades some bytes for zero rebuffering at tiny buffers).
    assert float(np.mean(ratios)) > 0.7


def test_fig9_ssim_cdfs(benchmark, reduced_reps):
    """Fig. 9: per-segment SSIM distributions of the three systems."""

    def run():
        return figures.fig9_ssim_cdfs(
            combos=(("tos", "att", 2), ("bbb", "tmobile", 1)),
            repetitions=reduced_reps,
        )

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for combo, series in out.items():
        for system, cdf in series.items():
            rows.append(
                {
                    "combo": combo,
                    "system": system,
                    "median_ssim": float(np.median(cdf["x"])),
                    "p10_ssim": float(np.percentile(cdf["x"], 10)),
                }
            )
    print(format_rows(
        rows, ["combo", "system", "median_ssim", "p10_ssim"],
        "Fig. 9: SSIM CDFs",
    ))
    # On the benign AT&T trace nobody rebuffers and VOXEL's SSIM keeps up
    # with BOLA within a small margin (Fig. 9a it even wins).
    att = out["tos-att"]
    assert float(np.median(att["VOXEL"]["x"])) >= float(
        np.median(att["BOLA"]["x"])
    ) - 0.03


def test_fig17_untuned_voxel(benchmark, reduced_reps):
    """Fig. 17c/d vs Fig. 6d: the bandwidth-safety tuning knob."""

    def run():
        tuned = figures.fig6_bufratio(
            videos=("bbb",), traces=("tmobile",), buffers=(1, 7),
            repetitions=reduced_reps, tuned_voxel=True,
        )
        untuned = figures.fig6_bufratio(
            videos=("bbb",), traces=("tmobile",), buffers=(1, 7),
            repetitions=reduced_reps, tuned_voxel=False,
        )
        return tuned, untuned

    tuned, untuned = benchmark.pedantic(run, rounds=1, iterations=1)
    t = _group(tuned, ("buffer", "system"))
    u = _group(untuned, ("buffer", "system"))
    rows = []
    for buffer in (1, 7):
        rows.append({
            "buffer": buffer,
            "tuned_p90": t[(buffer, "VOXEL")]["buf_ratio_p90"],
            "untuned_p90": u[(buffer, "VOXEL")]["buf_ratio_p90"],
            "tuned_ssim": t[(buffer, "VOXEL")]["ssim"],
            "untuned_ssim": u[(buffer, "VOXEL")]["ssim"],
        })
    print(format_rows(
        rows, ["buffer", "tuned_p90", "untuned_p90", "tuned_ssim",
               "untuned_ssim"],
        "Fig. 17: tuned (0.9) vs untuned (1.0) bandwidth safety",
    ))
    # The tuned factor never increases rebuffering on T-Mobile.
    for row in rows:
        assert row["tuned_p90"] <= row["untuned_p90"] + 0.01


def test_fig18ab_fcc(benchmark, reduced_reps):
    """Fig. 18a/b: the FCC fixed-line trace."""

    def run():
        return figures.fig6_bufratio(
            videos=("bbb",), traces=("fcc",), buffers=(1, 3),
            repetitions=reduced_reps,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows, ["buffer", "system", "buf_ratio_p90", "bitrate_kbps"],
        "Fig. 18a/b: FCC",
    ))
    grouped = _group(rows, ("buffer", "system"))
    for buffer in (1, 3):
        assert (
            grouped[(buffer, "VOXEL")]["buf_ratio_p90"]
            <= grouped[(buffer, "BOLA")]["buf_ratio_p90"] + 0.01
        )
