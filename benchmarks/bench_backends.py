"""Ablation: round-based vs packet-level transport simulation.

DESIGN.md calls out the per-RTT round model as the key simulation
shortcut; this benchmark validates it against the event-driven
per-packet backend on identical scenarios, and runs the flow-fairness
study the paper alludes to ("as all streams in VOXEL are congestion
controlled, we have no flow-fairness concerns", §5.2).
"""

import numpy as np

from benchmarks.conftest import format_rows
from repro.abr import make_abr
from repro.experiments.fairness import run_fairness
from repro.network import constant_trace, get_trace
from repro.player import SessionConfig, StreamingSession
from repro.prep.prepare import get_prepared


def test_backend_agreement(benchmark):
    """Both backends put the same scenarios in the same regime."""

    def run():
        prepared = get_prepared("bbb")
        rows = []
        for trace_name in ("constant:10.5", "verizon"):
            for backend in ("round", "packet"):
                abr = make_abr("bola", prepared=prepared)
                config = SessionConfig(
                    buffer_segments=2,
                    partially_reliable=False,
                    transport_backend=backend,
                )
                metrics = StreamingSession(
                    prepared, abr, get_trace(trace_name), config
                ).run()
                rows.append({
                    "trace": trace_name,
                    "backend": backend,
                    "buf_ratio_pct": metrics.buf_ratio * 100,
                    "bitrate_kbps": metrics.avg_bitrate_kbps,
                    "ssim": metrics.mean_ssim,
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows, ["trace", "backend", "buf_ratio_pct", "bitrate_kbps", "ssim"],
        "Backend validation: round vs packet",
    ))
    by = {(r["trace"], r["backend"]): r for r in rows}
    for trace_name in ("constant:10.5", "verizon"):
        round_row = by[(trace_name, "round")]
        packet_row = by[(trace_name, "packet")]
        # Same stall regime (within 3 percentage points of bufRatio)...
        assert abs(
            round_row["buf_ratio_pct"] - packet_row["buf_ratio_pct"]
        ) < 3.0
        # ...and the same quality regime.
        assert abs(round_row["ssim"] - packet_row["ssim"]) < 0.06


def test_fairness(benchmark):
    """QUIC* unreliable flows remain TCP-friendly (§5.2 claim)."""

    def run():
        return run_fairness(
            link_mbps=20.0,
            flow_specs=(
                ("reliable-1", True),
                ("reliable-2", True),
                ("voxel-unreliable", False),
            ),
            transfer_mb=8.0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "flow": flow.label,
            "reliable": str(flow.reliable),
            "throughput_mbps": flow.throughput_mbps,
        }
        for flow in result.flows
    ]
    print(format_rows(
        rows, ["flow", "reliable", "throughput_mbps"],
        f"Fairness (Jain index {result.jain_index:.3f}, "
        f"utilization {result.utilization:.2f})",
    ))
    assert result.jain_index > 0.85
    assert result.utilization > 0.7
