"""Benchmarks for Fig. 16 (§B): 750-packet network queues.

Long queues emulate on-premise-cached content behind commercial LTE
buffers — a challenge for loss-based congestion control.
"""

from benchmarks.conftest import format_rows
from repro.experiments import figures


def test_fig16_long_queue(benchmark):
    """Fig. 16: VOXEL keeps its edge behind a 750-packet droptail queue."""

    def run():
        return figures.fig16_long_queue(
            videos=("bbb",), traces=("tmobile", "verizon"),
            buffers=(1, 7), queue_packets=750, repetitions=2,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(format_rows(
        rows, ["trace", "buffer", "system", "buf_ratio_p90",
               "bitrate_kbps"],
        "Fig. 16: 750-packet queue",
    ))
    grouped = {
        (r["trace"], r["buffer"], r["system"]): r for r in rows
    }
    # On aggregate VOXEL still matches or beats BOLA; individual cells
    # may flip (the paper sees occasional losses to BOLA here and blames
    # CUBIC behind deep buffers).
    total_voxel = sum(
        grouped[(t, b, "VOXEL")]["buf_ratio_p90"]
        for t in ("tmobile", "verizon") for b in (1, 7)
    )
    total_bola = sum(
        grouped[(t, b, "BOLA")]["buf_ratio_p90"]
        for t in ("tmobile", "verizon") for b in (1, 7)
    )
    assert total_voxel <= total_bola + 0.02
