"""Benchmarks for Fig. 11a-c: synthetic constant and step traces.

The controlled experiments that dissect where VOXEL's gains come from:
virtual quality levels track the available rate more finely than the
discrete ladder.
"""

import numpy as np

from repro.experiments import figures


def test_fig11_synthetic(benchmark):
    """Fig. 11a-c: SSIM progression/distribution on constant and step."""

    def run():
        return figures.fig11_synthetic(repetitions=3)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for key, data in out.items():
        print(
            f"Fig. 11 {key}: final accumulated SSIM "
            f"{data['progression'][-1]:.4f}, perfect-score fraction "
            f"{data['perfect_fraction'] * 100:.0f}%"
        )
    # Both systems realize a large fraction of perfect (1.0) segments on
    # the near-capacity synthetic traces.  (Deviation from the paper:
    # their BOLA gets *no* perfect scores at 10.5 Mbps while ours — fed
    # exact segment sizes over an efficient simulated transport —
    # sustains Q12; see EXPERIMENTS.md.)
    for trace in ("const", "step"):
        voxel = out[f"VOXEL/{trace}"]["perfect_fraction"]
        bola = out[f"BOLA/{trace}"]["perfect_fraction"]
        assert voxel > 0.4
        assert voxel >= bola - 0.15
    # Steady-state accumulated SSIM stays high for VOXEL.
    assert out["VOXEL/const"]["progression"][-1] > 0.96
    # The startup phase: VOXEL's early accumulated SSIM is not
    # catastrophically below BOLA's.
    early_voxel = out["VOXEL/const"]["progression"][5]
    early_bola = out["BOLA/const"]["progression"][5]
    assert early_voxel > early_bola - 0.1
