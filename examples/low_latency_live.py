#!/usr/bin/env python3
"""Low-latency live broadcast: latency vs. robustness.

The paper motivates VOXEL with live streaming: every second of playback
buffer is a second of latency behind the live edge, so live players run
with tiny buffers — exactly where full-segment reliable delivery breaks
down.  This example broadcasts Big Buck Bunny "live" over a challenging
T-Mobile-like LTE path with a 1-second encoder delay and compares the
end-to-end latency and stall behaviour of BOLA and VOXEL at 1- and
2-segment client buffers.
"""

import numpy as np

from repro import prepare_video
from repro.abr import make_abr
from repro.network import get_trace
from repro.player import stream_live


def main() -> None:
    prepared = prepare_video("bbb")
    trace = get_trace("tmobile")

    print("Live broadcast over T-Mobile-like LTE, 1 s encoder delay\n")
    print(
        f"{'system':>8s} {'buffer':>7s} {'mean lat s':>11s} "
        f"{'p95 lat s':>10s} {'bufRatio%':>10s} {'SSIM':>6s}"
    )
    for buffer_segments in (1, 2):
        for label, abr_name, pr, kwargs in (
            ("BOLA", "bola", False, {}),
            ("VOXEL", "abr_star", True, {"bandwidth_safety": 0.9}),
        ):
            latencies, stalls, ssims = [], [], []
            for i in range(6):
                abr = make_abr(abr_name, prepared=prepared, **kwargs)
                live = stream_live(
                    prepared, abr, trace.shifted(i * 53.0),
                    buffer_segments=buffer_segments,
                    encoder_delay=1.0,
                    partially_reliable=pr,
                )
                latencies.append(live.mean_latency)
                stalls.append(live.session.buf_ratio)
                ssims.append(live.session.mean_ssim)
            print(
                f"{label:>8s} {buffer_segments:6d}s "
                f"{np.mean(latencies):11.2f} "
                f"{np.percentile(latencies, 95):10.2f} "
                f"{np.mean(stalls) * 100:10.2f} {np.mean(ssims):6.3f}"
            )

    print(
        "\nEvery stall pushes the player further behind the live edge; "
        "VOXEL's partial segments keep latency flat where full-segment "
        "delivery falls behind."
    )


if __name__ == "__main__":
    main()
