#!/usr/bin/env python3
"""Stress test over the 3G commute corpus plus a simulated user study.

Reproduces the spirit of Fig. 10 and Fig. 14 in one script: stream Big
Buck Bunny over a set of low-bandwidth 3G commute traces with a tiny
1-segment buffer, isolate the contribution of each ABR* ingredient
(BOLA -> BOLA-SSIM -> VOXEL), then ask a panel of simulated viewers
which stream they prefer.
"""

import numpy as np

from repro import prepare_video
from repro.abr import make_abr
from repro.experiments.survey import DIMENSIONS, run_survey
from repro.network import riiser_3g_corpus
from repro.player import SessionConfig, StreamingSession


def stream_corpus(prepared, abr_name, partially_reliable, corpus):
    sessions = []
    for trace in corpus:
        abr = make_abr(abr_name, prepared=prepared)
        config = SessionConfig(
            buffer_segments=1, partially_reliable=partially_reliable
        )
        sessions.append(
            StreamingSession(prepared, abr, trace, config).run()
        )
    return sessions


def main() -> None:
    prepared = prepare_video("bbb")
    corpus = riiser_3g_corpus(count=20)
    print(
        f"Streaming over {len(corpus)} 3G commute traces "
        f"(mean bandwidth {np.mean([t.mean_mbps() for t in corpus]):.1f} "
        "Mbps), 1-segment buffer\n"
    )

    all_sessions = {}
    for label, abr, pr in (
        ("BOLA", "bola", False),
        ("BOLA-SSIM", "bola_ssim", True),
        ("VOXEL", "abr_star", True),
    ):
        sessions = stream_corpus(prepared, abr, pr, corpus)
        all_sessions[label] = sessions
        print(
            f"  {label:10s} mean bufRatio "
            f"{np.mean([s.buf_ratio for s in sessions]) * 100:5.1f}%  "
            f"mean SSIM {np.mean([s.mean_ssim for s in sessions]):.3f}  "
            f"data skipped "
            f"{np.mean([s.data_skipped_fraction for s in sessions]) * 100:4.1f}%"
        )

    print("\nSimulated 54-participant survey (VOXEL vs BOLA clips):")
    result = run_survey(
        all_sessions["VOXEL"], all_sessions["BOLA"], participants=54
    )
    for dim in DIMENSIONS:
        print(
            f"  {dim:10s} VOXEL {result.mos['VOXEL'][dim]:.2f} vs "
            f"BOLA {result.mos['BOLA'][dim]:.2f} "
            f"(delta {result.mos_delta(dim):+.2f})"
        )
    print(
        f"  {result.preference_voxel * 100:.0f}% of participants prefer "
        "the VOXEL stream."
    )


if __name__ == "__main__":
    main()
