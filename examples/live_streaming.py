#!/usr/bin/env python3
"""Low-latency / live-streaming-like scenario (small playback buffers).

The paper's headline use case: with buffers as small as one segment
(plus one in flight), traditional ABR over reliable transport has no
slack — a single bad download stalls playback.  This example sweeps
buffer sizes 1/2/3/7 on the challenging T-Mobile-like trace and compares
BOLA, BETA and VOXEL, mirroring Fig. 6d.
"""

import numpy as np

from repro import prepare_video
from repro.abr import make_abr
from repro.network import get_trace
from repro.player import SessionConfig, StreamingSession


def run_trials(prepared, abr_name, buffer_segments, partially_reliable,
               repetitions=8, abr_kwargs=None):
    results = []
    trace = get_trace("tmobile")
    for i in range(repetitions):
        abr = make_abr(abr_name, prepared=prepared, **(abr_kwargs or {}))
        config = SessionConfig(
            buffer_segments=buffer_segments,
            partially_reliable=partially_reliable,
        )
        session = StreamingSession(
            prepared, abr, trace.shifted(i * trace.duration / repetitions),
            config,
        )
        results.append(session.run())
    return results


def main() -> None:
    prepared = prepare_video("bbb")
    systems = {
        # Fig. 6d uses the bandwidth-safety-tuned VOXEL on T-Mobile.
        "BOLA": ("bola", False, None),
        "BETA": ("beta", False, None),
        "VOXEL": ("abr_star", True, {"bandwidth_safety": 0.9}),
    }

    print("90th-percentile bufRatio (%) on T-Mobile-like LTE; "
          "8 trials per cell\n")
    header = f"{'buffer':>8s}" + "".join(f"{name:>10s}" for name in systems)
    print(header + f"{'VOXEL ssim':>12s}")
    for buffer_segments in (1, 2, 3, 7):
        row = f"{buffer_segments:>7d}s"
        voxel_ssim = 0.0
        for name, (abr, pr, kwargs) in systems.items():
            sessions = run_trials(
                prepared, abr, buffer_segments, pr, abr_kwargs=kwargs
            )
            p90 = np.percentile([s.buf_ratio for s in sessions], 90) * 100
            row += f"{p90:10.2f}"
            if name == "VOXEL":
                voxel_ssim = np.mean([s.mean_ssim for s in sessions])
        print(row + f"{voxel_ssim:12.3f}")

    print(
        "\nVOXEL sustains near-zero rebuffering even at a 1-segment "
        "buffer by downloading important frames first, keeping partial "
        "segments, and skipping the unimportant tail when the network "
        "dips."
    )


if __name__ == "__main__":
    main()
