#!/usr/bin/env python3
"""QoE-metric agnosticism (§5.2, Fig. 7): optimize SSIM, VMAF or PSNR.

ABR* takes the QoE metric as a parameter; the manifest's quality map is
metric-convertible, so the same machinery optimizes any of the three.
This example streams the same scenario three times, each optimizing a
different metric, and reports rebuffering plus all three scores.
"""

import numpy as np

from repro import prepare_video, stream
from repro.qoe.metrics import PSNR, SSIM, VMAF


def main() -> None:
    prepared = prepare_video("bbb")
    metrics = {"SSIM": SSIM, "VMAF": VMAF, "PSNR": PSNR}

    print("VOXEL streaming BBB over Verizon-like LTE, 1-segment buffer,\n"
          "optimizing each QoE metric in turn:\n")
    print(
        f"{'optimized':>10s} {'bufRatio%':>10s} {'SSIM':>8s} "
        f"{'VMAF':>8s} {'PSNR dB':>8s}"
    )
    for name, metric in metrics.items():
        result = stream(
            prepared, abr="abr_star", trace="verizon", buffer_segments=1,
            abr_kwargs={"metric": metric},
        )
        ssim = result.metrics.mean_ssim
        print(
            f"{name:>10s} {result.metrics.buf_ratio * 100:10.2f} "
            f"{ssim:8.3f} {VMAF.from_ssim(ssim):8.1f} "
            f"{PSNR.from_ssim(ssim):8.1f}"
        )

    bola = stream(
        prepared, abr="bola", trace="verizon", buffer_segments=1,
        partially_reliable=False,
    )
    ssim = bola.metrics.mean_ssim
    print(
        f"{'BOLA ref':>10s} {bola.metrics.buf_ratio * 100:10.2f} "
        f"{ssim:8.3f} {VMAF.from_ssim(ssim):8.1f} "
        f"{PSNR.from_ssim(ssim):8.1f}"
    )
    print(
        "\nRebuffering stays low no matter which metric VOXEL optimizes "
        "— the decision machinery only needs a score-vs-bytes map."
    )


if __name__ == "__main__":
    main()
