#!/usr/bin/env python3
"""Quickstart: prepare a video and stream it with VOXEL.

Runs the two halves of the system once:

1. the offline, server-side preparation (frame ranking, drop-tolerance
   analysis, manifest enrichment), and
2. an online streaming session with ABR* over QUIC* across an emulated
   Verizon-like LTE trace,

then prints the session metrics and compares against BOLA over plain
QUIC — the paper's state-of-the-art baseline.

Scenarios are declarative: a frozen :class:`ScenarioSpec` names every
knob, serializes to JSON, and hashes stably — the same spec (or its
JSON) reproduces the same session anywhere, and `repro sweep` runs
whole grids of them.
"""

from repro import ScenarioSpec, prepare_video, stream_spec


def main() -> None:
    print("Preparing Big Buck Bunny (one-time, server side)...")
    prepared = prepare_video("bbb")
    manifest = prepared.manifest
    print(
        f"  manifest: {manifest.num_levels} levels x "
        f"{manifest.num_segments} segments, "
        f"{manifest.metadata_bytes() / 1e6:.1f} MB serialized"
    )
    entry = manifest.entry(12, 0)
    points = ", ".join(
        f"{p.score:.3f}@{p.bytes / 1e6:.2f}MB" for p in entry.quality_points[:4]
    )
    print(f"  segment 0 @ Q12 virtual levels: {points}")

    print("\nStreaming over a Verizon-like LTE trace (2-segment buffer)...")
    scenario = ScenarioSpec(
        video="bbb", abr="abr_star", trace="verizon",
        reliability="quic*", buffer_segments=2,
    )
    print(f"  scenario {scenario.spec_hash()}: {scenario.label()}")
    voxel = stream_spec(scenario, prepared=prepared)
    bola = stream_spec(
        scenario.with_(abr="bola", reliability="quic"), prepared=prepared
    )

    for name, result in (("VOXEL", voxel), ("BOLA/QUIC", bola)):
        m = result.metrics
        print(
            f"  {name:10s} bufRatio {m.buf_ratio * 100:5.2f}%  "
            f"mean SSIM {m.mean_ssim:.3f}  "
            f"bitrate {m.avg_bitrate_kbps:6.0f} kbps  "
            f"data skipped {m.data_skipped_fraction * 100:4.1f}%"
        )

    saved = bola.metrics.buf_ratio - voxel.metrics.buf_ratio
    print(
        f"\nVOXEL avoided {saved * 100:.2f} percentage points of "
        "rebuffering on this run."
    )


if __name__ == "__main__":
    main()
