#!/usr/bin/env python3
"""Walk through VOXEL's offline content-preparation pipeline (§4.1).

Shows, for one segment of one video:

* the three-plus-one candidate frame orderings and their drop curves,
* the drop tolerance each achieves at an SSIM target of 0.99,
* the chosen ordering and resulting manifest entry (Listing-1 style),
* how the enriched manifest creates *virtual quality levels* between the
  real ladder rungs.
"""

from repro.prep.analysis import compute_drop_curve, reliable_bytes
from repro.prep.prepare import get_prepared
from repro.prep.ranking import Ordering
from repro.video.library import get_video


def main() -> None:
    video = get_video("bbb")
    segment = video.segment(12, 10)  # a Q12 segment of Big Buck Bunny
    print(
        f"Segment 10 of {video.profile.title} at Q12: "
        f"{segment.total_bytes / 1e6:.2f} MB, "
        f"{len(segment.frames)} frames, "
        f"reliable part {reliable_bytes(segment) / 1e3:.0f} kB "
        "(I-frame + headers)\n"
    )

    print("Drop tolerance at SSIM >= 0.99 under each ordering:")
    for ordering in Ordering:
        curve = compute_drop_curve(segment, ordering)
        tolerance = curve.tolerance(0.99) * 100
        needed = curve.bytes_for_score(0.99)
        print(
            f"  {ordering.value:18s} tolerates {tolerance:5.1f}% drops; "
            f"needs {needed / 1e6:.2f} MB for 0.99"
        )

    prepared = get_prepared("bbb")
    entry = prepared.manifest.entry(12, 10)
    print(
        f"\nChosen ordering: {entry.ordering.value}; manifest quality "
        "points (score : frames : bytes):"
    )
    for point in entry.quality_points:
        print(f"  {point.score:.4f} : {point.frames:3d} : {point.bytes}")

    print("\nListing-1-style manifest entry (truncated):")
    line = entry.serialize()
    print("  " + line[:160] + " ...")

    # Virtual quality levels: effective bitrates between Q11 and Q12.
    q12 = segment.bitrate_mbps
    q11 = video.segment(11, 10).bitrate_mbps
    virtual = [
        point.bytes * 8 / segment.duration / 1e6
        for point in entry.quality_points
    ]
    print(
        f"\nReal levels: Q11 {q11:.1f} Mbps, Q12 {q12:.1f} Mbps; "
        "virtual levels in between: "
        + ", ".join(f"{v:.1f}" for v in virtual)
    )


if __name__ == "__main__":
    main()
