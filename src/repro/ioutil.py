"""Atomic file outputs: temp-file-in-place + ``os.replace``.

Every artifact the harness emits (sweep/chaos JSONL, fleet reports,
``BENCH_*.json``, perf ledgers, markdown reports, recorded traces,
checkpoint spool entries) is written through these helpers so an
interrupt — Ctrl-C, OOM kill, power loss — can never leave a torn file
behind: readers either see the complete previous version or the
complete new one, never a prefix.

The temp file lives in the *same directory* as the target (``rename``
is only atomic within a filesystem), is flushed and fsync'd before the
rename, and is unlinked on any failure path.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from typing import Iterator, TextIO


@contextmanager
def atomic_output(path: str, encoding: str = "utf-8") -> Iterator[TextIO]:
    """A writable handle whose contents replace ``path`` atomically.

    The handle points at a temp file next to the target.  On clean exit
    the temp file is flushed, fsync'd, and renamed over ``path``; on
    any exception (including ``KeyboardInterrupt``) it is removed and
    the target is left untouched.
    """
    target = os.path.abspath(path)
    directory = os.path.dirname(target)
    fd, tmp = tempfile.mkstemp(
        dir=directory,
        prefix=os.path.basename(target) + ".",
        suffix=".tmp",
    )
    handle = os.fdopen(fd, "w", encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, target)
    except BaseException:
        try:
            handle.close()
        except OSError:
            pass
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str) -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_output(path) as handle:
        handle.write(text)


def atomic_write_json(
    path: str,
    payload,
    indent=2,
    sort_keys: bool = True,
    trailing_newline: bool = True,
) -> None:
    """Atomically replace ``path`` with the JSON form of ``payload``."""
    with atomic_output(path) as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
        if trailing_newline:
            handle.write("\n")


__all__ = ["atomic_output", "atomic_write_text", "atomic_write_json"]
