"""High-level convenience API — the paper's system in three calls.

::

    from repro import prepare_video, stream

    prepared = prepare_video("bbb")           # offline, server side
    result = stream(prepared,                 # online, client side
                    abr="abr_star", trace="verizon", buffer_segments=2)
    print(result.metrics.buf_ratio, result.metrics.mean_ssim)

``prepare_video`` runs VOXEL's one-time analysis (frame ranking, drop
curves, manifest enrichment); ``stream`` plays the prepared video through
an ABR algorithm over an emulated network and returns the full metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.abr import ABR_NAMES, make_abr
from repro.network.traces import TRACE_NAMES, NetworkTrace, get_trace
from repro.player.metrics import SessionMetrics
from repro.player.session import SessionConfig, StreamingSession
from repro.prep.prepare import PreparedVideo, get_prepared, prepare
from repro.video.content import ALL_VIDEOS


@dataclass
class StreamResult:
    """Everything produced by one :func:`stream` call."""

    metrics: SessionMetrics
    prepared: PreparedVideo
    config: SessionConfig

    @property
    def buf_ratio(self) -> float:
        return self.metrics.buf_ratio

    @property
    def mean_ssim(self) -> float:
        return self.metrics.mean_ssim

    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()


def available_videos() -> List[str]:
    """Catalog names usable with :func:`prepare_video`."""
    return list(ALL_VIDEOS)


def available_abrs() -> List[str]:
    """ABR algorithm names usable with :func:`stream`."""
    return list(ABR_NAMES)


def available_traces() -> List[str]:
    """Network trace names usable with :func:`stream`."""
    return list(TRACE_NAMES)


def prepare_video(name: str, cached: bool = True) -> PreparedVideo:
    """Run the offline VOXEL preparation for a catalog video.

    Args:
        name: catalog video name (see :func:`available_videos`).
        cached: reuse the process-wide cache (preparation is a one-time,
            deterministic computation — exactly the paper's story).
    """
    if cached:
        return get_prepared(name)
    return prepare(name)


def stream(
    prepared: PreparedVideo,
    abr: str = "abr_star",
    trace: str = "verizon",
    buffer_segments: int = 3,
    partially_reliable: bool = True,
    seed: int = 0,
    trace_shift_s: float = 0.0,
    abr_kwargs: Optional[Dict] = None,
    network_trace: Optional[NetworkTrace] = None,
    tracer=None,
    **session_kwargs,
) -> StreamResult:
    """Stream a prepared video once and return the session metrics.

    Args:
        prepared: output of :func:`prepare_video`.
        abr: algorithm name ("tput", "bola", "mpc", "beta",
            "bola_ssim", "abr_star"/"voxel").
        trace: network trace name (see :func:`available_traces`).
        buffer_segments: playback buffer size in segments.
        partially_reliable: QUIC* (True) or plain QUIC (False).
        seed: trace generator seed.
        trace_shift_s: linear trace shift (repetition protocol of §5).
        abr_kwargs: extra keyword arguments for the ABR constructor.
        network_trace: pass an explicit trace object instead of a name.
        tracer: an :class:`~repro.obs.Tracer` collecting structured
            session events (``None`` = tracing off, zero overhead).
        **session_kwargs: forwarded to :class:`SessionConfig` (e.g.
            ``queue_packets=750``, ``selective_retransmission=False``).
    """
    the_trace = (
        network_trace
        if network_trace is not None
        else get_trace(trace, seed=seed)
    ).shifted(trace_shift_s)
    algorithm = make_abr(abr, prepared=prepared, **(abr_kwargs or {}))
    config = SessionConfig(
        buffer_segments=buffer_segments,
        partially_reliable=partially_reliable,
        **session_kwargs,
    )
    session = StreamingSession(
        prepared, algorithm, the_trace, config, tracer=tracer
    )
    metrics = session.run()
    return StreamResult(metrics=metrics, prepared=prepared, config=config)
