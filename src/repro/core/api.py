"""High-level convenience API — the paper's system in three calls.

::

    from repro import prepare_video, stream

    prepared = prepare_video("bbb")           # offline, server side
    result = stream(prepared,                 # online, client side
                    abr="abr_star", trace="verizon", buffer_segments=2)
    print(result.metrics.buf_ratio, result.metrics.mean_ssim)

``prepare_video`` runs VOXEL's one-time analysis (frame ranking, drop
curves, manifest enrichment); ``stream`` plays the prepared video through
an ABR algorithm over an emulated network and returns the full metrics.

Both ``stream()`` and :func:`stream_spec` assemble the stack through the
scenario spine: the keyword surface maps onto a
:class:`~repro.core.spec.ScenarioSpec` and the
:class:`~repro.core.build.StackBuilder` wires the session, so the
convenience API, the experiment runner, and ``repro sweep`` all build
identical stacks from identical descriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.abr import ABR_NAMES
from repro.core.build import StackBuilder
from repro.core.spec import ScenarioSpec, reliability_mode
from repro.network.linkmodels import LINK_MODELS
from repro.network.traces import TRACE_NAMES, NetworkTrace
from repro.player.metrics import SessionMetrics
from repro.player.session import SessionConfig
from repro.prep.prepare import PreparedVideo, get_prepared, prepare
from repro.qoe.metrics import QoEMetric
from repro.transport.backends import BACKENDS
from repro.video.content import ALL_VIDEOS


@dataclass
class StreamResult:
    """Everything produced by one :func:`stream` call."""

    metrics: SessionMetrics
    prepared: PreparedVideo
    config: SessionConfig

    @property
    def buf_ratio(self) -> float:
        return self.metrics.buf_ratio

    @property
    def mean_ssim(self) -> float:
        return self.metrics.mean_ssim

    def summary(self) -> Dict[str, float]:
        return self.metrics.summary()


def available_videos() -> List[str]:
    """Catalog names usable with :func:`prepare_video`."""
    return list(ALL_VIDEOS)


def available_abrs() -> List[str]:
    """ABR algorithm names usable with :func:`stream`."""
    return list(ABR_NAMES)


def available_traces() -> List[str]:
    """Network trace names usable with :func:`stream`."""
    return list(TRACE_NAMES)


def available_backends() -> List[str]:
    """Transport backend names usable with ``ScenarioSpec(backend=...)``."""
    return BACKENDS.names()


def available_link_models() -> List[str]:
    """Link-model names a transport backend can sit on."""
    return LINK_MODELS.names()


def prepare_video(name: str, cached: bool = True) -> PreparedVideo:
    """Run the offline VOXEL preparation for a catalog video.

    Args:
        name: catalog video name (see :func:`available_videos`).
        cached: reuse the process-wide cache (preparation is a one-time,
            deterministic computation — exactly the paper's story).
    """
    if cached:
        return get_prepared(name)
    return prepare(name)


#: ``stream()`` session kwargs that map onto a spec field of the same
#: name (the remaining SessionConfig knobs are handled explicitly).
_PASSTHROUGH_SESSION_KWARGS = (
    "server_voxel_aware",
    "client_voxel_aware",
    "selective_retransmission",
    "retx_buffer_threshold",
    "queue_packets",
    "base_rtt",
    "manifest_fetch",
    "manifest_window_segments",
    "trace_kwargs",
    "faults",
    "request_timeout_s",
    "retry_budget",
    "retry_backoff_s",
)


def _spec_from_stream_kwargs(
    video: str,
    abr: str,
    trace: str,
    buffer_segments: int,
    partially_reliable: bool,
    seed: int,
    trace_shift_s: float,
    abr_kwargs: Optional[Dict],
    session_kwargs: Dict,
) -> ScenarioSpec:
    """Translate the ``stream()`` keyword surface into a ScenarioSpec."""
    session_kwargs = dict(session_kwargs)
    fields: Dict = {
        "video": video,
        "abr": abr,
        "trace": trace,
        "buffer_segments": buffer_segments,
        "seed": seed,
        "trace_shift_s": trace_shift_s,
        "abr_kwargs": dict(abr_kwargs or {}),
        "reliability": reliability_mode(
            partially_reliable,
            bool(session_kwargs.pop("force_reliable_payload", False)),
        ),
    }
    if "transport_backend" in session_kwargs:
        fields["backend"] = session_kwargs.pop("transport_backend")
    if "metric" in session_kwargs:
        metric = session_kwargs.pop("metric")
        fields["metric"] = (
            metric.name if isinstance(metric, QoEMetric) else metric
        )
    for key in _PASSTHROUGH_SESSION_KWARGS:
        if key in session_kwargs:
            fields[key] = session_kwargs.pop(key)
    if session_kwargs:
        unexpected = sorted(session_kwargs)[0]
        raise TypeError(
            f"stream() got an unexpected keyword argument {unexpected!r}"
        )
    return ScenarioSpec(**fields)


def stream(
    prepared: PreparedVideo,
    abr: str = "abr_star",
    trace: str = "verizon",
    buffer_segments: int = 3,
    partially_reliable: bool = True,
    seed: int = 0,
    trace_shift_s: float = 0.0,
    abr_kwargs: Optional[Dict] = None,
    network_trace: Optional[NetworkTrace] = None,
    tracer=None,
    **session_kwargs,
) -> StreamResult:
    """Stream a prepared video once and return the session metrics.

    Args:
        prepared: output of :func:`prepare_video`.
        abr: algorithm name ("tput", "bola", "mpc", "beta",
            "bola_ssim", "abr_star"/"voxel").
        trace: network trace name (see :func:`available_traces`).
        buffer_segments: playback buffer size in segments.
        partially_reliable: QUIC* (True) or plain QUIC (False).
        seed: trace generator seed.  Only meaningful for named traces —
            combining it with an explicit ``network_trace`` raises
            ``ValueError`` rather than silently ignoring the seed.
        trace_shift_s: linear trace shift (repetition protocol of §5).
        abr_kwargs: extra keyword arguments for the ABR constructor.
        network_trace: pass an explicit trace object instead of a name.
        tracer: an :class:`~repro.obs.Tracer` collecting structured
            session events (``None`` = tracing off, zero overhead).
        **session_kwargs: forwarded to :class:`SessionConfig` (e.g.
            ``queue_packets=750``, ``selective_retransmission=False``)
            or the spec's resilience knobs (``faults={"events": [...]}``,
            ``request_timeout_s``, ``retry_budget``, ``retry_backoff_s``,
            ``trace_kwargs={"outage_prob": 0.1}``).
    """
    if network_trace is not None and seed != 0:
        raise ValueError(
            "conflicting arguments: seed only applies to named traces, "
            "but an explicit network_trace was passed alongside "
            f"seed={seed}; seed the trace object itself (or drop one "
            "of the two)"
        )
    spec = _spec_from_stream_kwargs(
        video=prepared.video.name,
        abr=abr,
        trace=trace,
        buffer_segments=buffer_segments,
        partially_reliable=partially_reliable,
        seed=seed,
        trace_shift_s=trace_shift_s,
        abr_kwargs=abr_kwargs,
        session_kwargs=session_kwargs,
    )
    return stream_spec(
        spec,
        prepared=prepared,
        network_trace=(
            network_trace.shifted(trace_shift_s)
            if network_trace is not None else None
        ),
        tracer=tracer,
    )


def stream_spec(
    spec: ScenarioSpec,
    prepared: Optional[PreparedVideo] = None,
    network_trace: Optional[NetworkTrace] = None,
    tracer=None,
) -> StreamResult:
    """Stream one :class:`ScenarioSpec` and return the session metrics.

    The declarative twin of :func:`stream`: every knob comes from the
    spec, the stack is assembled by the
    :class:`~repro.core.build.StackBuilder`, and the trace header is
    stamped with the spec's content hash.
    """
    builder = StackBuilder(spec, prepared=prepared)
    prepared = builder.prepared_video()
    session = builder.build(network_trace=network_trace, tracer=tracer)
    metrics = session.run()
    return StreamResult(
        metrics=metrics, prepared=prepared, config=session.config
    )
