"""`StackBuilder`: a :class:`ScenarioSpec` becomes a ready session.

The builder is the single assembly point of the stack.  It resolves the
spec's component names against the registries (ABRs, traces, transport
backends), realizes the network (trace seed/shift, optional cross
traffic), maps the spec onto a
:class:`~repro.player.session.SessionConfig`, and wires a
:class:`~repro.player.session.StreamingSession` — byte-identical to the
historical ad-hoc wiring in ``stream()`` / the experiment runner.

Multi-client runs use the same builder with shared plumbing: pass the
kernel's ``clock`` plus the shared ``link`` (round backend) or
``scheduler``/``router`` pair (packet backend) and spawn each session's
:meth:`~repro.player.session.StreamingSession.steps` on the kernel.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.abr import ABRS, make_abr
from repro.core.spec import ScenarioSpec
from repro.faults.plan import FaultPlan, build_plan, validate_fault_spec
from repro.network.crosstraffic import (
    CrossTrafficConfig,
    generate_cross_demand,
)
from repro.network.traces import TRACES, NetworkTrace, get_trace
from repro.player.session import SessionConfig, StreamingSession
from repro.prep.prepare import PreparedVideo, get_prepared
from repro.qoe.metrics import get_metric
from repro.transport.backends import BACKENDS


class StackBuilder:
    """Assemble the streaming stack described by one scenario spec.

    Args:
        spec: the scenario to realize.
        prepared: pre-analyzed video; looked up in the catalog by
            ``spec.video`` when omitted.
        prepared_map: ``video name -> PreparedVideo`` overriding the
            catalog (test fixtures, benchmarks, sweep workers).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        prepared: Optional[PreparedVideo] = None,
        prepared_map: Optional[Dict[str, PreparedVideo]] = None,
    ):
        self.spec = spec
        self._prepared = prepared
        self._prepared_map = prepared_map

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Resolve every component name now; raise on unknown ones.

        Useful for ``repro sweep --dry-run``: a typo in a grid fails
        before any simulation runs.  Raises ``KeyError`` for unknown
        ABR/trace names (the CLI contract) and ``ValueError`` for an
        unknown backend (the session contract).
        """
        if self._prepared is None and (
            self._prepared_map is None
            or self.spec.video not in self._prepared_map
        ):
            from repro.video.content import get_profile

            get_profile(self.spec.video)
        ABRS.canonical(self.spec.abr)
        trace_key = self.spec.trace.lower()
        if not trace_key.startswith("constant") and trace_key != "step":
            TRACES.canonical(trace_key)
        if self.spec.backend not in BACKENDS:
            raise ValueError(
                f"unknown transport backend {self.spec.backend!r}; "
                f"known: {', '.join(BACKENDS.names())}"
            )
        validate_fault_spec(self.spec.fault_spec())

    # ------------------------------------------------------------------
    def prepared_video(self) -> PreparedVideo:
        """The prepared video (explicit > prepared_map > catalog)."""
        if self._prepared is not None:
            return self._prepared
        if (
            self._prepared_map is not None
            and self.spec.video in self._prepared_map
        ):
            return self._prepared_map[self.spec.video]
        return get_prepared(self.spec.video)

    def resolve_trace(self) -> NetworkTrace:
        """The capacity trace: name + seed + shift, per the spec.

        Under cross traffic the capacity is a constant link at
        ``link_mbps_under_cross`` (the cross demand eats into it) —
        exactly the experiment runner's historical resolution.
        """
        spec = self.spec
        if spec.cross_traffic_mbps is not None:
            trace = get_trace(f"constant:{spec.link_mbps_under_cross}")
        else:
            trace = get_trace(
                spec.trace, seed=spec.seed, **spec.trace_kwargs
            )
        return trace.shifted(spec.trace_shift_s)

    def cross_demand(
        self, trace: Optional[NetworkTrace] = None
    ) -> Optional[NetworkTrace]:
        """The cross-traffic demand trace (None when no cross traffic).

        The demand seed folds in the trace shift, so each repetition of
        the paper's shift protocol sees different cross traffic.
        """
        spec = self.spec
        if spec.cross_traffic_mbps is None:
            return None
        if trace is None:
            trace = self.resolve_trace()
        return generate_cross_demand(
            CrossTrafficConfig(
                target_mbps=spec.cross_traffic_mbps,
                link_mbps=spec.link_mbps_under_cross,
                seed=spec.seed + int(spec.trace_shift_s * 1000) % 997,
            ),
            duration=int(trace.duration),
        )

    def make_abr(self):
        """Construct the spec's ABR algorithm (registry lookup)."""
        return make_abr(
            self.spec.abr,
            prepared=self.prepared_video(),
            **self.spec.abr_kwargs,
        )

    def fault_plan(
        self, trace: Optional[NetworkTrace] = None
    ) -> Optional[FaultPlan]:
        """Realize the spec's FaultSpec against the trace horizon.

        Deterministic: the windows are a pure function of the fault spec
        and the scenario seed, so every repetition (and every worker of a
        parallel sweep) places identical faults.  None when the spec
        declares no faults.
        """
        spec = self.spec.fault_spec()
        if spec is None:
            return None
        if trace is None:
            trace = self.resolve_trace()
        # Seeded placements spread across the window the session will
        # actually play — the media duration, not the (usually much
        # longer) trace horizon — so every declared fault can hit the
        # session.  Explicit ``at`` placements are unaffected.
        horizon = min(
            trace.duration, self.prepared_video().video.duration
        )
        return build_plan(
            spec, horizon=horizon, scenario_seed=self.spec.seed
        )

    def session_config(
        self, fault_plan: Optional[FaultPlan] = None
    ) -> SessionConfig:
        """Map the spec onto the session's knob set."""
        spec = self.spec
        return SessionConfig(
            buffer_segments=spec.buffer_segments,
            partially_reliable=spec.partially_reliable,
            server_voxel_aware=spec.server_voxel_aware,
            client_voxel_aware=spec.client_voxel_aware,
            force_reliable_payload=spec.force_reliable_payload,
            selective_retransmission=spec.selective_retransmission,
            retx_buffer_threshold=spec.retx_buffer_threshold,
            queue_packets=spec.queue_packets,
            base_rtt=spec.base_rtt,
            metric=get_metric(spec.metric),
            transport_backend=spec.backend,
            manifest_fetch=spec.manifest_fetch,
            manifest_window_segments=spec.manifest_window_segments,
            request_timeout_s=spec.request_timeout_s,
            retry_budget=spec.retry_budget,
            retry_backoff_s=spec.retry_backoff_s,
            fault_plan=fault_plan,
        )

    # ------------------------------------------------------------------
    def build(
        self,
        network_trace: Optional[NetworkTrace] = None,
        tracer=None,
        clock=None,
        session_id: Optional[str] = None,
        link=None,
        scheduler=None,
        router=None,
    ) -> StreamingSession:
        """Assemble the ready-to-run session.

        Args:
            network_trace: explicit trace object overriding the spec's
                named trace (already shifted; the builder applies no
                further shift).
            tracer: structured-event tracer (None = tracing off).
            clock: shared kernel clock for multi-client runs.
            session_id: tag for events in shared traces.
            link / scheduler / router: shared transport substrate for
                sessions contending on one bottleneck.
        """
        trace = (
            network_trace if network_trace is not None
            else self.resolve_trace()
        )
        return StreamingSession(
            self.prepared_video(),
            self.make_abr(),
            trace,
            self.session_config(fault_plan=self.fault_plan(trace)),
            cross_demand=self.cross_demand(trace),
            link=link,
            tracer=tracer,
            clock=clock,
            session_id=session_id,
            scheduler=scheduler,
            router=router,
            spec_hash=self.spec.spec_hash(),
        )


def build_session(
    spec: ScenarioSpec,
    prepared: Optional[PreparedVideo] = None,
    **build_kwargs,
) -> StreamingSession:
    """One-call convenience: ``StackBuilder(spec, prepared).build(...)``."""
    return StackBuilder(spec, prepared=prepared).build(**build_kwargs)


__all__ = ["StackBuilder", "build_session"]
