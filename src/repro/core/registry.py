"""String-keyed component registries: the catalog half of the spine.

Every pluggable component family — ABR algorithms, network traces,
transport backends, link models — lives in a :class:`Registry`: a flat
``name -> factory`` map with a one-line description captured at the
registration site.  A :class:`~repro.core.spec.ScenarioSpec` names its
components by these strings, the :class:`~repro.core.build.StackBuilder`
resolves them, and ``repro list`` enumerates every registry so the CLI
catalog can never drift from what the builder accepts.

Registering a custom component is one decorator::

    from repro.abr import ABRS

    @ABRS.register("my_abr", "greedy top-quality picker (demo)")
    def _make_my_abr(prepared=None, **kwargs):
        return MyABR(**kwargs)

after which ``ScenarioSpec(abr="my_abr")``, ``stream(abr="my_abr")`` and
``repro sweep`` grids all accept the new name.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple


class Registry:
    """A named family of factories with registration-site descriptions.

    Args:
        kind: human-readable component-family name ("ABR", "trace",
            "transport backend", "link model") — used in error messages
            and the CLI catalog.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Tuple[Callable, str]] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        description: str = "",
        aliases: Iterable[str] = (),
    ) -> Callable:
        """Decorator: register ``factory`` under ``name``.

        ``description`` is the one-line summary shown by ``repro list``;
        ``aliases`` are alternate lookup keys resolving to the same
        factory (they do not appear in :meth:`names`).
        """
        key = name.lower()

        def decorator(factory: Callable) -> Callable:
            if key in self._entries or key in self._aliases:
                raise ValueError(
                    f"duplicate {self.kind} registration {name!r}"
                )
            self._entries[key] = (factory, description)
            for alias in aliases:
                alias_key = alias.lower()
                if alias_key in self._entries or alias_key in self._aliases:
                    raise ValueError(
                        f"duplicate {self.kind} alias {alias!r}"
                    )
                self._aliases[alias_key] = key
            return factory

        return decorator

    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve ``name`` (or an alias) to its canonical key."""
        key = name.lower()
        key = self._aliases.get(key, key)
        if key not in self._entries:
            raise KeyError(
                f"unknown {self.kind} {name!r}; known: "
                f"{', '.join(self.names())}"
            )
        return key

    def get(self, name: str) -> Callable:
        """Look up a factory by name or alias (KeyError with a catalog)."""
        return self._entries[self.canonical(name)][0]

    def __contains__(self, name: str) -> bool:
        key = name.lower()
        return key in self._entries or key in self._aliases

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Canonical names in registration order."""
        return list(self._entries)

    def describe(self) -> Dict[str, str]:
        """``name -> one-line description`` in registration order."""
        return {name: desc for name, (_, desc) in self._entries.items()}
