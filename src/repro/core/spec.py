"""`ScenarioSpec`: one frozen, hashable cell of the evaluation space.

The paper's evaluation is a grid — {videos} x {ABRs} x {traces} x
{buffer sizes} x {QUIC, QUIC*} (§5) — and every experiment in this repo
is one point of that grid.  A :class:`ScenarioSpec` is the declarative,
JSON-serializable description of such a point: which video, which ABR
(with kwargs), which trace (with seed and shift), which transport
backend and reliability mode, and every session knob.

Specs are *frozen* and carry a **stable content hash**
(:meth:`ScenarioSpec.spec_hash`): the SHA-256 of the canonical JSON
serialization, independent of process, platform, and
``PYTHONHASHSEED``.  The hash keys sweep output rows and is stamped
into the trace header (``session_start.spec_hash``), so any recorded
artifact is traceable to its exact configuration.

Construction paths:

* ``ScenarioSpec(video="bbb", abr="bola", ...)`` in code,
* :meth:`ScenarioSpec.from_dict` / :meth:`from_json` for sweep files
  (unknown keys are rejected with a clear error),
* :meth:`~repro.experiments.runner.ExperimentConfig.to_scenario` for
  the legacy experiment-config API.

The :class:`~repro.core.build.StackBuilder` turns a spec into a ready
:class:`~repro.player.session.StreamingSession`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from repro.faults.spec import FaultSpec
from repro.qoe.metrics import METRICS, QoEMetric

#: Reliability modes: transport flavour x payload-reliability ablation.
#: "quic*" is VOXEL's partially reliable transport; "quic" is the plain
#: baseline; the "-rel" variants force the payload onto reliable streams
#: (the "VOXEL rel" ablation of §D).
RELIABILITY_MODES = ("quic*", "quic", "quic*-rel", "quic-rel")


def reliability_mode(
    partially_reliable: bool, force_reliable_payload: bool = False
) -> str:
    """The mode string for a (partially_reliable, force_reliable) pair."""
    base = "quic*" if partially_reliable else "quic"
    return base + ("-rel" if force_reliable_payload else "")


def _encode_value(value):
    """JSON-encode one spec value (QoE metric objects go by name)."""
    if isinstance(value, QoEMetric):
        return {"__qoe_metric__": value.name}
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value):
    if isinstance(value, dict):
        if set(value) == {"__qoe_metric__"}:
            return METRICS[value["__qoe_metric__"]]
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified streaming scenario (frozen, JSON-round-trippable).

    Component names (``abr``, ``trace``, ``backend``) are resolved
    against the registries at build time, so a spec can name components
    registered after the spec was written.
    """

    # What to stream and how to adapt.
    video: str = "bbb"
    abr: str = "abr_star"
    abr_kwargs: Dict = field(default_factory=dict)
    # The network underneath.
    trace: str = "verizon"
    seed: int = 0
    trace_shift_s: float = 0.0
    trace_kwargs: Dict = field(default_factory=dict)
    cross_traffic_mbps: Optional[float] = None
    link_mbps_under_cross: float = 20.0
    # Transport flavour.
    backend: str = "round"  # transport backend registry key
    reliability: str = "quic*"  # see RELIABILITY_MODES
    # Player / session knobs (mirror SessionConfig).
    buffer_segments: int = 3
    queue_packets: Optional[int] = 32
    base_rtt: float = 0.060
    selective_retransmission: bool = True
    retx_buffer_threshold: float = 0.5
    manifest_fetch: str = "free"
    manifest_window_segments: int = 4
    metric: str = "ssim"
    server_voxel_aware: bool = True
    client_voxel_aware: bool = True
    # Evaluation protocol: repetitions with per-repetition trace shifts
    # (the paper's d/reps linear-shift protocol).
    repetitions: int = 1
    # Fault injection + client resilience.  All of these (and
    # ``trace_kwargs`` above) are omitted from the canonical JSON at
    # their defaults so pre-existing spec hashes stay unchanged.
    faults: Optional[Dict] = None
    request_timeout_s: Optional[float] = None
    retry_budget: int = 3
    retry_backoff_s: float = 0.5

    def __post_init__(self):
        if self.reliability not in RELIABILITY_MODES:
            raise ValueError(
                f"unknown reliability mode {self.reliability!r}; known: "
                f"{', '.join(RELIABILITY_MODES)}"
            )
        if self.metric.lower() not in METRICS:
            raise ValueError(
                f"unknown QoE metric {self.metric!r}; known: "
                f"{', '.join(sorted(METRICS))}"
            )
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.faults is not None:
            # Structural validation only; injector kinds are checked
            # against the FAULTS registry by StackBuilder.validate.
            FaultSpec.from_dict(self.faults)
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0 when set")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")

    # ------------------------------------------------------------------
    @property
    def partially_reliable(self) -> bool:
        return self.reliability.startswith("quic*")

    @property
    def force_reliable_payload(self) -> bool:
        return self.reliability.endswith("-rel")

    def fault_spec(self) -> Optional[FaultSpec]:
        """The typed fault schedule, or None when faults are absent."""
        if self.faults is None:
            return None
        spec = FaultSpec.from_dict(self.faults)
        return None if spec.empty else spec

    def label(self) -> str:
        pr = "Q*" if self.partially_reliable else "Q"
        suffix = "+faults" if self.fault_spec() is not None else ""
        return (
            f"{self.video}/{self.abr}/{pr}/{self.trace}"
            f"/buf{self.buffer_segments}/{self.backend}{suffix}"
        )

    # ------------------------------------------------------------------
    #: Fields added after the hash format froze: omitted from the
    #: canonical JSON (and therefore the spec hash) while at their
    #: default, so scenarios that don't use them keep their pre-existing
    #: hashes.  ``faults`` additionally treats an empty event list as
    #: absent.
    _HASH_NEUTRAL_DEFAULTS = {
        "trace_kwargs": {},
        "faults": None,
        "request_timeout_s": None,
        "retry_budget": 3,
        "retry_backoff_s": 0.5,
    }

    def to_dict(self) -> Dict:
        """Plain JSON-ready dict (QoE metric objects encoded by name)."""
        data = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in self._HASH_NEUTRAL_DEFAULTS:
                if value == self._HASH_NEUTRAL_DEFAULTS[f.name]:
                    continue
                if f.name == "faults" and self.fault_spec() is None:
                    continue
            data[f.name] = _encode_value(value)
        return data

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        """Build a spec from a mapping, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ValueError(
                f"scenario spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec field(s) {unknown}; known fields: "
                f"{', '.join(sorted(known))}"
            )
        return cls(**{k: _decode_value(v) for k, v in data.items()})

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def spec_hash(self) -> str:
        """Stable 12-hex-digit content hash of the canonical JSON.

        Identical across processes and platforms: the serialization
        sorts keys and never touches Python's randomized ``hash()``.
        """
        digest = hashlib.sha256(self.to_json().encode("utf-8"))
        return digest.hexdigest()[:12]

    def __hash__(self) -> int:  # abr_kwargs is a dict; hash by content
        return hash(self.spec_hash())

    def with_(self, **overrides) -> "ScenarioSpec":
        """A copy with fields replaced (frozen-dataclass convenience)."""
        return replace(self, **overrides)
