"""Top-level VOXEL API: prepare_video / stream convenience functions."""

from repro.core.api import (
    PreparedVideo,
    StreamResult,
    available_abrs,
    available_traces,
    available_videos,
    prepare_video,
    stream,
)

__all__ = [
    "PreparedVideo",
    "StreamResult",
    "available_abrs",
    "available_traces",
    "available_videos",
    "prepare_video",
    "stream",
]
