"""Top-level VOXEL API and the scenario spine.

* :mod:`repro.core.api` — ``prepare_video()`` / ``stream()`` convenience
  functions.
* :mod:`repro.core.spec` — :class:`ScenarioSpec`, the frozen declarative
  description of one evaluation cell with a stable content hash.
* :mod:`repro.core.registry` — string-keyed component registries.
* :mod:`repro.core.build` — :class:`StackBuilder`, turning a spec into a
  ready :class:`~repro.player.session.StreamingSession`.

Names resolve lazily (PEP 562) so ``repro.core.registry`` is importable
from low-level packages without dragging in the whole stack.
"""

from repro.core.registry import Registry  # dependency-free; safe eagerly

_API_NAMES = {
    "PreparedVideo": "repro.core.api",
    "StreamResult": "repro.core.api",
    "available_abrs": "repro.core.api",
    "available_backends": "repro.core.api",
    "available_link_models": "repro.core.api",
    "available_traces": "repro.core.api",
    "available_videos": "repro.core.api",
    "prepare_video": "repro.core.api",
    "stream": "repro.core.api",
    "stream_spec": "repro.core.api",
    "ScenarioSpec": "repro.core.spec",
    "reliability_mode": "repro.core.spec",
    "StackBuilder": "repro.core.build",
    "build_session": "repro.core.build",
}


def __getattr__(name):
    if name in _API_NAMES:
        import importlib

        module = importlib.import_module(_API_NAMES[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = ["Registry"] + sorted(_API_NAMES)
