"""Fault injectors and the realized `FaultPlan`.

:func:`build_plan` turns a declarative :class:`~repro.faults.spec.FaultSpec`
into a :class:`FaultPlan` — concrete, clock-anchored fault windows — at
stack-build time.  All randomness (window placement for clauses that omit
``at``) is derived from a sha256 fold of the scenario seed, the fault
seed, the clause kind and its index, so a plan is a pure function of
``(spec, horizon, seed)``: multiclient sessions and fork-parallel sweep
workers realize byte-identical schedules at any worker count.

The plan is *stateless at query time*: every lookup
(:meth:`FaultPlan.bandwidth_factor`, :meth:`FaultPlan.reset_between`, ...)
is a pure interval query over the SimKernel clock, never a cursor — a
retried download that starts after a reset window simply no longer sees
it, with no mutable position to corrupt across retries or forks.

Injector kinds live in the :data:`FAULTS` registry so ``repro list`` and
``StackBuilder.validate`` share one catalog:

================  =========  =====================================
kind              channel    effect while the window is open
================  =========  =====================================
blackout          bandwidth  link capacity multiplied by 0
bandwidth_cliff   bandwidth  capacity multiplied by ``factor``
rtt_spike         latency    ``extra`` seconds added to base RTT
loss_burst        loss       packets dropped at rate ``rate``
reset             reset      point event: in-flight download dies
server_stall      server     ``delay`` s added to each request
================  =========  =====================================
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.registry import Registry
from repro.faults.spec import FaultClause, FaultSpec
from repro.network.traces import NetworkTrace

#: The fault-injector registry (``repro list`` shows the descriptions).
FAULTS = Registry("fault")

#: Channels a window can act on; each maps to exactly one query method.
CHANNELS = ("bandwidth", "latency", "loss", "reset", "server")


@dataclass(frozen=True)
class FaultWindow:
    """One realized fault: a half-open time window ``[start, start+duration)``
    on a single channel.  ``duration == 0`` marks a point event (resets)."""

    kind: str
    start: float
    duration: float
    value: float
    channel: str

    def __post_init__(self):
        if self.channel not in CHANNELS:
            raise ValueError(f"unknown fault channel {self.channel!r}")
        if self.start < 0 or self.duration < 0:
            raise ValueError("fault windows cannot start or run negative")

    def active(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration


@dataclass
class FaultPlan:
    """Realized fault schedule: per-channel interval queries off the clock."""

    windows: List[FaultWindow] = field(default_factory=list)

    def __post_init__(self):
        self.windows = sorted(
            self.windows, key=lambda w: (w.start, w.kind, w.value)
        )
        self._by_channel: Dict[str, List[FaultWindow]] = {
            ch: [w for w in self.windows if w.channel == ch]
            for ch in CHANNELS
        }

    # -- query methods (pure functions of t; hot path, keep them lean) --
    def bandwidth_factor(self, t: float) -> float:
        """Capacity multiplier at ``t`` (overlapping windows compound)."""
        factor = 1.0
        for w in self._by_channel["bandwidth"]:
            if w.active(t):
                factor *= w.value
        return factor

    def extra_latency(self, t: float) -> float:
        """Extra one-way/RTT seconds at ``t`` (overlaps sum)."""
        return sum(
            w.value for w in self._by_channel["latency"] if w.active(t)
        )

    def loss_rate(self, t: float) -> float:
        """Injected packet-loss rate at ``t`` (overlaps take the max)."""
        rate = 0.0
        for w in self._by_channel["loss"]:
            if w.active(t) and w.value > rate:
                rate = w.value
        return min(rate, 1.0)

    def server_delay(self, t: float) -> float:
        """Server-side per-request stall seconds at ``t`` (overlaps sum)."""
        return sum(
            w.value for w in self._by_channel["server"] if w.active(t)
        )

    def reset_between(self, a: float, b: float) -> Optional[float]:
        """First connection-reset time in ``(a, b]``, else None.

        Stateless by design: callers pass the span their download has
        covered so far; a resumed download starting after the reset time
        naturally stops seeing it.
        """
        for w in self._by_channel["reset"]:
            if a < w.start <= b:
                return w.start
        return None

    @property
    def empty(self) -> bool:
        return not self.windows


class FaultedTrace(NetworkTrace):
    """A trace view with bandwidth-channel faults multiplied in.

    Only :meth:`bandwidth_mbps` (and thus ``bandwidth_bps``) sees the
    faults; ``mean_mbps``/``std_mbps`` still describe the fault-free
    series so queue sizing and trace-calibrated defaults stay stable.
    """

    def __init__(self, base: NetworkTrace, plan: FaultPlan):
        super().__init__(
            name=base.name,
            samples_mbps=base.samples_mbps,
            shift_s=base.shift_s,
        )
        self.plan = plan

    def bandwidth_mbps(self, t: float) -> float:
        return super().bandwidth_mbps(t) * self.plan.bandwidth_factor(t)

    def shifted(self, shift_s: float) -> "FaultedTrace":
        return FaultedTrace(super().shifted(shift_s), self.plan)


# ---------------------------------------------------------------------------
# Injectors: ``(clause, horizon, rng) -> [FaultWindow, ...]``


def _float(clause: FaultClause, key: str, default: float) -> float:
    value = clause.params.get(key, default)
    if value is None:
        return default
    return float(value)


def _placements(clause: FaultClause, horizon: float, rng: random.Random,
                duration: float) -> List[float]:
    """Window start times: explicit ``at``, or ``count`` seeded draws."""
    if clause.params.get("at") is not None:
        return [float(clause.params["at"])]
    count = int(_float(clause, "count", 1))
    span = max(horizon - duration, 0.0)
    # Skip the first seconds: a fault before startup completes tests
    # nothing interesting and can starve the session of its manifest.
    lead = min(2.0, span)
    return sorted(lead + rng.random() * max(span - lead, 0.0)
                  for _ in range(count))


def _windowed(clause: FaultClause, horizon: float, rng: random.Random, *,
              channel: str, default_duration: float, value: float,
              allowed: tuple) -> List[FaultWindow]:
    unknown = sorted(set(clause.params) - set(allowed))
    if unknown:
        raise ValueError(
            f"fault {clause.kind!r}: unknown parameter(s) {unknown}; "
            f"accepted: {', '.join(sorted(allowed))}"
        )
    duration = _float(clause, "duration", default_duration)
    return [
        FaultWindow(kind=clause.kind, start=at, duration=duration,
                    value=value, channel=channel)
        for at in _placements(clause, horizon, rng, duration)
    ]


@FAULTS.register(
    "blackout",
    "total link blackout for `duration` s (capacity multiplied by 0)",
)
def _blackout(clause, horizon, rng):
    return _windowed(
        clause, horizon, rng, channel="bandwidth", default_duration=2.0,
        value=0.0, allowed=("at", "duration", "count"),
    )


@FAULTS.register(
    "bandwidth_cliff",
    "capacity collapses to `factor` (default 0.1) for `duration` s",
    aliases=("cliff",),
)
def _bandwidth_cliff(clause, horizon, rng):
    factor = _float(clause, "factor", 0.1)
    if not 0.0 <= factor < 1.0:
        raise ValueError(
            f"fault 'bandwidth_cliff': factor must be in [0, 1), "
            f"got {factor}"
        )
    return _windowed(
        clause, horizon, rng, channel="bandwidth", default_duration=10.0,
        value=factor, allowed=("at", "duration", "count", "factor"),
    )


@FAULTS.register(
    "rtt_spike",
    "adds `extra` s (default 0.3) of latency for `duration` s",
    aliases=("latency_spike",),
)
def _rtt_spike(clause, horizon, rng):
    extra = _float(clause, "extra", 0.3)
    if extra < 0:
        raise ValueError(f"fault 'rtt_spike': extra must be >= 0, got {extra}")
    return _windowed(
        clause, horizon, rng, channel="latency", default_duration=2.0,
        value=extra, allowed=("at", "duration", "count", "extra"),
    )


@FAULTS.register(
    "loss_burst",
    "drops packets at `rate` (default 0.3) for `duration` s",
)
def _loss_burst(clause, horizon, rng):
    rate = _float(clause, "rate", 0.3)
    if not 0.0 < rate <= 1.0:
        raise ValueError(
            f"fault 'loss_burst': rate must be in (0, 1], got {rate}"
        )
    return _windowed(
        clause, horizon, rng, channel="loss", default_duration=2.0,
        value=rate, allowed=("at", "duration", "count", "rate"),
    )


@FAULTS.register(
    "reset",
    "kills the in-flight download at `at` (point event)",
    aliases=("connection_reset",),
)
def _reset(clause, horizon, rng):
    unknown = sorted(set(clause.params) - {"at", "count"})
    if unknown:
        raise ValueError(
            f"fault 'reset': unknown parameter(s) {unknown}; "
            f"accepted: at, count"
        )
    return [
        FaultWindow(kind=clause.kind, start=at, duration=0.0, value=1.0,
                    channel="reset")
        for at in _placements(clause, horizon, rng, 0.0)
    ]


@FAULTS.register(
    "server_stall",
    "server adds `delay` s (default 1.0) to each request for `duration` s",
)
def _server_stall(clause, horizon, rng):
    delay = _float(clause, "delay", 1.0)
    if delay <= 0:
        raise ValueError(
            f"fault 'server_stall': delay must be > 0, got {delay}"
        )
    return _windowed(
        clause, horizon, rng, channel="server", default_duration=5.0,
        value=delay, allowed=("at", "duration", "count", "delay"),
    )


# ---------------------------------------------------------------------------
def _clause_rng(scenario_seed: int, fault_seed: int, kind: str,
                index: int) -> random.Random:
    digest = hashlib.sha256(
        f"{scenario_seed}:{fault_seed}:{kind}:{index}".encode()
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def validate_fault_spec(spec: Optional[FaultSpec]) -> None:
    """Check every clause kind against the registry (cheap, no RNG)."""
    if spec is None:
        return
    for clause in spec.events:
        if clause.kind not in FAULTS:
            raise ValueError(
                f"unknown fault kind {clause.kind!r}; known: "
                f"{', '.join(FAULTS.names())}"
            )


def build_plan(spec: Optional[FaultSpec], horizon: float,
               scenario_seed: int) -> Optional[FaultPlan]:
    """Realize ``spec`` into a plan over ``[0, horizon)``; None if empty."""
    if spec is None or spec.empty:
        return None
    windows: List[FaultWindow] = []
    for i, clause in enumerate(spec.events):
        try:
            injector = FAULTS.get(clause.kind)
        except KeyError:
            raise ValueError(
                f"unknown fault kind {clause.kind!r}; known: "
                f"{', '.join(FAULTS.names())}"
            ) from None
        rng = _clause_rng(scenario_seed, spec.seed, clause.kind, i)
        windows.extend(injector(clause, horizon, rng))
    return FaultPlan(windows=windows)


__all__ = [
    "CHANNELS", "FAULTS", "FaultPlan", "FaultWindow", "FaultedTrace",
    "build_plan", "validate_fault_spec",
]
