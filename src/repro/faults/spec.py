"""`FaultSpec`: the declarative half of the fault-injection subsystem.

A fault spec is a frozen, JSON-round-trippable description of the
imperfections one scenario should suffer: a list of *fault clauses*,
each naming an injector from the :data:`~repro.faults.plan.FAULTS`
registry plus its parameters, and a seed for the clauses that place
themselves randomly.  It deliberately mirrors
:class:`~repro.core.spec.ScenarioSpec`'s design: content-addressable,
validated on construction, rejected on unknown keys — and it folds into
the scenario spec (``ScenarioSpec(faults=...)``) such that an *absent*
fault spec leaves every pre-existing spec hash untouched.

The spec is declarative only; :func:`~repro.faults.plan.build_plan`
realizes it into a concrete :class:`~repro.faults.plan.FaultPlan`
(deterministic timelines of fault windows) at stack-build time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class FaultClause:
    """One injector invocation: a registry kind plus its parameters."""

    kind: str
    params: Dict = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError("fault clause needs a non-empty 'kind' string")
        for key, value in self.params.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"fault clause {self.kind!r}: parameter names must be "
                    f"strings, got {key!r}"
                )
            if value is not None and not isinstance(value, (int, float)):
                raise ValueError(
                    f"fault clause {self.kind!r}: parameter {key!r} must "
                    f"be numeric or null, got {type(value).__name__}"
                )

    def to_dict(self) -> Dict:
        data = {"kind": self.kind}
        data.update(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultClause":
        if not isinstance(data, dict):
            raise ValueError(
                f"fault clause must be a JSON object, got "
                f"{type(data).__name__}"
            )
        if "kind" not in data:
            raise ValueError("fault clause missing 'kind'")
        params = {k: v for k, v in data.items() if k != "kind"}
        return cls(kind=str(data["kind"]), params=params)


@dataclass(frozen=True)
class FaultSpec:
    """A declarative fault schedule (frozen, JSON-round-trippable).

    Attributes:
        events: the fault clauses, applied independently.
        seed: extra entropy for clauses placed randomly (folded with the
            scenario seed, so a seed sweep varies the schedule too).
    """

    events: Tuple[FaultClause, ...] = ()
    seed: int = 0

    def __post_init__(self):
        normalized = tuple(
            e if isinstance(e, FaultClause) else FaultClause.from_dict(e)
            for e in self.events
        )
        object.__setattr__(self, "events", normalized)
        if not isinstance(self.seed, int):
            raise ValueError("fault seed must be an integer")

    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self.events

    def kinds(self) -> List[str]:
        return [e.kind for e in self.events]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Plain JSON-ready dict (the ``ScenarioSpec.faults`` payload)."""
        data: Dict = {"events": [e.to_dict() for e in self.events]}
        if self.seed:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"fault spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {"events", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FaultSpec field(s) {unknown}; known fields: "
                f"{', '.join(sorted(known))}"
            )
        events = data.get("events", ())
        if not isinstance(events, (list, tuple)):
            raise ValueError("FaultSpec 'events' must be a list")
        return cls(
            events=tuple(FaultClause.from_dict(e) for e in events),
            seed=int(data.get("seed", 0)),
        )


__all__ = ["FaultClause", "FaultSpec"]
