"""Deterministic fault injection: declarative specs, realized plans.

``FaultSpec`` (declarative, hash-stable) -> :func:`build_plan` ->
``FaultPlan`` (clock-anchored windows the network/transport layers
query).  See ``docs/faults.md`` for the fault-model catalog and the
determinism guarantees.
"""

from repro.faults.plan import (
    CHANNELS,
    FAULTS,
    FaultedTrace,
    FaultPlan,
    FaultWindow,
    build_plan,
    validate_fault_spec,
)
from repro.faults.spec import FaultClause, FaultSpec

__all__ = [
    "CHANNELS",
    "FAULTS",
    "FaultClause",
    "FaultPlan",
    "FaultSpec",
    "FaultWindow",
    "FaultedTrace",
    "build_plan",
    "validate_fault_spec",
]
