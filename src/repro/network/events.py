"""Discrete-event scheduler for the packet-level simulation backend.

The round-based transport (:mod:`repro.transport.connection`) is fast
enough for full experiment sweeps; the packet-level backend built on this
scheduler exists to *validate* it (see ``benchmarks/bench_backends.py``)
and to support experiments that genuinely need per-packet interleaving,
such as multi-flow fairness.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventScheduler:
    """A classic heap-based discrete-event loop.

    Events are ``(time, sequence, callback)``; the sequence number keeps
    ordering stable for simultaneous events.  Callbacks may schedule
    further events.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns an id usable with :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule {delay} s in the past")
        event_id = next(self._counter)
        heapq.heappush(self._heap, (self.now + delay, event_id, callback))
        return event_id

    def cancel(self, event_id: int) -> None:
        """Cancel a scheduled event (lazy removal)."""
        self._cancelled.add(event_id)

    def empty(self) -> bool:
        return not self._heap

    def step(self) -> bool:
        """Run the next event; returns False when nothing is pending."""
        while self._heap:
            time, event_id, callback = heapq.heappop(self._heap)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            if time < self.now - 1e-12:
                raise RuntimeError("event scheduled in the past")
            self.now = max(self.now, time)
            callback()
            return True
        return False

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 50_000_000) -> None:
        """Process events until ``predicate()`` holds or the heap drains."""
        events = 0
        while not predicate():
            if not self.step():
                return
            events += 1
            if events > max_events:
                raise RuntimeError("event budget exhausted (livelock?)")
