"""Discrete-event kernel: the single clock-advancing authority.

Historically this module held only the heap scheduler behind the
packet-level transport backend.  It has since been generalized into the
simulation kernel every layer runs on:

* :class:`EventScheduler` — the classic heap-based event loop
  (time, sequence, callback), still used directly by the packet router.
* :class:`Waiter` — a one-shot wake-up handle; processes yield one to
  sleep until some event (a download completing, a timer) fires it.
* :class:`SimKernel` — an :class:`EventScheduler` that owns a
  :class:`~repro.network.clock.Clock` (kept in sync with event time) and
  can :meth:`~SimKernel.spawn` generator *processes*: resumable state
  machines that yield either a ``float`` (sleep that many simulated
  seconds) or a :class:`Waiter` (sleep until woken).  N streaming
  sessions spawned on one kernel interleave on a shared bottleneck.
* :func:`drive` — runs one process to completion without a kernel,
  reproducing the legacy blocking behaviour byte for byte: a single
  session driven this way is indistinguishable from the pre-kernel code.

The yield protocol is deliberately tiny::

    def process(self):
        result = yield from connection.download_iter(nbytes)  # Waiters
        yield 0.250                                           # sleep
        return result       # surfaced via the spawn()-returned Waiter
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter
from typing import (
    Callable, Generator, Iterable, List, Optional, Sequence, Tuple, Union,
)

from repro.network.clock import Clock
from repro.obs.spans import current as _current_profiler

_INF = float("inf")


class Waiter:
    """A one-shot wake-up handle connecting processes to events.

    A process yields a :class:`Waiter` to suspend; whoever completes the
    awaited condition calls :meth:`wake`, which runs any registered
    callbacks (the kernel's resume hook).  Waking twice is a no-op, so
    completion paths need no "already woken?" bookkeeping.
    """

    __slots__ = ("fired", "value", "_callbacks")

    def __init__(self) -> None:
        self.fired = False
        self.value = None  # optional payload (spawn() stores results here)
        self._callbacks: List[Callable[[], None]] = []

    def wake(self) -> None:
        """Fire the waiter; runs registered callbacks exactly once."""
        if self.fired:
            return
        self.fired = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()

    def on_wake(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` when fired (immediately if already fired)."""
        if self.fired:
            callback()
        else:
            self._callbacks.append(callback)


#: What a process may yield: seconds to sleep, or a Waiter to await.
ProcessYield = Union[float, Waiter]
Process = Generator[ProcessYield, None, object]


class EventScheduler:
    """A classic heap-based discrete-event loop.

    Events are ``(time, sequence, callback)``; the sequence number keeps
    ordering stable for simultaneous events.  Callbacks may schedule
    further events.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._cancelled: set = set()
        self._prof = _current_profiler()

    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns an id usable with :meth:`cancel`.  The kernel refuses to
        schedule into the past (or with a NaN/inf delay, which would
        silently corrupt the event heap's ordering).
        """
        if not math.isfinite(delay):
            raise ValueError(
                f"cannot schedule an event with non-finite delay {delay!r}"
            )
        if delay < 0:
            raise ValueError(
                f"cannot schedule an event {-delay} s in the past "
                f"(delay {delay} < 0): simulated time only moves forward"
            )
        event_id = next(self._counter)
        heapq.heappush(self._heap, (self.now + delay, event_id, callback))
        return event_id

    def schedule_many(
        self, delay: float, callbacks: Iterable[Callable[[], None]]
    ) -> List[int]:
        """Schedule a batch of callbacks at the same instant.

        Sequence numbers are assigned in iteration order, so the batch
        fires in exactly the order a loop of :meth:`schedule` calls
        would produce — but the heap is rebuilt once (append +
        ``heapify``, O(n)) instead of push-by-push (O(n log n)), which
        matters when a fleet shard spawns hundreds of sessions.  Heap
        entries stay totally ordered by ``(time, sequence)``, so the
        pop order is byte-identical either way.
        """
        if not math.isfinite(delay):
            raise ValueError(
                f"cannot schedule an event with non-finite delay {delay!r}"
            )
        if delay < 0:
            raise ValueError(
                f"cannot schedule an event {-delay} s in the past "
                f"(delay {delay} < 0): simulated time only moves forward"
            )
        at = self.now + delay
        event_ids: List[int] = []
        for callback in callbacks:
            event_id = next(self._counter)
            event_ids.append(event_id)
            self._heap.append((at, event_id, callback))
        heapq.heapify(self._heap)
        return event_ids

    def cancel(self, event_id: int) -> None:
        """Cancel a scheduled event (lazy removal)."""
        self._cancelled.add(event_id)

    def empty(self) -> bool:
        return not self._heap

    def _clock_sync(self) -> None:
        """Hook: subclasses owning a clock sync it to event time."""

    def step(self) -> bool:
        """Run the next event; returns False when nothing is pending.

        Under a span profiler, the pre-callback heap machinery (pop,
        cancellation filtering, clock sync) is metered as the flat
        ``kernel.step`` span.  The callback itself is not wrapped: it
        resumes processes that open and close their *own* spans (some
        held across yields), which a stack span here would corrupt.
        """
        prof = self._prof
        t0 = perf_counter() if prof is not None else 0.0
        heap = self._heap
        cancelled = self._cancelled
        heappop = heapq.heappop
        while heap:
            etime, event_id, callback = heappop(heap)
            if cancelled and event_id in cancelled:
                cancelled.discard(event_id)
                continue
            now = self.now
            if etime < now - 1e-12:
                raise RuntimeError(
                    f"event scheduled in the past: event time {etime:.9f} "
                    f"precedes kernel time {self.now:.9f}"
                )
            self.now = etime if etime > now else now
            self._clock_sync()
            if prof is not None:
                prof.add_flat("kernel.step", "kernel", perf_counter() - t0)
            callback()
            return True
        return False

    def run_until(self, predicate: Callable[[], bool],
                  max_events: int = 50_000_000) -> None:
        """Process events until ``predicate()`` holds or the heap drains."""
        events = 0
        while not predicate():
            if not self.step():
                return
            events += 1
            if events > max_events:
                raise RuntimeError("event budget exhausted (livelock?)")

    def run_until_all(self, waiters: Sequence["Waiter"],
                      max_events: int = 50_000_000) -> None:
        """Process events until every waiter has fired.

        Equivalent to ``run_until(lambda: all(w.fired for w in
        waiters))`` — same steps, same order — but O(1) per event
        instead of O(len(waiters)): each waiter decrements a countdown
        when it fires, so a thousand-session shard does not re-scan a
        thousand flags between every pair of events.
        """
        pending = [waiter for waiter in waiters if not waiter.fired]
        if not pending:
            return
        counter = [len(pending)]

        def _one_done() -> None:
            counter[0] -= 1

        for waiter in pending:
            waiter.on_wake(_one_done)
        events = 0
        while counter[0] > 0:
            if not self.step():
                return
            events += 1
            if events > max_events:
                raise RuntimeError("event budget exhausted (livelock?)")


class SimKernel(EventScheduler):
    """An event scheduler that owns the simulation clock and runs
    generator processes.

    The kernel is the *single* clock-advancing authority: before every
    callback it syncs ``clock.now`` to the event time, so every process
    (and everything it calls — transport, tracer, player) observes one
    consistent notion of "now".  Multi-client simulations share one
    kernel, one clock, and one bottleneck.
    """

    def __init__(self, start: float = 0.0, clock: Optional[Clock] = None):
        super().__init__(start)
        self.clock = clock if clock is not None else Clock(start)
        self.clock.now = self.now

    def _clock_sync(self) -> None:
        self.clock.now = self.now

    def step(self) -> bool:
        """Parent semantics with the clock sync inlined.

        The kernel step is the single hottest call of a simulation; the
        unprofiled path pays neither the ``perf_counter`` probe nor the
        ``_clock_sync`` hook dispatch.  Under a span profiler the
        metered parent implementation runs instead.
        """
        if self._prof is not None:
            return super().step()
        heap = self._heap
        cancelled = self._cancelled
        heappop = heapq.heappop
        while heap:
            etime, event_id, callback = heappop(heap)
            if cancelled and event_id in cancelled:
                cancelled.discard(event_id)
                continue
            now = self.now
            if etime > now:
                self.now = etime
                now = etime
            elif etime < now - 1e-12:
                raise RuntimeError(
                    f"event scheduled in the past: event time {etime:.9f} "
                    f"precedes kernel time {self.now:.9f}"
                )
            self.clock.now = now
            callback()
            return True
        return False

    def run_until_all(self, waiters: Sequence["Waiter"],
                      max_events: int = 50_000_000) -> None:
        """Parent semantics with the per-event step call inlined.

        Draining a shard pays one Python frame per event in the parent
        implementation (``run_until_all`` -> ``step``); this unprofiled
        fast path keeps the heap pop, cancellation filter, clock sync
        and callback dispatch in a single loop body.  Event order and
        error behaviour are identical.
        """
        if self._prof is not None:
            return super().run_until_all(waiters, max_events=max_events)
        pending = [waiter for waiter in waiters if not waiter.fired]
        if not pending:
            return
        counter = [len(pending)]

        def _one_done() -> None:
            counter[0] -= 1

        for waiter in pending:
            waiter.on_wake(_one_done)
        heap = self._heap
        cancelled = self._cancelled
        heappop = heapq.heappop
        clock = self.clock
        events = 0
        while counter[0] > 0:
            if not heap:
                return
            etime, event_id, callback = heappop(heap)
            if cancelled and event_id in cancelled:
                cancelled.discard(event_id)
                continue
            now = self.now
            if etime > now:
                self.now = etime
                now = etime
            elif etime < now - 1e-12:
                raise RuntimeError(
                    f"event scheduled in the past: event time {etime:.9f} "
                    f"precedes kernel time {self.now:.9f}"
                )
            clock.now = now
            callback()
            events += 1
            if events > max_events:
                raise RuntimeError("event budget exhausted (livelock?)")

    def _make_process(
        self, process: Process
    ) -> Tuple[Waiter, Callable[[], None]]:
        """Build the (done-waiter, resume-hook) pair for one process."""
        done = Waiter()
        send = process.send
        heap = self._heap
        counter = self._counter
        heappush = heapq.heappush

        def resume() -> None:
            try:
                item = send(None)
            except StopIteration as stop:
                done.value = stop.value
                done.wake()
                return
            # Plain finite sleeps (the overwhelmingly common yield) push
            # straight onto the heap; ids come from the same counter, so
            # event ordering is identical to the schedule() path.
            if type(item) is float and 0.0 <= item < _INF:
                heappush(heap, (self.now + item, next(counter), resume))
            elif isinstance(item, Waiter):
                item.on_wake(resume)
            else:
                self.schedule(item, resume)

        return done, resume

    def spawn(self, process: Process, delay: float = 0.0) -> Waiter:
        """Run a generator process on the kernel.

        The process starts after ``delay`` simulated seconds.  Returns a
        :class:`Waiter` that fires when the process finishes; the
        process's ``return`` value is stored on ``waiter.value``.
        Spawn order breaks ties between simultaneous events, so a fixed
        spawn sequence yields a deterministic interleaving.
        """
        done, resume = self._make_process(process)
        self.schedule(delay, resume)
        return done

    def spawn_many(
        self, processes: Iterable[Process], delay: float = 0.0
    ) -> List[Waiter]:
        """Spawn a batch of processes with one heap rebuild.

        Identical semantics (and byte-identical event ordering) to a
        loop of :meth:`spawn` calls — sequence numbers are assigned in
        iteration order, preserving the spawn-order determinism anchor
        — but the initial resume hooks go through
        :meth:`EventScheduler.schedule_many`, so a fleet shard can
        stand up hundreds of sessions without O(n log n) heap churn.
        """
        waiters: List[Waiter] = []
        resumes: List[Callable[[], None]] = []
        for process in processes:
            done, resume = self._make_process(process)
            waiters.append(done)
            resumes.append(resume)
        self.schedule_many(delay, resumes)
        return waiters

    def run(self, max_events: int = 50_000_000) -> None:
        """Drain the event heap completely."""
        self.run_until(lambda: False, max_events=max_events)


def drive(process: Process, clock: Clock,
          scheduler: Optional[EventScheduler] = None):
    """Run one process to completion, blocking, without a kernel.

    This is the legacy single-session execution mode: ``float`` yields
    advance ``clock`` directly; :class:`Waiter` yields run ``scheduler``
    events until the waiter fires (then sync the clock to event time),
    exactly like the pre-kernel blocking transport loops did.  A process
    driven this way produces byte-identical results to the old code.

    Under a span profiler the direct clock-advance branch is metered as
    the flat ``kernel.drive`` span (the Waiter branch's cost shows up
    in ``kernel.step`` via the scheduler it runs).
    """
    prof = _current_profiler()
    try:
        while True:
            item = process.send(None)
            if isinstance(item, Waiter):
                if scheduler is None:
                    raise RuntimeError(
                        "process yielded a Waiter but drive() has no "
                        "scheduler to run events on"
                    )
                scheduler.run_until(lambda: item.fired)
                # Match the legacy blocking downloads: event time ran
                # ahead of the session clock mid-wait; snap it forward.
                clock.now = scheduler.now
            elif prof is None:
                clock.advance(item)
            else:
                t0 = perf_counter()
                clock.advance(item)
                prof.add_flat("kernel.drive", "kernel", perf_counter() - t0)
    except StopIteration as stop:
        return stop.value
