"""Bottleneck link with a droptail queue (§5, "Network testbed").

The testbed emulates a one-hop path: server -> router -> client, with the
router shaping to the trace bandwidth, a droptail queue (1.25x the
bandwidth-delay product by default, or a fixed packet count when a trace
experiment pins it, or 750 packets for the long-queue study of §B), and a
30 ms last-mile delay on the router-to-client link.

The link is simulated at *round* (RTT-window) granularity: each round the
sender offers a burst of packets; the queue absorbs what the service rate
cannot carry; overflow beyond the queue limit is tail-dropped.  Queueing
delay feeds back into the RTT.  This keeps the loss <-> congestion-window
feedback loop of a packet-level simulation at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.traces import NetworkTrace
from repro.obs.metrics import get_registry

MTU = 1500  # bytes
BASE_RTT = 0.060  # 30 ms each way (§5)


@dataclass
class RoundOutcome:
    """Result of offering one round's burst to the link."""

    delivered_packets: int
    dropped_packets: int
    rtt: float  # round-trip time experienced by this round's packets
    bandwidth_bps: float  # service rate that applied during the round


class BottleneckLink:
    """Trace-driven droptail bottleneck shared with optional cross traffic.

    Args:
        trace: raw capacity of the bottleneck over time.
        cross_demand: aggregate cross-traffic demand; the video flow gets
            ``max(capacity - demand, fairness_floor * capacity)``.
        queue_packets: droptail queue limit in packets.  ``None`` sizes
            the queue to ``bdp_factor`` times the bandwidth-delay product
            of the *average* trace bandwidth, like the testbed.
        bdp_factor: queue size as a multiple of the BDP (default 1.25).
        base_rtt: propagation RTT in seconds.
        mtu: packet size in bytes.
        fairness_floor: minimum capacity share the video flow keeps under
            cross traffic (cross flows are congestion controlled too).
    """

    def __init__(
        self,
        trace: NetworkTrace,
        cross_demand: Optional[NetworkTrace] = None,
        queue_packets: Optional[int] = 32,
        bdp_factor: float = 1.25,
        base_rtt: float = BASE_RTT,
        mtu: int = MTU,
        fairness_floor: float = 0.25,
    ):
        self.trace = trace
        self.cross_demand = cross_demand
        self.base_rtt = base_rtt
        self.mtu = mtu
        self.fairness_floor = fairness_floor
        if queue_packets is None:
            bdp_bytes = trace.mean_mbps() * 1e6 * base_rtt / 8.0
            queue_packets = max(int(bdp_factor * bdp_bytes / mtu), 4)
        self.queue_packets = int(queue_packets)
        self.queue_bytes = 0  # current occupancy
        registry = get_registry()
        self._ctr_offered = registry.counter("link.packets_offered")
        self._ctr_dropped = registry.counter("link.packets_dropped")
        self._gauge_queue = registry.gauge("link.queue_bytes")

    # ------------------------------------------------------------------
    def available_bps(self, t: float) -> float:
        """Service rate available to the video flow at time ``t``."""
        capacity = self.trace.bandwidth_bps(t)
        if self.cross_demand is None:
            return max(capacity, 1e3)
        demand = self.cross_demand.bandwidth_bps(t)
        return max(capacity - demand, self.fairness_floor * capacity, 1e3)

    def current_rtt(self, t: float) -> float:
        """Propagation plus queueing delay at time ``t``."""
        service = self.available_bps(t)
        return self.base_rtt + self.queue_bytes * 8.0 / service

    def offer_round(self, t: float, packets: int) -> RoundOutcome:
        """Send a burst of ``packets`` through the link over one RTT.

        Returns how many packets survived, how many were tail-dropped,
        and the RTT the round experienced.  Advancing the clock is the
        caller's job (by ``rtt``).
        """
        if packets < 0:
            raise ValueError("cannot offer a negative burst")
        service = self.available_bps(t)
        rtt = self.base_rtt + self.queue_bytes * 8.0 / service

        # Bytes the link can serve while this round is in flight.
        serviceable = service * rtt / 8.0
        arrivals = packets * self.mtu

        backlog = self.queue_bytes + arrivals - serviceable
        if backlog < 0:
            backlog = 0.0
        limit = self.queue_packets * self.mtu
        dropped_bytes = max(backlog - limit, 0.0)
        self.queue_bytes = min(backlog, limit)

        dropped = min(int(dropped_bytes // self.mtu), packets)
        delivered = packets - dropped
        self._ctr_offered.inc(packets)
        if dropped:
            self._ctr_dropped.inc(dropped)
        self._gauge_queue.set(self.queue_bytes)
        return RoundOutcome(
            delivered_packets=delivered,
            dropped_packets=dropped,
            rtt=rtt,
            bandwidth_bps=service,
        )

    def drain(self, t: float, dt: float) -> None:
        """Let the queue drain while the sender is idle for ``dt``."""
        if dt <= 0:
            return
        service = self.available_bps(t)
        self.queue_bytes = max(0.0, self.queue_bytes - service * dt / 8.0)

    def reset(self) -> None:
        """Empty the queue (fresh connection on a quiet path)."""
        self.queue_bytes = 0
