"""Bottleneck link with a droptail queue (§5, "Network testbed").

The testbed emulates a one-hop path: server -> router -> client, with the
router shaping to the trace bandwidth, a droptail queue (1.25x the
bandwidth-delay product by default, or a fixed packet count when a trace
experiment pins it, or 750 packets for the long-queue study of §B), and a
30 ms last-mile delay on the router-to-client link.

The link is simulated at *round* (RTT-window) granularity: each round the
sender offers a burst of packets; the queue absorbs what the service rate
cannot carry; overflow beyond the queue limit is tail-dropped.  Queueing
delay feeds back into the RTT.  This keeps the loss <-> congestion-window
feedback loop of a packet-level simulation at a fraction of the cost.

**Shared mode.**  A link is single-flow by default, with the exact
historical accounting (each round assumes the full service rate over its
own RTT window).  Once a second flow attaches (:meth:`attach`) the link
latches into shared mode: service is accounted *continuously* — each
offer first drains the queue by ``service * elapsed`` since the last
offer from any flow, then adds its arrivals with no same-round service
lookahead.  Overlapping rounds from N senders therefore compete for one
service rate instead of each privately assuming all of it, and droptail
losses emerge from genuine aggregate pressure.  Single-flow simulations
keep byte-identical results because the latch only trips at two flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.traces import NetworkTrace
from repro.obs.metrics import get_registry
from repro.obs.spans import current as _current_profiler

MTU = 1500  # bytes
BASE_RTT = 0.060  # 30 ms each way (§5)


@dataclass(slots=True)
class RoundOutcome:
    """Result of offering one round's burst to the link."""

    delivered_packets: int
    dropped_packets: int
    rtt: float  # round-trip time experienced by this round's packets
    bandwidth_bps: float  # service rate that applied during the round


class BottleneckLink:
    """Trace-driven droptail bottleneck shared with optional cross traffic.

    Args:
        trace: raw capacity of the bottleneck over time.
        cross_demand: aggregate cross-traffic demand; the video flow gets
            ``max(capacity - demand, fairness_floor * capacity)``.
        queue_packets: droptail queue limit in packets.  ``None`` sizes
            the queue to ``bdp_factor`` times the bandwidth-delay product
            of the *average* trace bandwidth, like the testbed.
        bdp_factor: queue size as a multiple of the BDP (default 1.25).
        base_rtt: propagation RTT in seconds.
        mtu: packet size in bytes.
        fairness_floor: minimum capacity share the video flow keeps under
            cross traffic (cross flows are congestion controlled too).
    """

    def __init__(
        self,
        trace: NetworkTrace,
        cross_demand: Optional[NetworkTrace] = None,
        queue_packets: Optional[int] = 32,
        bdp_factor: float = 1.25,
        base_rtt: float = BASE_RTT,
        mtu: int = MTU,
        fairness_floor: float = 0.25,
    ):
        self.trace = trace
        self.cross_demand = cross_demand
        self.base_rtt = base_rtt
        self.mtu = mtu
        self.fairness_floor = fairness_floor
        if queue_packets is None:
            bdp_bytes = trace.mean_mbps() * 1e6 * base_rtt / 8.0
            queue_packets = max(int(bdp_factor * bdp_bytes / mtu), 4)
        self.queue_packets = int(queue_packets)
        self.queue_bytes = 0  # current occupancy
        # Flow bookkeeping: >= 2 concurrent attachments latch shared
        # (continuous-service) accounting for the rest of the run.
        self.flows = 0
        self._shared = False
        self._last_service_t: Optional[float] = None
        # Optional FaultPlan (set by the backend factory): latency-channel
        # windows add to the propagation RTT, loss-channel windows drop
        # serviced packets via a deterministic accumulator.
        self.fault_plan = None
        self._loss_accum = 0.0
        # Constant trace with no cross traffic (the fleet default):
        # the service rate is one precomputed float, so the per-round
        # paths skip the trace lookup entirely.  The precomputation
        # replays available_bps() exactly (same ops, same floats).
        self._const_bps: Optional[float] = None
        if cross_demand is None:
            const_mbps = getattr(trace, "_const_mbps", None)
            # Subclasses (e.g. FaultedTrace) may override the bandwidth
            # lookup while inheriting the base series' constant marker;
            # the fast path only applies when the base lookup is live.
            if (const_mbps is not None
                    and type(trace).bandwidth_mbps
                    is NetworkTrace.bandwidth_mbps
                    and type(trace).bandwidth_bps
                    is NetworkTrace.bandwidth_bps):
                capacity = const_mbps * 1e6
                self._const_bps = capacity if capacity > 1e3 else 1e3
        # Lifetime instance counters (cross-session conservation law).
        self.offered_packets = 0
        self.delivered_packets = 0
        self.dropped_packets = 0
        registry = get_registry()
        self._ctr_offered = registry.counter("link.packets_offered")
        self._ctr_dropped = registry.counter("link.packets_dropped")
        self._gauge_queue = registry.gauge("link.queue_bytes")
        self._prof = _current_profiler()

    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Register a flow (connection) using this link.

        The second concurrent flow permanently switches the link to the
        shared continuous-service accounting; single-flow runs never pay
        for (or observe) it.
        """
        self.flows += 1
        if self.flows >= 2:
            self._shared = True

    def release(self) -> None:
        """Deregister a flow.  Shared accounting stays latched."""
        self.flows = max(self.flows - 1, 0)

    @property
    def shared(self) -> bool:
        return self._shared

    # ------------------------------------------------------------------
    def available_bps(self, t: float) -> float:
        """Service rate available to the video flow at time ``t``."""
        const = self._const_bps
        if const is not None:
            return const
        capacity = self.trace.bandwidth_bps(t)
        if self.cross_demand is None:
            return capacity if capacity > 1e3 else 1e3
        demand = self.cross_demand.bandwidth_bps(t)
        return max(capacity - demand, self.fairness_floor * capacity, 1e3)

    def _rtt_base(self, t: float) -> float:
        """Propagation RTT plus any injected latency-fault extra."""
        if self.fault_plan is not None:
            return self.base_rtt + self.fault_plan.extra_latency(t)
        return self.base_rtt

    def _inject_loss(self, t: float, delivered: int) -> int:
        """Injected loss-fault drops among ``delivered`` packets.

        A fractional accumulator (not an RNG) keeps the drop pattern a
        pure function of the offer sequence, so shared-link multiclient
        runs stay byte-reproducible at any worker count.
        """
        if self.fault_plan is None or delivered <= 0:
            return 0
        rate = self.fault_plan.loss_rate(t)
        if rate <= 0.0:
            return 0
        self._loss_accum += delivered * rate
        injected = min(int(self._loss_accum), delivered)
        self._loss_accum -= injected
        return injected

    def current_rtt(self, t: float) -> float:
        """Propagation plus queueing delay at time ``t``."""
        service = self.available_bps(t)
        return self._rtt_base(t) + self.queue_bytes * 8.0 / service

    def offer_round(self, t: float, packets: int) -> RoundOutcome:
        """Send a burst of ``packets`` through the link over one RTT.

        Returns how many packets survived, how many were tail-dropped,
        and the RTT the round experienced.  Advancing the clock is the
        caller's job (by ``rtt``).
        """
        if packets < 0:
            raise ValueError("cannot offer a negative burst")
        prof = self._prof
        if prof is not None:
            frame = prof.push("link.offer", "link")
            try:
                if self._shared:
                    return self._offer_round_shared(t, packets)
                return self._offer_round_single(t, packets)
            finally:
                prof.pop(frame)
        if not self._shared:
            return self._offer_round_single(t, packets)
        # Unprofiled shared rounds run inline — a verbatim copy of
        # _offer_round_shared (kept as the metered/single-call form) so
        # the hottest call in a fleet shard costs one frame, not two.
        mtu = self.mtu
        plan = self.fault_plan
        service = self._const_bps
        if service is None:
            service = self.available_bps(t)
        queue = self.queue_bytes
        last_t = self._last_service_t
        if last_t is not None and t > last_t:
            queue -= service * (t - last_t) / 8.0
            if queue < 0.0:
                queue = 0.0
        self._last_service_t = t

        rtt_base = self.base_rtt if plan is None \
            else self.base_rtt + plan.extra_latency(t)
        rtt = rtt_base + queue * 8.0 / service

        backlog = queue + packets * mtu
        limit = self.queue_packets * mtu
        if backlog > limit:
            self.queue_bytes = limit
            dropped = int((backlog - limit) // mtu)
            if dropped > packets:
                dropped = packets
        else:
            self.queue_bytes = backlog
            dropped = 0

        delivered = packets - dropped
        if plan is not None:
            injected = self._inject_loss(t, delivered)
            dropped += injected
            delivered -= injected
        self.offered_packets += packets
        self.delivered_packets += delivered
        self.dropped_packets += dropped
        self._ctr_offered.inc(packets)
        if dropped:
            self._ctr_dropped.inc(dropped)
        self._gauge_queue.set(self.queue_bytes)
        return RoundOutcome(
            delivered_packets=delivered,
            dropped_packets=dropped,
            rtt=rtt,
            bandwidth_bps=service,
        )

    def _offer_round_single(self, t: float, packets: int) -> RoundOutcome:
        """Historical single-flow accounting (full rate over own RTT)."""
        mtu = self.mtu
        plan = self.fault_plan
        service = self._const_bps
        if service is None:
            service = self.available_bps(t)
        rtt_base = self.base_rtt if plan is None \
            else self.base_rtt + plan.extra_latency(t)
        rtt = rtt_base + self.queue_bytes * 8.0 / service

        # Bytes the link can serve while this round is in flight.
        serviceable = service * rtt / 8.0
        arrivals = packets * mtu

        backlog = self.queue_bytes + arrivals - serviceable
        if backlog < 0:
            backlog = 0.0
        limit = self.queue_packets * mtu
        if backlog > limit:
            self.queue_bytes = limit
            dropped = int((backlog - limit) // mtu)
            if dropped > packets:
                dropped = packets
        else:
            self.queue_bytes = backlog
            dropped = 0

        delivered = packets - dropped
        # Loss-fault drops hit packets that survived the queue (wire
        # corruption happens after service).
        if plan is not None:
            injected = self._inject_loss(t, delivered)
            dropped += injected
            delivered -= injected
        self.offered_packets += packets
        self.delivered_packets += delivered
        self.dropped_packets += dropped
        self._ctr_offered.inc(packets)
        if dropped:
            self._ctr_dropped.inc(dropped)
        self._gauge_queue.set(self.queue_bytes)
        return RoundOutcome(
            delivered_packets=delivered,
            dropped_packets=dropped,
            rtt=rtt,
            bandwidth_bps=service,
        )

    def _offer_round_shared(self, t: float, packets: int) -> RoundOutcome:
        """Continuous-service round accounting for N concurrent flows.

        Drain first (service since the last offer from *any* flow), then
        add this burst's arrivals with no same-round lookahead — the
        service the single-flow path would grant this round is instead
        granted to whoever offers next, over real elapsed time, so N
        overlapping rounds cannot multiply the link's capacity by N.
        """
        mtu = self.mtu
        plan = self.fault_plan
        service = self._const_bps
        if service is None:
            service = self.available_bps(t)
        queue = self.queue_bytes
        last_t = self._last_service_t
        if last_t is not None and t > last_t:
            queue -= service * (t - last_t) / 8.0
            if queue < 0.0:
                queue = 0.0
        self._last_service_t = t

        # Queueing delay seen by this burst: the backlog already ahead
        # of it at arrival.
        rtt_base = self.base_rtt if plan is None \
            else self.base_rtt + plan.extra_latency(t)
        rtt = rtt_base + queue * 8.0 / service

        backlog = queue + packets * mtu
        limit = self.queue_packets * mtu
        if backlog > limit:
            self.queue_bytes = limit
            dropped = int((backlog - limit) // mtu)
            if dropped > packets:
                dropped = packets
        else:
            self.queue_bytes = backlog
            dropped = 0

        delivered = packets - dropped
        if plan is not None:
            injected = self._inject_loss(t, delivered)
            dropped += injected
            delivered -= injected
        self.offered_packets += packets
        self.delivered_packets += delivered
        self.dropped_packets += dropped
        self._ctr_offered.inc(packets)
        if dropped:
            self._ctr_dropped.inc(dropped)
        self._gauge_queue.set(self.queue_bytes)
        return RoundOutcome(
            delivered_packets=delivered,
            dropped_packets=dropped,
            rtt=rtt,
            bandwidth_bps=service,
        )

    def drain(self, t: float, dt: float) -> None:
        """Let the queue drain while the sender is idle for ``dt``.

        In shared mode this is a no-op: one flow idling says nothing
        about the others, and elapsed-time draining at the next offer
        already accounts the service (double-draining here would hand
        the idler's share out twice).
        """
        if self._shared or dt <= 0:
            return
        prof = self._prof
        frame = prof.push("link.drain", "link") if prof is not None else None
        service = self.available_bps(t)
        self.queue_bytes = max(0.0, self.queue_bytes - service * dt / 8.0)
        if frame is not None:
            prof.pop(frame)

    def reset(self) -> None:
        """Empty the queue (fresh connection on a quiet path)."""
        self.queue_bytes = 0
