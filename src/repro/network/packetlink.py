"""Packet-level bottleneck router for the event-driven backend.

Models the testbed's one-hop path at per-packet granularity: packets from
any number of flows arrive at the router, wait in a shared droptail queue
(in packets), are serviced at the trace-driven bottleneck rate, and then
cross the 30 ms last-mile propagation delay.  Each delivered packet
triggers its flow's ``on_delivered`` callback (the ACK path adds the
return propagation delay at the connection layer); each dropped packet
triggers ``on_dropped`` immediately (the simulation shortcut for loss
detection — the sender reacts one RTT later anyway).

This is the high-fidelity counterpart of
:class:`repro.network.link.BottleneckLink`; the two are compared in
``benchmarks/bench_backends.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.network.events import EventScheduler
from repro.network.traces import NetworkTrace
from repro.obs.spans import current as _current_profiler

MTU = 1500
PROPAGATION_ONE_WAY = 0.030  # seconds (§5: 30 ms last mile)


@dataclass
class Packet:
    """One packet in flight."""

    flow: "object"  # the sending connection (opaque to the router)
    sequence: int  # flow-local sequence number
    size: int = MTU


class PacketRouter:
    """Shared droptail bottleneck serving packets at the trace rate.

    Args:
        scheduler: the event loop.
        trace: bottleneck capacity over time.
        queue_packets: droptail limit (shared across flows).
        propagation_s: one-way delay from router to client.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        trace: NetworkTrace,
        queue_packets: int = 32,
        propagation_s: float = PROPAGATION_ONE_WAY,
    ):
        self.scheduler = scheduler
        self.trace = trace
        self.queue_packets = int(queue_packets)
        self.propagation_s = propagation_s
        self._queue: Deque[Packet] = deque()
        self._serving = False
        # Optional FaultPlan (set by the backend factory): loss-channel
        # windows corrupt arriving packets via a deterministic
        # accumulator, latency-channel windows stretch propagation.
        self.fault_plan = None
        self._loss_accum = 0.0
        # Lifetime counters (observability + tests).
        self.offered_packets = 0
        self.delivered_packets = 0
        self.dropped_packets = 0
        self._prof = _current_profiler()

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """A packet arrives from a sender."""
        prof = self._prof
        frame = prof.push("link.enqueue", "link") \
            if prof is not None else None
        try:
            self._enqueue(packet)
        finally:
            if frame is not None:
                prof.pop(frame)

    def _enqueue(self, packet: Packet) -> None:
        self.offered_packets += 1
        if len(self._queue) >= self.queue_packets:
            self.dropped_packets += 1
            packet.flow.on_dropped(packet)
            return
        if self.fault_plan is not None:
            # Injected wire loss: a fractional accumulator (not an RNG)
            # keeps the drop pattern a pure function of the arrival
            # sequence, so shared-router multiclient runs stay
            # byte-reproducible at any worker count.
            rate = self.fault_plan.loss_rate(self.scheduler.now)
            if rate > 0.0:
                self._loss_accum += rate
                if self._loss_accum >= 1.0:
                    self._loss_accum -= 1.0
                    self.dropped_packets += 1
                    packet.flow.on_dropped(packet)
                    return
        self._queue.append(packet)
        if not self._serving:
            self._serving = True
            self._schedule_service()

    @property
    def queue_occupancy(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def _schedule_service(self) -> None:
        if not self._queue:
            self._serving = False
            return
        packet = self._queue[0]
        rate = max(self.trace.bandwidth_bps(self.scheduler.now), 1e3)
        service_time = packet.size * 8.0 / rate

        def finish() -> None:
            prof = self._prof
            frame = prof.push("link.service", "link") \
                if prof is not None else None
            served = self._queue.popleft()
            self.delivered_packets += 1
            # Propagation to the client (stretched by any latency fault
            # active at service time), then notify the flow.
            propagation = self.propagation_s
            if self.fault_plan is not None:
                propagation += self.fault_plan.extra_latency(
                    self.scheduler.now
                )
            self.scheduler.schedule(
                propagation, lambda: served.flow.on_delivered(served)
            )
            self._schedule_service()
            if frame is not None:
                prof.pop(frame)

        self.scheduler.schedule(service_time, finish)
