"""Network bandwidth traces (§5, "Network traces").

The paper replays five prerecorded traces — three LTE traces (T-Mobile,
Verizon, AT&T) from Winstein et al., a Norwegian 3G commute trace from
Riiser et al., and an FCC fixed-line broadband trace — all *linearly
offset* so their average matches the 10 Mbps top-level bitrate.  The
offset preserves the absolute variations; what distinguishes the traces
is their variability (std-dev ~9-10 Mbps for T-Mobile/Verizon, 2.88 for
AT&T, 2.35 for FCC, 1.1 for 3G).

The raw recordings are not redistributable here, so this module generates
*synthetic* traces from seeded regime-switching models calibrated to the
same mean/std-dev/burstiness regime, plus the synthetic constant and step
traces of §5.2, an "in-the-wild" WiFi-like trace, and the 86-trace 3G
commute corpus used for Fig. 10 (low average bandwidth, unscaled).
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.registry import Registry

#: The network-trace registry.  Factories take ``seed`` plus generator
#: kwargs (``duration``, ...).  ``repro list`` shows the descriptions;
#: :func:`get_trace` resolves names (including the parametrized
#: ``constant:<mbps>`` form handled before the registry lookup).
TRACES = Registry("trace")


@dataclass
class NetworkTrace:
    """A bandwidth time series with 1-second resolution.

    The trace loops when playback outlasts it, and supports the paper's
    per-trial *linear shift* (each of the 30 repetitions shifts the trace
    by d/30 seconds to probe interactions between throughput variations
    and VBR segment-size variations).
    """

    name: str
    samples_mbps: np.ndarray  # one sample per second
    shift_s: float = 0.0

    def __post_init__(self) -> None:
        self.samples_mbps = np.asarray(self.samples_mbps, dtype=float)
        if self.samples_mbps.ndim != 1 or len(self.samples_mbps) == 0:
            raise ValueError("trace needs a 1-D, non-empty sample array")
        if (self.samples_mbps < 0).any():
            raise ValueError("trace samples must be non-negative")
        # Per-round lookups index one scalar at a time, where a plain
        # Python list beats ndarray scalar extraction severalfold.
        # ``tolist()`` round-trips float64 exactly, so values are
        # bit-identical to the array path.
        self._samples_list = self.samples_mbps.tolist()
        self._num_samples = len(self._samples_list)
        # Constant traces (the fleet default) skip the floor/mod lookup;
        # the all-equal scan runs once per trace construction.
        first = self._samples_list[0]
        self._const_mbps = (
            first if self._num_samples == 1
            or bool((self.samples_mbps == first).all()) else None
        )

    @property
    def duration(self) -> float:
        return float(len(self.samples_mbps))

    def bandwidth_mbps(self, t: float) -> float:
        """Available bandwidth at absolute time ``t`` (loops)."""
        const = self._const_mbps
        if const is not None:
            return const
        # floor, not int(): truncation toward zero mis-indexes negative
        # shifted times by one sample.
        idx = math.floor(t + self.shift_s) % self._num_samples
        return self._samples_list[idx]

    def bandwidth_bps(self, t: float) -> float:
        return self.bandwidth_mbps(t) * 1e6

    def shifted(self, shift_s: float) -> "NetworkTrace":
        """A view of the same trace, shifted by ``shift_s`` seconds."""
        return NetworkTrace(
            name=self.name,
            samples_mbps=self.samples_mbps,
            shift_s=self.shift_s + shift_s,
        )

    def offset_to_mean(self, target_mbps: float, floor: float = 0.05
                       ) -> "NetworkTrace":
        """Linearly offset the trace so its mean matches ``target_mbps``.

        This is the paper's scaling: adding a constant keeps the absolute
        throughput variations intact.  Samples are floored at a small
        positive value (a link is never exactly dead for a full second).
        """
        delta = target_mbps - float(self.samples_mbps.mean())
        samples = np.maximum(self.samples_mbps + delta, floor)
        return NetworkTrace(name=self.name, samples_mbps=samples,
                            shift_s=self.shift_s)

    def mean_mbps(self) -> float:
        return float(self.samples_mbps.mean())

    def std_mbps(self) -> float:
        return float(self.samples_mbps.std())


def _seed_from(name: str, seed: int) -> np.random.Generator:
    digest = hashlib.sha256(f"{name}:{seed}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def _regime_switching(
    rng: np.random.Generator,
    duration: int,
    levels_mbps: Sequence[float],
    stay_prob: float,
    sigma: float,
    outage_level: Optional[float] = None,
    outage_prob: float = 0.0,
    outage_mean_len: float = 3.0,
) -> np.ndarray:
    """Markov regime-switching bandwidth generator.

    The process hops between discrete capacity regimes (cell conditions)
    and jitters lognormally within a regime; optional outage regimes model
    the deep fades of challenging cellular traces.
    """
    samples = np.empty(duration)
    state = int(rng.integers(0, len(levels_mbps)))
    outage_left = 0
    for t in range(duration):
        if outage_left > 0:
            outage_left -= 1
            samples[t] = max(outage_level * rng.lognormal(0, 0.4), 0.01)
            continue
        if outage_level is not None and rng.random() < outage_prob:
            outage_left = max(int(rng.exponential(outage_mean_len)), 1)
            samples[t] = max(outage_level * rng.lognormal(0, 0.4), 0.01)
            continue
        if rng.random() > stay_prob:
            state = int(rng.integers(0, len(levels_mbps)))
        samples[t] = levels_mbps[state] * rng.lognormal(0, sigma)
    return samples


_DEFAULT_DURATION = 320  # seconds; slightly longer than a 75x4 s video


@TRACES.register(
    "tmobile",
    "T-Mobile-LTE-like: extreme variability, long fades "
    "(outage_level/outage_prob/outage_mean_len tunable)",
)
def tmobile_trace(
    seed: int = 0,
    duration: int = _DEFAULT_DURATION,
    outage_level: Optional[float] = 0.5,
    outage_prob: float = 0.028,
    outage_mean_len: float = 4.0,
) -> NetworkTrace:
    """T-Mobile-LTE-like: extreme variability (std ~10 Mbps), long fades."""
    rng = _seed_from("tmobile", seed)
    raw = _regime_switching(
        rng, duration,
        levels_mbps=[2.5, 7.0, 14.0],
        stay_prob=0.93, sigma=0.62,
        outage_level=outage_level, outage_prob=outage_prob,
        outage_mean_len=outage_mean_len,
    )
    return NetworkTrace("tmobile", raw).offset_to_mean(10.0)


@TRACES.register(
    "verizon",
    "Verizon-LTE-like: high variability, shorter fades "
    "(outage_level/outage_prob/outage_mean_len tunable)",
)
def verizon_trace(
    seed: int = 0,
    duration: int = _DEFAULT_DURATION,
    outage_level: Optional[float] = 1.5,
    outage_prob: float = 0.01,
    outage_mean_len: float = 2.0,
) -> NetworkTrace:
    """Verizon-LTE-like: high variability (std ~9 Mbps), shorter fades."""
    rng = _seed_from("verizon", seed)
    raw = _regime_switching(
        rng, duration,
        levels_mbps=[4.0, 8.5, 15.0],
        stay_prob=0.92, sigma=0.55,
        outage_level=outage_level, outage_prob=outage_prob,
        outage_mean_len=outage_mean_len,
    )
    return NetworkTrace("verizon", raw).offset_to_mean(10.0)


@TRACES.register(
    "att",
    "AT&T-LTE-like: mild variability, no deep fades by default "
    "(outage_level/outage_prob/outage_mean_len tunable)",
)
def att_trace(
    seed: int = 0,
    duration: int = _DEFAULT_DURATION,
    outage_level: Optional[float] = None,
    outage_prob: float = 0.0,
    outage_mean_len: float = 3.0,
) -> NetworkTrace:
    """AT&T-LTE-like: mild variability (std ~2.9 Mbps), no deep fades."""
    rng = _seed_from("att", seed)
    raw = _regime_switching(
        rng, duration,
        levels_mbps=[7.0, 10.0, 13.0],
        stay_prob=0.85, sigma=0.18,
        outage_level=outage_level, outage_prob=outage_prob,
        outage_mean_len=outage_mean_len,
    )
    return NetworkTrace("att", raw).offset_to_mean(10.0)


@TRACES.register(
    "3g",
    "Riiser 3G commute trace offset to 10 Mbps, low variability "
    "(outage_level/outage_prob/outage_mean_len tunable)",
    aliases=("threeg",),
)
def threeg_trace(
    seed: int = 0,
    duration: int = _DEFAULT_DURATION,
    outage_level: Optional[float] = None,
    outage_prob: float = 0.0,
    outage_mean_len: float = 3.0,
) -> NetworkTrace:
    """The Riiser 3G commute trace, offset to 10 Mbps (std ~1.1 Mbps)."""
    rng = _seed_from("threeg", seed)
    base = _regime_switching(
        rng, duration,
        levels_mbps=[1.2, 2.0, 2.8],
        stay_prob=0.9, sigma=0.25,
        outage_level=outage_level, outage_prob=outage_prob,
        outage_mean_len=outage_mean_len,
    )
    return NetworkTrace("3g", base).offset_to_mean(10.0)


@TRACES.register(
    "fcc",
    "FCC fixed-line broadband: stable with rare dips "
    "(outage_level/outage_prob/outage_mean_len tunable)",
)
def fcc_trace(
    seed: int = 0,
    duration: int = _DEFAULT_DURATION,
    outage_level: Optional[float] = 3.0,
    outage_prob: float = 0.02,
    outage_mean_len: float = 2.0,
) -> NetworkTrace:
    """FCC fixed-line broadband: stable with rare dips (std ~2.35 Mbps)."""
    rng = _seed_from("fcc", seed)
    raw = _regime_switching(
        rng, duration,
        levels_mbps=[9.0, 10.5, 11.5],
        stay_prob=0.93, sigma=0.1,
        outage_level=outage_level, outage_prob=outage_prob,
        outage_mean_len=outage_mean_len,
    )
    return NetworkTrace("fcc", raw).offset_to_mean(10.0)


@TRACES.register(
    "wild",
    "in-the-wild WiFi-like path: headroom with contention dips "
    "(outage_level/outage_prob/outage_mean_len tunable)",
)
def wild_trace(
    seed: int = 0,
    duration: int = _DEFAULT_DURATION,
    outage_level: Optional[float] = 1.5,
    outage_prob: float = 0.02,
    outage_mean_len: float = 2.0,
) -> NetworkTrace:
    """In-the-wild university-WiFi-like path (France -> Germany, §5.2).

    Plenty of headroom on average, with contention-induced dips — the
    regime where BOLA and VOXEL tie on large buffers but small buffers
    expose the difference.
    """
    rng = _seed_from("wild", seed)
    raw = _regime_switching(
        rng, duration,
        levels_mbps=[6.0, 14.0, 22.0],
        stay_prob=0.85, sigma=0.22,
        outage_level=outage_level, outage_prob=outage_prob,
        outage_mean_len=outage_mean_len,
    )
    return NetworkTrace("wild", raw).offset_to_mean(12.0)


def constant_trace(mbps: float, duration: int = _DEFAULT_DURATION,
                   name: Optional[str] = None) -> NetworkTrace:
    """Constant-bandwidth synthetic trace (Fig. 11a: 10.5 Mbps)."""
    return NetworkTrace(
        name or f"constant-{mbps}",
        np.full(duration, float(mbps)),
    )


def step_trace(
    before_mbps: float = 10.75,
    after_mbps: float = 10.5,
    step_at_s: float = 70.0,
    duration: int = _DEFAULT_DURATION,
) -> NetworkTrace:
    """Step trace of Fig. 11c: starts high, drops at ``step_at_s``."""
    samples = np.full(duration, float(before_mbps))
    samples[int(step_at_s):] = float(after_mbps)
    return NetworkTrace(f"step-{before_mbps}-{after_mbps}", samples)


def riiser_3g_corpus(
    count: int = 86, seed: int = 0, duration: int = _DEFAULT_DURATION
) -> List[NetworkTrace]:
    """The 86 raw 3G commute traces of Fig. 10 (low bandwidth, unscaled).

    Means are drawn around 1-4 Mbps — low enough that streaming mostly
    lives at the bottom half of the ladder, which is exactly how the paper
    stress-tests BOLA vs BOLA-SSIM vs VOXEL with a 1-segment buffer.
    """
    rng = _seed_from("riiser-corpus", seed)
    traces = []
    for i in range(count):
        mean = float(rng.uniform(0.8, 4.0))
        sub = _seed_from("riiser", seed * 1000 + i)
        raw = _regime_switching(
            sub, duration,
            levels_mbps=[0.4 * mean, mean, 1.6 * mean],
            stay_prob=0.88, sigma=0.3,
            outage_level=0.08 * mean, outage_prob=0.03, outage_mean_len=4.0,
        )
        trace = NetworkTrace(f"3g-{i:02d}", np.maximum(raw, 0.05))
        traces.append(trace)
    return traces


# Parametrized/synthetic entries: registered so ``repro list`` shows
# them, but :func:`get_trace` resolves them before the registry lookup
# (their factories take no ``seed``).
TRACES.register(
    "constant", "constant-bandwidth synthetic trace (constant:<mbps>)"
)(lambda seed=0, mbps=10.5, **kw: constant_trace(mbps, **kw))
TRACES.register(
    "step", "step trace of Fig. 11c: 10.75 Mbps dropping to 10.5 at 70 s"
)(lambda seed=0, **kw: step_trace(**kw))

_PARAMETRIZED = ("constant", "step")

#: LRU memo of synthetic-trace generation.  Trace construction is a pure
#: function of ``(name, seed, kwargs)``, and the regime-switching
#: generators walk a Python loop over every sample — a fleet standing up
#: hundreds of sessions on the same weather otherwise regenerates the
#: identical series hundreds of times.  Traces are treated as immutable
#: by every consumer (``shifted``/``offset_to_mean`` return new
#: instances, ``FaultedTrace`` wraps), so sharing one instance is safe.
_TRACE_CACHE: "OrderedDict[tuple, NetworkTrace]" = OrderedDict()
_TRACE_CACHE_MAX = 128


def clear_trace_cache() -> None:
    """Drop every memoized trace (tests and memory-sensitive callers)."""
    _TRACE_CACHE.clear()


def _build_trace(name: str, key: str, seed: int, kwargs: dict
                 ) -> NetworkTrace:
    if key.startswith("constant"):
        mbps = float(key.split(":", 1)[1]) if ":" in key else 10.5
        return constant_trace(mbps, **kwargs)
    if key == "step":
        return step_trace(**kwargs)
    try:
        generator = TRACES.get(key)
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r}; known: "
            f"{', '.join(sorted(set(TRACES.names()) - set(_PARAMETRIZED)))}"
            f", constant:<mbps>, step"
        ) from None
    return generator(seed=seed, **kwargs)


def get_trace(
    name: str, seed: int = 0, use_cache: bool = True, **kwargs
) -> NetworkTrace:
    """Build a named trace ("tmobile", "verizon", "att", "3g", "fcc",
    "wild", "constant:<mbps>", "step").

    Results are memoized by ``(name, seed, kwargs)`` in a bounded LRU;
    pass ``use_cache=False`` to force a fresh build (the cache is also
    bypassed when a kwarg value is unhashable).
    """
    key = name.lower()
    cache_key = None
    if use_cache:
        try:
            cache_key = (key, seed, tuple(sorted(kwargs.items())))
            cached = _TRACE_CACHE.get(cache_key)
        except TypeError:
            cache_key = None  # unhashable kwarg: build uncached
        else:
            if cached is not None:
                _TRACE_CACHE.move_to_end(cache_key)
                return cached
    trace = _build_trace(name, key, seed, kwargs)
    if cache_key is not None:
        _TRACE_CACHE[cache_key] = trace
        if len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
            _TRACE_CACHE.popitem(last=False)
    return trace


TRACE_NAMES = (
    sorted(set(TRACES.names()) - set(_PARAMETRIZED)) + ["constant:10.5", "step"]
)
