"""Network emulation substrate: clock, traces, cross traffic, link."""

from repro.network.clock import Clock
from repro.network.crosstraffic import (
    CrossTrafficConfig,
    cross_traffic_available,
    generate_cross_demand,
)
from repro.network.link import BASE_RTT, MTU, BottleneckLink, RoundOutcome
from repro.network.traces import (
    TRACE_NAMES,
    TRACES,
    NetworkTrace,
    att_trace,
    constant_trace,
    fcc_trace,
    get_trace,
    riiser_3g_corpus,
    step_trace,
    threeg_trace,
    tmobile_trace,
    verizon_trace,
    wild_trace,
)

__all__ = [
    "Clock",
    "CrossTrafficConfig",
    "cross_traffic_available",
    "generate_cross_demand",
    "BASE_RTT",
    "MTU",
    "BottleneckLink",
    "RoundOutcome",
    "TRACE_NAMES",
    "TRACES",
    "NetworkTrace",
    "att_trace",
    "constant_trace",
    "fcc_trace",
    "get_trace",
    "riiser_3g_corpus",
    "step_trace",
    "threeg_trace",
    "tmobile_trace",
    "verizon_trace",
    "wild_trace",
]
