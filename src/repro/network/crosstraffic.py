"""Harpoon-style flow-level cross-traffic generator (§5.1).

Harpoon generates traffic from web-like workloads: clients fetch files of
heavy-tailed sizes at random times from servers, producing self-similar
aggregate load — "many high and low bandwidth regions" rather than a
constant bite out of the link.

This module reproduces that aggregate behaviour: flows arrive as a
Poisson process, carry Pareto-distributed sizes, and each active flow
claims a fair share of the link.  The generator realizes the aggregate
*demand* as a per-second rate series; the bottleneck link subtracts it
from the raw capacity (with a floor guaranteeing the video flow its own
fair share, since cross flows are congestion controlled too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.network.traces import NetworkTrace


@dataclass(frozen=True)
class CrossTrafficConfig:
    """Parameters of the flow-level generator.

    Attributes:
        target_mbps: long-run average demand (the paper sweeps 10/15/20).
        link_mbps: capacity of the shared bottleneck (paper: 20 Mbps).
        pareto_shape: tail index of flow sizes (heavy-tailed; 1.6 keeps
            the realized load near the target over minutes-long runs).
        mean_flow_mb: mean flow size in megabytes.
        seed: generator seed.
    """

    target_mbps: float
    link_mbps: float = 20.0
    pareto_shape: float = 1.6
    mean_flow_mb: float = 1.5
    seed: int = 0


def generate_cross_demand(
    config: CrossTrafficConfig, duration: int
) -> NetworkTrace:
    """Realize the aggregate cross-traffic demand as a rate series.

    Flows arrive Poisson at a rate chosen so the offered load averages
    ``target_mbps``; each second, the active flows share the link fairly
    and drain their remaining bytes at that rate.  The resulting series is
    bursty and self-similar-ish: idle valleys alternate with periods where
    several elephant flows saturate the link.
    """
    rng = np.random.default_rng(
        (config.seed * 2654435761 + hash(config.target_mbps)) % (2**63)
    )
    mean_size_bits = config.mean_flow_mb * 8e6
    arrival_rate = config.target_mbps * 1e6 / mean_size_bits  # flows/s

    # Pareto with mean mean_size_bits: scale = mean * (shape-1)/shape.
    shape = config.pareto_shape
    scale = mean_size_bits * (shape - 1.0) / shape

    active: list = []  # remaining bits per flow
    demand = np.zeros(duration)
    link_bps = config.link_mbps * 1e6
    for t in range(duration):
        arrivals = rng.poisson(arrival_rate)
        for _ in range(arrivals):
            size = scale * (1.0 + rng.pareto(shape))
            active.append(size)
        if not active:
            demand[t] = 0.0
            continue
        # Fair share among cross flows plus the (one) video flow.
        share = link_bps / (len(active) + 1)
        used = 0.0
        remaining = []
        for bits in active:
            sent = min(bits, share)
            used += sent
            left = bits - sent
            if left > 1:
                remaining.append(left)
        active = remaining
        demand[t] = used / 1e6
    return NetworkTrace(f"cross-{config.target_mbps:g}mbps", demand)


def cross_traffic_available(
    link_mbps: float,
    demand: NetworkTrace,
    fairness_floor: float = 0.25,
) -> NetworkTrace:
    """Bandwidth left for the video flow under the given cross demand.

    The video flow is congestion controlled, so it never gets starved
    below a fair-share floor: cross flows back off too.  The floor is a
    fraction of the link that the video flow can always claim.
    """
    available = np.maximum(
        link_mbps - demand.samples_mbps, fairness_floor * link_mbps
    )
    return NetworkTrace(f"avail-under-{demand.name}", available)
