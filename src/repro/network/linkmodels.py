"""Link-model registry: the queueing substrate under a transport backend.

Two models ship with the repo — the per-RTT fluid drop-tail bottleneck
(:class:`~repro.network.link.BottleneckLink`, used by the "round"
transport backend) and the event-driven per-packet FIFO router
(:class:`~repro.network.packetlink.PacketRouter`, used by the "packet"
backend and the fairness study).  Registering a custom model is one
decorator; transport backends resolve models by name, so a new queueing
discipline plugs in without touching the session code.
"""

from __future__ import annotations

from repro.core.registry import Registry
from repro.network.link import BottleneckLink

#: The link-model registry.  Factories take the capacity trace plus the
#: model's own knobs (queue size, propagation delay, ...).
LINK_MODELS = Registry("link model")

LINK_MODELS.register(
    "droptail",
    "per-RTT fluid drop-tail bottleneck (BottleneckLink)",
)(BottleneckLink)


def _packet_router(*args, **kwargs):
    # Imported lazily: the packet-level stack is only paid for when used.
    from repro.network.packetlink import PacketRouter

    return PacketRouter(*args, **kwargs)


LINK_MODELS.register(
    "packet-router",
    "event-driven per-packet FIFO drop-tail router (PacketRouter)",
)(_packet_router)


__all__ = ["LINK_MODELS"]
