"""Simulation clock shared by the network, transport and player layers."""

from __future__ import annotations

import math


class Clock:
    """A simple monotonically advancing simulation clock.

    The streaming session owns the clock; the transport advances it while
    downloads progress, and the player reads it to account playback and
    stalls.  Keeping it explicit (instead of a global) lets tests run many
    independent sessions side by side.  In multi-client simulations one
    clock is shared by every session and advanced by the
    :class:`~repro.network.events.SimKernel` alone.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds (finite, non-negative)."""
        if not math.isfinite(dt):
            raise ValueError(f"cannot advance clock by non-finite {dt!r}")
        if dt < 0:
            raise ValueError(f"cannot advance clock by {dt}")
        self.now += dt
        return self.now

    def __repr__(self) -> str:
        return f"Clock(now={self.now:.3f})"
