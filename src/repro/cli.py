"""Command-line interface.

::

    python -m repro list                      # catalogs: videos/abrs/traces
    python -m repro prepare bbb               # offline analysis summary
    python -m repro stream bbb --abr abr_star --trace verizon --buffer 2
    python -m repro stream bbb --trace-out trace.jsonl   # + session trace
    python -m repro trace trace.jsonl         # inspect a recorded trace
    python -m repro trace trace.jsonl --check # audit trace invariants
    python -m repro report trace.jsonl --out report.md   # markdown report
    python -m repro faults --rollup --out chaos.jsonl
    python -m repro report chaos.jsonl --check           # fleet report
    python -m repro bench --quick             # benchmark suite
    python -m repro bench --compare BENCH_main.json --threshold 10
    python -m repro profile bbb --out ledger.json --collapsed prof.folded
    python -m repro diff BENCH_main.json BENCH_pr.json --threshold 25
    python -m repro compare bbb --trace tmobile --buffer 1
    python -m repro fleet --clients 1000 --shards 8 --workers 4
    python -m repro fleet --workers 4 --resume ckpt/   # crash-safe resume
    python -m repro sweep --spec grid.json --workers 4 --out results.jsonl
    python -m repro sweep --abrs bola,abr_star --buffers 1,3 --dry-run
    python -m repro faults --profiles mixed --check-invariants
    python -m repro stream bbb --faults @faults.json --timeout 3
    python -m repro figure fig6 --light       # regenerate a paper figure
    python -m repro survey                    # the simulated user study

Every command prints human-readable text; ``--json`` switches to
machine-readable output where applicable; ``--metrics`` appends the
process metrics registry (and enables the profiling timers).  Unknown
video/ABR/trace names exit with status 2 and a one-line message.

Exit codes: 0 success; 1 audit/regression failure; 2 usage or input
error; 3 degraded fan-out run (tasks quarantined after their retry
budget — partial results were still emitted); 130 interrupted (the
fan-out commands print a one-line ``--resume`` hint instead of a
traceback).  Every artifact (``--out`` files, reports, traces,
checkpoints) is written atomically: temp file + rename, never a torn
file.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def _cmd_list(args: argparse.Namespace) -> int:
    from repro import available_videos
    from repro.abr import ABRS
    from repro.faults import FAULTS
    from repro.network.linkmodels import LINK_MODELS
    from repro.network.traces import TRACES
    from repro.obs import CAUSE_DESCRIPTIONS
    from repro.transport.backends import BACKENDS

    # Every component registry, with the one-line descriptions captured
    # at the registration sites — the catalog can never drift from what
    # the StackBuilder accepts.  Stall causes come from the attribution
    # engine's own catalog for the same reason.
    data = {
        "videos": available_videos(),
        "abrs": ABRS.describe(),
        "traces": TRACES.describe(),
        "backends": BACKENDS.describe(),
        "link_models": LINK_MODELS.describe(),
        "faults": FAULTS.describe(),
        "stall_causes": dict(CAUSE_DESCRIPTIONS),
    }
    if args.json:
        print(json.dumps(data, indent=2))
        return 0
    print(f"videos: {', '.join(data['videos'])}")
    for kind in ("abrs", "traces", "backends", "link_models", "faults",
                 "stall_causes"):
        print(f"{kind}:")
        for name, description in data[kind].items():
            print(f"  {name:14s} {description}")
    return 0


def _cmd_prepare(args: argparse.Namespace) -> int:
    from repro import prepare_video
    from repro.prep.ranking import Ordering

    prepared = prepare_video(args.video)
    manifest = prepared.manifest
    counts: Dict[str, int] = {o.value: 0 for o in Ordering}
    for rep in manifest.representations:
        for entry in rep.segments:
            counts[entry.ordering.value] += 1
    summary = {
        "video": prepared.name,
        "levels": manifest.num_levels,
        "segments": manifest.num_segments,
        "manifest_bytes": manifest.metadata_bytes(),
        "ordering_choices": counts,
    }
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"Prepared {prepared.name}: {manifest.num_levels} levels x "
          f"{manifest.num_segments} segments")
    print(f"Serialized manifest: {summary['manifest_bytes'] / 1e6:.2f} MB")
    print("Chosen orderings per (segment, level):")
    for ordering, count in counts.items():
        print(f"  {ordering:20s} {count}")
    entry = manifest.entry(manifest.num_levels - 1, 0)
    print("Top-quality segment 0 virtual levels (score:frames:bytes):")
    for point in entry.quality_points:
        print(f"  {point.serialize()}")
    return 0


def _load_faults(raw: Optional[str]) -> Optional[Dict]:
    """Parse ``--faults``: inline JSON, or ``@path`` to a JSON file."""
    if not raw:
        return None
    text = raw
    if raw.startswith("@"):
        with open(raw[1:], encoding="utf-8") as handle:
            text = handle.read()
    spec = json.loads(text)
    if not isinstance(spec, dict):
        raise ValueError("fault spec must be a JSON object")
    return spec


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro import prepare_video, stream

    tracer = None
    auditor = None
    if args.trace_out:
        from repro.obs import Tracer

        tracer = Tracer()
    if args.check_invariants:
        from repro.obs import TraceAuditor, Tracer

        # Inline audit: the auditor observes every event as it is
        # emitted, so even events later evicted from the ring buffer
        # are checked.
        if tracer is None:
            tracer = Tracer()
        auditor = TraceAuditor()
        tracer.add_observer(auditor.feed)
    prepared = prepare_video(args.video)
    abr_kwargs: Dict = {}
    if args.bandwidth_safety is not None:
        abr_kwargs["bandwidth_safety"] = args.bandwidth_safety
    resilience_kwargs: Dict = {}
    try:
        faults = _load_faults(args.faults)
        if faults is not None:
            from repro.faults import FaultSpec, validate_fault_spec

            validate_fault_spec(FaultSpec.from_dict(faults))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read fault spec {args.faults!r}: {exc}",
              file=sys.stderr)
        return 2
    if faults is not None:
        resilience_kwargs["faults"] = faults
    if args.timeout is not None:
        resilience_kwargs["request_timeout_s"] = args.timeout
    if args.retry_budget is not None:
        resilience_kwargs["retry_budget"] = args.retry_budget
    if args.retry_backoff is not None:
        resilience_kwargs["retry_backoff_s"] = args.retry_backoff
    result = stream(
        prepared,
        abr=args.abr,
        trace=args.trace,
        buffer_segments=args.buffer,
        partially_reliable=not args.plain_quic,
        seed=args.seed,
        trace_shift_s=args.shift,
        abr_kwargs=abr_kwargs or None,
        tracer=tracer,
        **resilience_kwargs,
    )
    if args.trace_out:
        from repro.ioutil import atomic_output

        # Atomic: a previously recorded trace at this path survives
        # until the new one is complete.
        try:
            with atomic_output(args.trace_out) as trace_sink:
                written = tracer.write_jsonl(trace_sink)
        except OSError as exc:
            print(f"error: cannot write trace {args.trace_out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {written} events to {args.trace_out}",
              file=sys.stderr)
    audit_failed = False
    if auditor is not None:
        from repro.obs import format_report

        report = auditor.finalize()
        print(format_report(report), file=sys.stderr)
        audit_failed = not report.ok
    summary = result.summary()
    if args.json:
        if getattr(args, "metrics", False):
            from repro.obs import get_registry

            summary = dict(summary, metrics=get_registry().dump())
        print(json.dumps(summary, indent=2))
        return 1 if audit_failed else 0
    metrics = result.metrics
    print(f"{args.video} / {args.abr} / {args.trace} / "
          f"{args.buffer}-segment buffer "
          f"({'QUIC' if args.plain_quic else 'QUIC*'})")
    print(f"  bufRatio       {metrics.buf_ratio * 100:7.2f} %")
    print(f"  startup delay  {metrics.startup_delay:7.2f} s")
    print(f"  mean SSIM      {metrics.mean_ssim:7.3f}")
    print(f"  avg bitrate    {metrics.avg_bitrate_kbps:7.0f} kbps")
    print(f"  data skipped   {metrics.data_skipped_fraction * 100:7.2f} %")
    print(f"  residual loss  {metrics.residual_loss_fraction * 100:7.2f} %")
    print(f"  switches       {metrics.quality_switches:7d}")
    if "retries" in summary:
        # Resilience block: present only when the run had a fault plan
        # or a request deadline (keeps fault-free output unchanged).
        print(f"  faults         {int(summary['faults_injected']):7d}")
        print(f"  timeouts       {int(summary['request_timeouts']):7d}")
        print(f"  conn resets    {int(summary['connection_resets']):7d}")
        print(f"  retries        {int(summary['retries']):7d}")
        print(f"  degraded segs  {int(summary['degraded_segments']):7d}")
        print(f"  backoff        {summary['backoff_s']:7.2f} s")
    _maybe_print_metrics(args)
    return 1 if audit_failed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import SchemaError, iter_trace_events
    from repro.obs import inspect as trace_inspect

    # Every mode below streams the file through one pass — O(1) memory
    # in trace length (only --type --json buffers, and only the printed
    # subset).  Malformed lines surface as SchemaError mid-stream with
    # their line number.
    try:
        if args.check:
            from repro.obs import audit_stream, format_report

            report = audit_stream(iter_trace_events(args.file))
            if args.json:
                print(json.dumps({
                    "events": report.events,
                    "ok": report.ok,
                    "violations": [
                        {
                            "invariant": v.invariant,
                            "index": v.index,
                            "seq": v.seq,
                            "t": v.t,
                            "message": v.message,
                        }
                        for v in report.violations
                    ],
                }, indent=2))
            else:
                print(format_report(report))
            return 0 if report.ok else 1
        if args.type is not None:
            matched = 0
            buffered = []
            for event in iter_trace_events(args.file):
                if event.type != args.type:
                    continue
                matched += 1
                if args.limit > 0 and matched > args.limit:
                    continue
                if args.json:
                    buffered.append(json.loads(event.to_json()))
                else:
                    print(event.to_json())
            if args.json:
                print(json.dumps(buffered, indent=2))
            elif args.limit > 0 and matched > args.limit:
                print(f"... {matched - args.limit} more", file=sys.stderr)
            return 0
        summary_builder = trace_inspect.SummaryBuilder()
        timeline_builder = (
            trace_inspect.TimelineBuilder() if args.timeline else None
        )
        for event in iter_trace_events(args.file):
            summary_builder.feed(event)
            if timeline_builder is not None:
                timeline_builder.feed(event)
        summary = summary_builder.result()
    except (OSError, SchemaError) as exc:
        print(f"error: cannot read trace {args.file!r}: {exc}",
              file=sys.stderr)
        return 2
    if timeline_builder is not None:
        rows = timeline_builder.rows()
        if args.json:
            print(json.dumps({"summary": summary, "timeline": rows},
                             indent=2))
            return 0
        print(trace_inspect.format_summary(summary))
        print(trace_inspect.format_timeline(rows))
        return 0
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(trace_inspect.format_summary(summary))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import SchemaError, build_report, render_markdown
    from repro.obs.report import report_to_json

    try:
        report = build_report(
            args.file,
            sample_rate=args.sample,
            sample_seed=args.sample_seed,
        )
    except (OSError, SchemaError) as exc:
        print(f"error: cannot read report input {args.file!r}: {exc}",
              file=sys.stderr)
        return 2
    from repro.ioutil import atomic_write_text

    markdown = render_markdown(report)
    if args.out:
        try:
            atomic_write_text(args.out, markdown)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json_out:
        try:
            atomic_write_text(args.json_out, report_to_json(report) + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.json_out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.json:
        print(report_to_json(report))
    elif not args.out:
        print(markdown, end="")
    if args.check and not report["audit"]["ok"]:
        return 1
    return 0


def _exec_policy(args: argparse.Namespace):
    """Supervision policy from ``--task-timeout``/``--task-retries``.

    Returns None when neither flag was given, keeping the default
    policy (and the serial in-process fast path at ``--workers 1``).
    """
    if args.task_timeout is None and args.task_retries is None:
        return None
    from repro.experiments.execution import DEFAULT_POLICY, ExecutionPolicy

    return ExecutionPolicy(
        task_timeout_s=args.task_timeout,
        max_attempts=(
            args.task_retries if args.task_retries is not None
            else DEFAULT_POLICY.max_attempts
        ),
    )


def _degraded_cells_exit(rows: List[Dict]) -> int:
    """Exit code for a sweep/chaos row list: 3 when any cell degraded."""
    degraded = [row for row in rows if "degraded" in row]
    if not degraded:
        return 0
    from repro.experiments.execution import EXIT_DEGRADED

    names = ", ".join(row["label"] for row in degraded)
    print(
        f"degraded run: {len(degraded)}/{len(rows)} cell(s) missing "
        f"({names}); remaining rows are valid",
        file=sys.stderr,
    )
    return EXIT_DEGRADED


def _maybe_print_metrics(args: argparse.Namespace) -> None:
    """Print the registry dump when ``--metrics`` was requested."""
    if not getattr(args, "metrics", False):
        return
    from repro.obs import get_registry, timing_summary

    rendered = get_registry().render()
    body = "\n".join(
        line for line in rendered.splitlines()
        if " timing." not in line
    )
    print(body)
    print(timing_summary())


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro import prepare_video
    from repro.experiments.runner import ExperimentConfig, compare

    prepared = prepare_video(args.video)
    base = ExperimentConfig(
        video=args.video,
        trace=args.trace,
        buffer_segments=args.buffer,
        repetitions=args.reps,
        seed=args.seed,
    )
    variants = {
        "BOLA/QUIC": {"abr": "bola", "partially_reliable": False},
        "BETA/QUIC": {"abr": "beta", "partially_reliable": False},
        "VOXEL": {"abr": "abr_star", "partially_reliable": True},
    }
    try:
        summaries = compare(
            base, variants, prepared=prepared, workers=args.workers
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = []
    for label, summary in summaries.items():
        rows.append({
            "system": label,
            "buf_ratio_p90_pct": summary.buf_ratio_p90 * 100,
            "mean_ssim": summary.mean_ssim,
            "bitrate_kbps": summary.mean_bitrate_kbps,
        })
    if args.json:
        if args.metrics:
            from repro.obs import get_registry

            print(json.dumps(
                {"rows": rows, "metrics": get_registry().dump()}, indent=2
            ))
        else:
            print(json.dumps(rows, indent=2))
        return 0
    print(f"{args.video} over {args.trace}, {args.buffer}-segment buffer, "
          f"{args.reps} trials")
    print(f"{'system':>12s} {'p90 bufRatio%':>14s} {'mean SSIM':>10s} "
          f"{'kbps':>8s}")
    for row in rows:
        print(
            f"{row['system']:>12s} {row['buf_ratio_p90_pct']:14.2f} "
            f"{row['mean_ssim']:10.3f} {row['bitrate_kbps']:8.0f}"
        )
    _maybe_print_metrics(args)
    return 0


def _cmd_multiclient(args: argparse.Namespace) -> int:
    from repro.experiments.multiclient import ClientSpec, run_multiclient

    # Mixed fleet: cycle ABR x transport flavour so any --clients count
    # exercises contention between heterogeneous sessions.
    cycle = [
        ("abr_star", True),
        ("bola", True),
        ("abr_star", False),
        ("bola", False),
    ]
    specs = [
        ClientSpec(
            abr=cycle[i % len(cycle)][0],
            video=args.video,
            partially_reliable=cycle[i % len(cycle)][1],
            buffer_segments=args.buffer,
        )
        for i in range(args.clients)
    ]

    tracer = None
    auditor = None
    if args.trace_out or args.check_invariants:
        from repro.obs import MultiSessionAuditor, Tracer

        tracer = Tracer()
        if args.check_invariants:
            auditor = MultiSessionAuditor()
            tracer.add_observer(auditor.feed)
    rollup = fleet = None
    observers = None
    if args.rollup:
        from repro.obs import FleetAttributor, TraceRollup

        rollup = TraceRollup(
            sample_rate=args.sample, sample_seed=args.sample_seed
        )
        fleet = FleetAttributor()
        observers = [rollup.feed, fleet.feed]

    result = run_multiclient(
        specs,
        trace=args.trace,
        seed=args.seed,
        queue_packets=args.queue,
        backend=args.backend,
        tracer=tracer,
        observers=observers,
    )

    if args.trace_out:
        from repro.ioutil import atomic_output

        try:
            with atomic_output(args.trace_out) as trace_sink:
                written = tracer.write_jsonl(trace_sink)
        except OSError as exc:
            print(f"error: cannot write trace {args.trace_out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {written} events to {args.trace_out}",
              file=sys.stderr)
    audit_failed = False
    if auditor is not None:
        from repro.obs import format_report

        report = auditor.finalize()
        print(format_report(report), file=sys.stderr)
        audit_failed = not report.ok

    rows = result.rows()
    if args.json:
        payload = {"jain_index": result.jain_index, "clients": rows}
        if rollup is not None:
            payload["rollup"] = rollup.summary()
            payload["attribution"] = fleet.combined().to_dict()
        if getattr(args, "metrics", False):
            from repro.obs import get_registry

            payload["metrics"] = get_registry().dump()
        print(json.dumps(payload, indent=2))
        return 1 if audit_failed else 0
    print(f"{args.clients} clients on {args.trace} "
          f"({args.backend} backend, shared bottleneck)")
    print(f"{'client':>22s} {'SSIM':>7s} {'kbps':>7s} {'bufRatio%':>10s} "
          f"{'stall s':>8s} {'Mbps':>6s}")
    for row in rows:
        print(
            f"{row['session_id']:>22s} {row['mean_ssim']:7.3f} "
            f"{row['bitrate_kbps']:7.0f} {row['buf_ratio'] * 100:10.2f} "
            f"{row['total_stall_s']:8.2f} {row['throughput_mbps']:6.2f}"
        )
    print(f"Jain's fairness index: {result.jain_index:.4f}")
    if rollup is not None:
        from repro.obs import format_attribution, format_rollup

        print(format_rollup(rollup.summary()))
        print(format_attribution(fleet.combined()))
    _maybe_print_metrics(args)
    return 1 if audit_failed else 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.experiments.fleet import (
        DEFAULT_GROUPS,
        ClientGroup,
        FleetSpec,
        format_fleet_report,
        run_fleet,
    )

    try:
        if args.spec:
            text = args.spec
            if text.startswith("@"):
                with open(text[1:], encoding="utf-8") as handle:
                    text = handle.read()
            spec = FleetSpec.from_json(text)
        else:
            groups = tuple(
                ClientGroup(
                    abr=group.abr,
                    video=args.video,
                    partially_reliable=group.partially_reliable,
                    buffer_segments=args.buffer,
                )
                for group in DEFAULT_GROUPS
            )
            spec = FleetSpec(
                clients=args.clients,
                shards=args.shards,
                groups=groups,
                trace=args.trace,
                seed=args.seed,
                backend=args.backend,
                queue_packets=args.queue,
                sample_rate=args.sample,
                sample_seed=args.sample_seed,
            )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: invalid fleet spec: {exc}", file=sys.stderr)
        return 2

    profiler = prev = None
    if args.profile:
        from repro.obs import spans

        profiler = spans.SpanProfiler()
        prev = spans.install(profiler)
    start = perf_counter()
    try:
        result = run_fleet(
            spec, workers=args.workers,
            policy=_exec_policy(args),
            checkpoint_dir=args.resume,
            strict=False,
        )
    except ValueError as exc:
        # Bad worker count or a checkpoint dir from a different run.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if profiler is not None:
            profiler.finalize()
            from repro.obs import spans

            spans.install(prev)
    wall_s = perf_counter() - start
    resumed = f", {result.resumed} shard(s) from checkpoint" \
        if result.resumed else ""
    print(
        f"{result.clients} clients / {spec.shards} shards in "
        f"{wall_s:.1f}s ({result.clients / wall_s:.0f} clients/s, "
        f"workers={args.workers}{resumed})",
        file=sys.stderr,
    )

    report = result.report()
    report["fleet_hash"] = result.fleet_hash()
    if args.out:
        from repro.ioutil import atomic_write_json

        try:
            atomic_write_json(args.out, report)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote fleet report to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_fleet_report(result))
    if profiler is not None:
        from repro.obs.ledger import build_ledger, format_ledger

        ledger = build_ledger(
            profiler, wall_s, label=f"fleet-{spec.spec_hash()}",
            spec=spec.to_dict(), spec_hash=spec.spec_hash(),
        )
        print(format_ledger(ledger))
    _maybe_print_metrics(args)
    if result.degraded is not None:
        from repro.experiments.execution import EXIT_DEGRADED

        block = result.degraded
        print(
            f"degraded run: {block['completed']}/{block['total']} "
            f"shards completed (partial statistics above)",
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


# Figure registry: name -> (callable path, light kwargs).
_FIGURES = {
    "tab1": ("table1_videos", {}),
    "tab2": ("table2_ladder", {}),
    "tab3": ("table3_youtube", {}),
    "fig1": ("fig1_drop_tolerance", {"segment_stride": 3}),
    "fig1d": ("fig1d_low_quality_ssim", {}),
    "fig2a": ("fig2a_droppable_positions", {"segment_stride": 5}),
    "fig2b": ("fig2b_ordering_comparison", {"segment_stride": 3}),
    "fig2cd": ("fig2cd_virtual_levels", {}),
    "fig3": ("fig3_fig4_vanilla_quicstar",
             {"videos": ("bbb",), "repetitions": 3}),
    "fig5": ("fig5_cross_traffic_vanilla",
             {"videos": ("bbb",), "repetitions": 2}),
    "fig6": ("fig6_bufratio",
             {"videos": ("bbb", "tos"), "buffers": (1, 7),
              "repetitions": 3}),
    "fig7": ("fig7_metric_agnostic", {"repetitions": 3}),
    "fig7d": ("fig7d_data_skipped", {"repetitions": 2}),
    "fig8": ("fig8_bitrates",
             {"videos": ("bbb",), "repetitions": 3}),
    "fig9": ("fig9_ssim_cdfs", {"repetitions": 3}),
    "fig10": ("fig10_components", {"trace_count": 30}),
    "fig11": ("fig11_synthetic", {"repetitions": 3}),
    "fig12": ("fig12_cross_traffic",
              {"videos": ("bbb",), "repetitions": 2}),
    "fig13": ("fig11d_fig13_wild",
              {"videos": ("bbb", "tos"), "repetitions": 3}),
    "fig15": ("fig15_vbr_variation", {}),
    "fig16": ("fig16_long_queue",
              {"videos": ("bbb",), "repetitions": 2}),
    "fig18cd": ("fig18cd_reliability_ablation",
                {"videos": ("bbb",), "repetitions": 3}),
    "fig19": ("fig19_youtube_tolerance", {"segment_stride": 3}),
    "retx": ("selective_retransmission_residual", {"repetitions": 4}),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import figures as figures_module
    from repro.experiments.report import render

    key = args.name.lower()
    if key not in _FIGURES:
        print(f"unknown figure {args.name!r}; known: "
              f"{', '.join(sorted(_FIGURES))}", file=sys.stderr)
        return 2
    func_name, light_kwargs = _FIGURES[key]
    func = getattr(figures_module, func_name)
    kwargs = dict(light_kwargs) if args.light else {}
    result = func(**kwargs)
    print(render(key, result))
    _maybe_print_metrics(args)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench
    from repro.obs import regression

    if args.input:
        try:
            payload = regression.load_payload(args.input)
        except (OSError, regression.BenchFormatError) as exc:
            print(f"error: cannot read bench payload {args.input!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        payload = bench.run_suite(
            quick=args.quick, seed=args.seed, label=args.label
        )
        out_path = args.out or bench.default_output_path(args.label)
        bench.write_payload(payload, out_path)
        print(f"wrote {out_path}", file=sys.stderr)

    if args.compare is None:
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(bench.format_suite(payload))
        return 0
    try:
        baseline = regression.load_payload(args.compare)
    except (OSError, regression.BenchFormatError) as exc:
        print(f"error: cannot read baseline {args.compare!r}: {exc}",
              file=sys.stderr)
        return 2
    comparison = regression.compare_payloads(
        baseline, payload, threshold_pct=args.threshold
    )
    if args.json:
        # One machine-readable object: the suite payload plus the
        # verdict (per-row deltas and statuses) — what CI consumes.
        print(json.dumps(
            {"payload": payload, "comparison": comparison.to_dict()},
            indent=2, sort_keys=True,
        ))
    else:
        print(bench.format_suite(payload))
        print(regression.format_comparison(comparison))
    return 1 if comparison.failed else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.spec import ScenarioSpec
    from repro.obs.ledger import (
        build_ledger,
        collapsed_stacks,
        format_ledger,
        profile_trials,
        write_ledger,
    )

    if args.spec:
        text = args.spec
        try:
            if text.startswith("@"):
                with open(text[1:], encoding="utf-8") as handle:
                    text = handle.read()
            fields = json.loads(text)
            if not isinstance(fields, dict):
                raise ValueError("scenario spec must be a JSON object")
            spec = ScenarioSpec.from_dict(fields)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read scenario spec {args.spec!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        if not args.video:
            print("error: provide a VIDEO or --spec JSON|@FILE",
                  file=sys.stderr)
            return 2
        fields: Dict = {
            "video": args.video,
            "abr": args.abr,
            "trace": args.trace,
            "buffer_segments": args.buffer,
            "seed": args.seed,
            "repetitions": args.reps,
        }
        if args.backend:
            fields["backend"] = args.backend
        spec = ScenarioSpec.from_dict(fields)

    try:
        profiler, _summary, wall_s = profile_trials(
            spec, workers=args.workers
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ledger = build_ledger(
        profiler, wall_s, label=spec.label(), spec=spec.to_dict(),
        spec_hash=spec.spec_hash(), top=args.top,
    )
    for path, content, what in (
        (args.out, None, "ledger"),
        (args.collapsed, collapsed_stacks(ledger), "collapsed stacks"),
    ):
        if not path:
            continue
        try:
            if content is None:
                write_ledger(path, ledger)
            else:
                from repro.ioutil import atomic_write_text

                atomic_write_text(path, content)
        except OSError as exc:
            print(f"error: cannot write {path!r}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {what} to {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(ledger, indent=2, sort_keys=True))
    else:
        print(format_ledger(ledger, top=args.top))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import diff_files, format_diff

    try:
        result = diff_files(
            args.baseline, args.current, threshold_pct=args.threshold
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(format_diff(result))
    return 1 if result["failed"] else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import (
        SweepSpec,
        dry_run_rows,
        parse_rows_jsonl,
        rows_to_jsonl,
        run_sweep,
        validate_rows,
    )

    if args.validate:
        try:
            with open(args.validate, encoding="utf-8") as handle:
                rows = parse_rows_jsonl(handle)
        except OSError as exc:
            print(f"error: cannot read sweep output {args.validate!r}: "
                  f"{exc}", file=sys.stderr)
            return 2
        try:
            count = validate_rows(rows)
        except ValueError as exc:
            print(f"error: invalid sweep output {args.validate!r}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"{args.validate}: {count} rows ok")
        return 0

    if args.spec:
        try:
            with open(args.spec, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"error: cannot read sweep spec {args.spec!r}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            sweep = SweepSpec.from_json(text)
        except ValueError as exc:
            print(f"error: invalid sweep spec {args.spec!r}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        grid: Dict[str, List] = {}

        def axis(field: str, raw: Optional[str], cast=str) -> None:
            if raw:
                grid[field] = [cast(v) for v in raw.split(",") if v]

        axis("video", args.videos)
        axis("abr", args.abrs)
        axis("trace", args.traces)
        axis("buffer_segments", args.buffers, int)
        axis("reliability", args.reliability)
        axis("backend", args.backends)
        axis("seed", args.seeds, int)
        if not grid:
            print("error: provide --spec FILE or at least one grid flag "
                  "(--videos/--abrs/--traces/--buffers/--reliability/"
                  "--backends/--seeds)", file=sys.stderr)
            return 2
        sweep = SweepSpec(base={"repetitions": args.reps}, grid=grid)

    try:
        if args.dry_run:
            rows = dry_run_rows(sweep)
        else:
            rows = run_sweep(
                sweep, workers=args.workers, rollup=args.rollup,
                sample_rate=args.sample, sample_seed=args.sample_seed,
                profile=args.profile,
                policy=_exec_policy(args),
                checkpoint_dir=args.resume,
                strict=False,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    jsonl = rows_to_jsonl(rows)
    if args.out:
        from repro.ioutil import atomic_write_text

        try:
            atomic_write_text(args.out, jsonl)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {len(rows)} rows to {args.out}", file=sys.stderr)
    if args.json or not args.out:
        if args.dry_run and not args.json:
            print(f"{len(rows)} scenarios:")
            for row in rows:
                print(f"  {row['spec_hash']}  {row['label']}")
        else:
            print(jsonl, end="")
    return _degraded_cells_exit(rows) if not args.dry_run else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import (
        CHAOS_PROFILES,
        chaos_rows_to_jsonl,
        format_chaos_report,
        run_chaos,
    )

    if args.list_profiles:
        if args.json:
            print(json.dumps(CHAOS_PROFILES, indent=2, sort_keys=True))
            return 0
        for name in sorted(CHAOS_PROFILES):
            kinds = ", ".join(
                e["kind"] for e in CHAOS_PROFILES[name]["events"]
            )
            print(f"  {name:12s} {kinds}")
        return 0

    profiles = None
    if args.profiles:
        profiles = [p for p in args.profiles.split(",") if p]
    seeds = [int(s) for s in args.seeds.split(",") if s]
    base: Dict = {}
    if args.video:
        base["video"] = args.video
    if args.trace:
        base["trace"] = args.trace
    if args.backend:
        base["backend"] = args.backend
    if args.timeout is not None:
        base["request_timeout_s"] = args.timeout
    if args.retry_budget is not None:
        base["retry_budget"] = args.retry_budget
    try:
        rows = run_chaos(
            profiles=profiles, seeds=seeds, base=base,
            workers=args.workers, rollup=args.rollup,
            sample_rate=args.sample, sample_seed=args.sample_seed,
            profile=args.profile,
            policy=_exec_policy(args),
            checkpoint_dir=args.resume,
            strict=False,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    jsonl = chaos_rows_to_jsonl(rows)
    if args.out:
        from repro.ioutil import atomic_write_text

        try:
            atomic_write_text(args.out, jsonl)
        except OSError as exc:
            print(f"error: cannot write {args.out!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"wrote {len(rows)} rows to {args.out}", file=sys.stderr)
    if args.json:
        print(jsonl, end="")
    else:
        print(format_chaos_report(rows))
    _maybe_print_metrics(args)
    if args.check_invariants and any(
        not row.get("audit", {"ok": True})["ok"] for row in rows
    ):
        return 1
    return _degraded_cells_exit(rows)


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.experiments.survey import DIMENSIONS, fig14_survey

    result = fig14_survey(
        clips=args.clips, participants=args.participants, seed=args.seed
    )
    if args.json:
        print(json.dumps({
            "participants": result.participants,
            "preference_voxel": result.preference_voxel,
            "mos": result.mos,
            "would_stop": result.would_stop,
        }, indent=2))
        return 0
    print(f"Simulated survey, {result.participants} participants:")
    for dim in DIMENSIONS:
        print(
            f"  {dim:10s} VOXEL {result.mos['VOXEL'][dim]:.2f}  "
            f"BOLA {result.mos['BOLA'][dim]:.2f}  "
            f"delta {result.mos_delta(dim):+.2f}"
        )
    print(f"  prefer VOXEL: {result.preference_voxel * 100:.0f}%")
    print(
        f"  would stop:   VOXEL {result.would_stop['VOXEL'] * 100:.0f}% / "
        f"BOLA {result.would_stop['BOLA'] * 100:.0f}%"
    )
    _maybe_print_metrics(args)
    return 0


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """Supervised-pool flags shared by the fan-out commands.

    ``--workers`` must be a positive integer (exit 2 otherwise) and is
    capped at the task count — extra workers would only idle.
    """
    parser.add_argument(
        "--resume", default=None, metavar="DIR",
        help="checkpoint spool directory: completed tasks are written "
        "here atomically as they finish, and a re-run with the same "
        "directory skips them (the resumed output is byte-identical "
        "to an uninterrupted run)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="S",
        help="per-task wall-clock deadline; a hung worker is killed "
        "and the task retried (default: no deadline)",
    )
    parser.add_argument(
        "--task-retries", type=int, default=None, metavar="N",
        help="attempts per task before it is quarantined and the run "
        "degrades (default 3; exit 3 on a degraded run)",
    )


def _add_rollup_flags(parser: argparse.ArgumentParser) -> None:
    """Streaming-rollup flags shared by multiclient/sweep/faults."""
    parser.add_argument(
        "--rollup", action="store_true",
        help="attach a streaming fleet rollup + causal stall attributor "
        "(memory-bounded; no per-event history)",
    )
    parser.add_argument(
        "--sample", type=float, default=1.0, metavar="RATE",
        help="per-session head-sampling rate for the rollup "
        "(default 1.0 = every session; deterministic per session id)",
    )
    parser.add_argument(
        "--sample-seed", type=int, default=0,
        help="seed of the session-sampling hash (default 0)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VOXEL reproduction: prepare, stream, and regenerate "
        "the paper's experiments.",
    )
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output where supported")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list videos, ABR algorithms and traces")

    p_prepare = sub.add_parser("prepare", help="run the offline analysis")
    p_prepare.add_argument("video")

    p_stream = sub.add_parser("stream", help="stream one session")
    p_stream.add_argument("video")
    p_stream.add_argument("--abr", default="abr_star")
    p_stream.add_argument("--trace", default="verizon")
    p_stream.add_argument("--buffer", type=int, default=2,
                          help="playback buffer in segments")
    p_stream.add_argument("--plain-quic", action="store_true",
                          help="disable partial reliability")
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--shift", type=float, default=0.0,
                          help="trace shift in seconds")
    p_stream.add_argument("--bandwidth-safety", type=float, default=None)
    p_stream.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record a structured session trace to this JSONL file",
    )
    p_stream.add_argument("--metrics", action="store_true",
                          help="print the metrics registry after the run")
    p_stream.add_argument(
        "--check-invariants", action="store_true",
        help="audit trace invariants inline during the session; "
        "exit 1 on any violation",
    )
    p_stream.add_argument(
        "--faults", default=None, metavar="JSON|@FILE",
        help="fault spec: inline JSON or @path to a JSON file "
        '(e.g. \'{"events": [{"kind": "blackout", "at": 5, '
        '"duration": 3}]}\')',
    )
    p_stream.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-request deadline in seconds (enables the "
        "retry/degradation path)",
    )
    p_stream.add_argument(
        "--retry-budget", type=int, default=None,
        help="retries per segment before degrading (default 3)",
    )
    p_stream.add_argument(
        "--retry-backoff", type=float, default=None, metavar="S",
        help="exponential backoff base in seconds (default 0.5)",
    )

    p_trace = sub.add_parser(
        "trace", help="inspect a JSONL session trace"
    )
    p_trace.add_argument("file", help="trace file written by --trace-out")
    p_trace.add_argument("--type", default=None,
                         help="print raw events of this type only")
    p_trace.add_argument("--timeline", action="store_true",
                         help="reconstruct the per-segment timeline")
    p_trace.add_argument("--limit", type=int, default=0,
                         help="cap the number of events printed by --type")
    p_trace.add_argument(
        "--check", action="store_true",
        help="audit the trace against the invariant catalog; "
        "exit 1 on any violation",
    )

    p_report = sub.add_parser(
        "report",
        help="render a trace file or sweep/chaos JSONL as a "
        "deterministic markdown + JSON report",
    )
    p_report.add_argument(
        "file",
        help="input: a --trace-out JSONL trace, or sweep/faults --out rows",
    )
    p_report.add_argument("--out", default=None, metavar="MD",
                          help="write the markdown report to this file")
    p_report.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the JSON report object to this file",
    )
    p_report.add_argument(
        "--check", action="store_true",
        help="exit 1 when the report's invariant audit (attribution "
        "partition included) fails",
    )
    p_report.add_argument(
        "--sample", type=float, default=1.0, metavar="RATE",
        help="per-session head-sampling rate for trace inputs "
        "(default 1.0 = every session)",
    )
    p_report.add_argument(
        "--sample-seed", type=int, default=0,
        help="seed of the session-sampling hash (default 0)",
    )

    p_bench = sub.add_parser(
        "bench", help="run the benchmark suite / compare against a baseline"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="reduced repeats and tiny synthetic workload")
    p_bench.add_argument("--label", default="local",
                         help="label embedded in the payload and filename")
    p_bench.add_argument("--out", default=None, metavar="PATH",
                         help="output path (default BENCH_<label>.json)")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare against a baseline BENCH_*.json; exit 1 on "
        "regression or missing benchmark",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=10.0,
        help="regression threshold in percent (default 10)",
    )
    p_bench.add_argument(
        "--input", default=None, metavar="PATH",
        help="compare a previously recorded payload instead of "
        "running the suite",
    )

    p_profile = sub.add_parser(
        "profile",
        help="run a scenario under the span profiler and emit a perf "
        "ledger (subsystem attribution, hotspots, collapsed stacks)",
    )
    p_profile.add_argument("video", nargs="?", default=None)
    p_profile.add_argument(
        "--spec", default=None, metavar="JSON|@FILE",
        help="full ScenarioSpec as inline JSON or @path (overrides the "
        "positional/flag form)",
    )
    p_profile.add_argument("--abr", default="abr_star")
    p_profile.add_argument("--trace", default="verizon")
    p_profile.add_argument("--buffer", type=int, default=2,
                           help="playback buffer in segments")
    p_profile.add_argument("--backend", default=None,
                           choices=("round", "packet"))
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--reps", type=int, default=1,
                           help="repetitions to profile (default 1)")
    p_profile.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the repetitions (the ledger's "
        "deterministic span tree is worker-count invariant)",
    )
    p_profile.add_argument("--top", type=int, default=12,
                           help="hotspots to keep in the ledger")
    p_profile.add_argument("--out", default=None, metavar="PATH",
                           help="write the perf ledger JSON to this file")
    p_profile.add_argument(
        "--collapsed", default=None, metavar="PATH",
        help="write collapsed stacks (speedscope/flamegraph.pl format) "
        "to this file",
    )

    p_diff = sub.add_parser(
        "diff",
        help="compare two BENCH_*.json or two perf ledgers and "
        "attribute the wall-time delta to subsystems",
    )
    p_diff.add_argument("baseline", help="baseline bench payload or ledger")
    p_diff.add_argument("current", help="current bench payload or ledger")
    p_diff.add_argument(
        "--threshold", type=float, default=10.0,
        help="regression threshold in percent (default 10); exit 1 "
        "when exceeded",
    )

    p_compare = sub.add_parser(
        "compare", help="BOLA vs BETA vs VOXEL on one scenario"
    )
    p_compare.add_argument("video")
    p_compare.add_argument("--trace", default="verizon")
    p_compare.add_argument("--buffer", type=int, default=1)
    p_compare.add_argument("--reps", type=int, default=5)
    p_compare.add_argument("--seed", type=int, default=0)
    p_compare.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the repetitions (results are "
        "byte-identical to --workers 1)",
    )
    p_compare.add_argument("--metrics", action="store_true",
                           help="print the metrics registry after the run")

    p_mc = sub.add_parser(
        "multiclient",
        help="N concurrent ABR sessions contending on one bottleneck",
    )
    p_mc.add_argument("video", nargs="?", default="bbb")
    p_mc.add_argument("--clients", type=int, default=4,
                      help="number of concurrent sessions")
    p_mc.add_argument("--trace", default="verizon")
    p_mc.add_argument("--buffer", type=int, default=3,
                      help="playback buffer in segments (per client)")
    p_mc.add_argument("--seed", type=int, default=0)
    p_mc.add_argument("--queue", type=int, default=32,
                      help="shared droptail queue in packets")
    p_mc.add_argument("--backend", choices=("round", "packet"),
                      default="round")
    p_mc.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record the interleaved multi-session trace to this "
        "JSONL file",
    )
    p_mc.add_argument(
        "--check-invariants", action="store_true",
        help="audit the interleaved trace inline (per-session laws + "
        "shared-link conservation); exit 1 on any violation",
    )
    p_mc.add_argument("--metrics", action="store_true",
                      help="print the metrics registry after the run")
    _add_rollup_flags(p_mc)

    p_fleet = sub.add_parser(
        "fleet",
        help="fleet-scale sharded simulation: 1k+ clients across cells, "
        "deterministic cross-shard merge",
    )
    p_fleet.add_argument("video", nargs="?", default="bbb",
                         help="video every population group streams")
    p_fleet.add_argument("--clients", type=int, default=1000,
                         help="fleet population size")
    p_fleet.add_argument("--shards", type=int, default=8,
                         help="cells; each gets its own kernel, "
                         "bottleneck, and trace weather")
    p_fleet.add_argument(
        "--workers", type=int, default=1,
        help="worker processes across shards (the fleet report and "
        "hash are byte-identical to --workers 1)",
    )
    p_fleet.add_argument("--trace", default="verizon",
                         help="per-shard bottleneck trace (seeded "
                         "seed+shard)")
    p_fleet.add_argument("--buffer", type=int, default=3,
                         help="playback buffer in segments (per client)")
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--queue", type=int, default=32,
                         help="shared droptail queue in packets")
    p_fleet.add_argument("--backend", choices=("round", "packet"),
                         default="round")
    p_fleet.add_argument(
        "--spec", default=None, metavar="JSON|@FILE",
        help="full FleetSpec JSON (weighted groups, faults, ...); "
        "overrides the population flags",
    )
    p_fleet.add_argument(
        "--sample", type=float, default=1.0, metavar="RATE",
        help="per-session head-sampling rate for the rollup "
        "(default 1.0; deterministic per session id)",
    )
    p_fleet.add_argument("--sample-seed", type=int, default=0,
                         help="seed of the session-sampling hash")
    p_fleet.add_argument(
        "--profile", action="store_true",
        help="fold per-shard span trees and print the perf ledger",
    )
    p_fleet.add_argument("--out", default=None, metavar="PATH",
                         help="write the fleet report JSON to this file")
    p_fleet.add_argument("--metrics", action="store_true",
                         help="print the metrics registry after the run")
    _add_resilience_flags(p_fleet)

    p_figure = sub.add_parser(
        "figure", help="regenerate a paper table/figure"
    )
    p_figure.add_argument("name", help=f"one of: {', '.join(sorted(_FIGURES))}")
    p_figure.add_argument(
        "--light", action="store_true",
        help="reduced workload (fewer videos/repetitions)",
    )
    p_figure.add_argument("--metrics", action="store_true",
                          help="print the metrics registry after the run")

    p_sweep = sub.add_parser(
        "sweep",
        help="expand a scenario grid and run every cell "
        "(JSONL rows keyed by spec hash)",
    )
    p_sweep.add_argument(
        "--spec", default=None, metavar="FILE",
        help="JSON sweep file with base/grid/scenarios "
        "(mutually exclusive with the grid flags)",
    )
    p_sweep.add_argument("--videos", default=None,
                         help="comma-separated video grid axis")
    p_sweep.add_argument("--abrs", default=None,
                         help="comma-separated ABR grid axis")
    p_sweep.add_argument("--traces", default=None,
                         help="comma-separated trace grid axis")
    p_sweep.add_argument("--buffers", default=None,
                         help="comma-separated buffer sizes (segments)")
    p_sweep.add_argument(
        "--reliability", default=None,
        help="comma-separated reliability modes (quic*, quic, "
        "quic*-rel, quic-rel)",
    )
    p_sweep.add_argument("--backends", default=None,
                         help="comma-separated transport backends")
    p_sweep.add_argument("--seeds", default=None,
                         help="comma-separated trace seeds")
    p_sweep.add_argument("--reps", type=int, default=3,
                         help="repetitions per cell (grid-flag mode)")
    p_sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes across cells (results are "
        "byte-identical to --workers 1)",
    )
    p_sweep.add_argument("--out", default=None, metavar="PATH",
                         help="write JSONL rows to this file")
    p_sweep.add_argument(
        "--dry-run", action="store_true", dest="dry_run",
        help="expand and validate the grid without simulating",
    )
    p_sweep.add_argument(
        "--validate", default=None, metavar="PATH",
        help="validate an existing sweep JSONL against the row schema "
        "(spec hash round-trip included); exit 1 on violation",
    )
    p_sweep.add_argument(
        "--profile", action="store_true",
        help="run every cell under the span profiler; rows gain a "
        "'ledger' key (works at any --workers count)",
    )
    _add_rollup_flags(p_sweep)
    _add_resilience_flags(p_sweep)

    p_faults = sub.add_parser(
        "faults",
        help="chaos sweep: named fault profiles x seeds, every cell "
        "audited against the invariant catalog",
    )
    p_faults.add_argument(
        "--profiles", default=None,
        help="comma-separated chaos profiles (default: all); "
        "see --list-profiles",
    )
    p_faults.add_argument("--seeds", default="0,1,2",
                          help="comma-separated scenario seeds")
    p_faults.add_argument("--video", default=None,
                          help="video for every cell (default bbb)")
    p_faults.add_argument("--trace", default=None,
                          help="capacity trace (default verizon)")
    p_faults.add_argument("--backend", default=None,
                          choices=("round", "packet"),
                          help="transport backend (default round)")
    p_faults.add_argument("--timeout", type=float, default=None,
                          metavar="S",
                          help="per-request deadline (default 3.0)")
    p_faults.add_argument("--retry-budget", type=int, default=None,
                          help="retries per segment (default 3)")
    p_faults.add_argument(
        "--workers", type=int, default=1,
        help="worker processes across cells (results are "
        "byte-identical to --workers 1)",
    )
    p_faults.add_argument("--out", default=None, metavar="PATH",
                          help="write JSONL rows to this file")
    p_faults.add_argument(
        "--check-invariants", action="store_true",
        help="exit 1 if any cell's inline invariant audit fails",
    )
    p_faults.add_argument(
        "--list-profiles", action="store_true",
        help="list the named chaos profiles and exit",
    )
    p_faults.add_argument("--metrics", action="store_true",
                          help="print the metrics registry after the run")
    p_faults.add_argument(
        "--profile", action="store_true",
        help="run every cell under the span profiler; rows gain a "
        "'ledger' key (works at any --workers count)",
    )
    _add_rollup_flags(p_faults)
    _add_resilience_flags(p_faults)

    p_survey = sub.add_parser("survey", help="run the simulated user study")
    p_survey.add_argument("--clips", type=int, default=8)
    p_survey.add_argument("--participants", type=int, default=54)
    p_survey.add_argument("--seed", type=int, default=0)
    p_survey.add_argument("--metrics", action="store_true",
                          help="print the metrics registry after the run")

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "prepare": _cmd_prepare,
    "stream": _cmd_stream,
    "trace": _cmd_trace,
    "compare": _cmd_compare,
    "multiclient": _cmd_multiclient,
    "fleet": _cmd_fleet,
    "figure": _cmd_figure,
    "survey": _cmd_survey,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "diff": _cmd_diff,
    "faults": _cmd_faults,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "metrics", False):
        from repro.obs import enable_profiling

        enable_profiling(True)
    try:
        return _HANDLERS[args.command](args)
    except KeyError as exc:
        # Catalog lookups (videos, ABRs, traces) raise KeyError with a
        # one-line "unknown X; known: ..." message.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except KeyboardInterrupt as exc:
        # The supervised pool kills its workers and flushes the
        # checkpoint spool before this propagates; one line instead of
        # a traceback, with the resume hint when there is one.
        hint = getattr(exc, "resume_hint", None)
        print(
            f"interrupted: {hint}" if hint else "interrupted",
            file=sys.stderr,
        )
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; suppress the noise
        # (and the flush-on-exit repeat) per the Python docs recipe.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 120


if __name__ == "__main__":
    sys.exit(main())
