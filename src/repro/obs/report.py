"""Deterministic run reports: trace or sweep/chaos JSONL in, markdown +
JSON out.

Backs the ``repro report`` CLI command.  The input kind is sniffed from
the first non-blank line:

* a trace event (``type``/``seq`` keys) — the file is streamed once
  through a :class:`~repro.obs.rollup.TraceRollup`, a
  :class:`~repro.obs.attribution.FleetAttributor`, and the invariant
  auditor, O(1) memory in trace length;
* a sweep/chaos result row (``spec_hash`` key) — rows are aggregated
  into cross-cell distributions, a fault-profile comparison (chaos),
  and a merged fleet rollup + attribution when the run collected them
  (``--rollup``).

Everything in the report is a pure function of the input file: no wall
clocks, no environment — the same input renders byte-identical markdown
and JSON, so reports can be diffed and committed as artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.obs.attribution import (
    CAUSES,
    AttributionResult,
    FleetAttributor,
)
from repro.obs.events import SchemaError
from repro.obs.invariants import MultiSessionAuditor
from repro.obs.metrics import Histogram
from repro.obs.rollup import (
    DISTRIBUTIONS,
    TraceRollup,
    _distribution,
    iter_trace_events,
)

REPORT_VERSION = 1

#: Rendering labels of the rollup distributions.
_DIST_LABELS = {
    "stall_seconds": "stall event (s)",
    "session_stall_s": "session stall (s)",
    "qoe_score": "QoE score (SSIM)",
    "buf_ratio": "bufRatio",
    "startup_delay_s": "startup delay (s)",
}


# ---------------------------------------------------------------------------
# Input sniffing and loading.
# ---------------------------------------------------------------------------
def _detect(path: str) -> str:
    """``"trace"`` or ``"rows"``, from the first non-blank line."""
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(
                    f"line {number}: unparseable JSON: {exc}"
                ) from None
            if not isinstance(payload, dict):
                raise SchemaError(
                    f"line {number}: not a JSON object"
                )
            if "type" in payload and "seq" in payload:
                return "trace"
            if "spec_hash" in payload:
                return "rows"
            raise SchemaError(
                f"line {number}: neither a trace event nor a "
                f"sweep/chaos result row"
            )
    raise SchemaError("input file holds no JSON lines")


def _load_rows(path: str) -> List[Dict]:
    """Sweep/chaos rows, with line numbers on malformed input."""
    rows: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(
                    f"line {number}: unparseable JSON: {exc}"
                ) from None
            if not isinstance(row, dict) or "spec_hash" not in row:
                raise SchemaError(
                    f"line {number}: not a sweep/chaos result row "
                    f"(missing spec_hash)"
                )
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Report building.
# ---------------------------------------------------------------------------
def build_report(
    path: str,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
) -> Dict[str, object]:
    """Build the report object for a trace file or sweep/chaos JSONL.

    Raises :class:`SchemaError` (with a line number) on malformed
    input and ``OSError`` on unreadable files — the CLI maps both to
    exit code 2.
    """
    kind = _detect(path)
    if kind == "trace":
        return _trace_report(path, sample_rate, sample_seed)
    return _rows_report(_load_rows(path), path)


def _trace_report(
    path: str, sample_rate: float, sample_seed: int
) -> Dict[str, object]:
    rollup = TraceRollup(sample_rate=sample_rate, sample_seed=sample_seed)
    fleet = FleetAttributor()
    auditor = MultiSessionAuditor()
    for event in iter_trace_events(path):
        rollup.feed(event)
        fleet.feed(event)
        auditor.feed(event)
    audit = auditor.finalize()
    combined = fleet.combined()
    sessions = {
        (sid if sid is not None else "-"): result.to_dict()
        for sid, result in fleet.results().items()
    }
    return {
        "report_version": REPORT_VERSION,
        "source": {
            "kind": "trace",
            "path": os.path.basename(path),
            "events": audit.events,
        },
        "rollup": rollup.summary(),
        "attribution": {
            "combined": combined.to_dict(),
            "sessions": sessions,
        },
        "audit": {
            "ok": audit.ok and combined.ok,
            "attribution_ok": combined.ok,
            "violations": [str(v) for v in audit.violations],
        },
    }


def _rows_report(rows: List[Dict], path: str) -> Dict[str, object]:
    if not rows:
        raise SchemaError("input file holds no result rows")
    kind = "chaos" if any("profile" in row for row in rows) else "sweep"
    # Degraded rows (cells quarantined by the supervised pool) carry no
    # summary; folding them as zeros would corrupt every distribution,
    # so they are excluded from the statistics and reported separately.
    whole = [row for row in rows if "degraded" not in row]
    qoe = Histogram()
    buf = Histogram()
    for row in whole:
        summary = row.get("summary") or {}
        if kind == "chaos":
            qoe.observe(float(summary.get("mean_ssim", 0.0)))
            buf.observe(float(summary.get("buf_ratio", 0.0)))
        else:
            qoe.observe(float(summary.get("ssim", 0.0)))
            buf.observe(float(summary.get("buf_ratio_mean", 0.0)))

    report: Dict[str, object] = {
        "report_version": REPORT_VERSION,
        "source": {
            "kind": kind,
            "path": os.path.basename(path),
            "cells": len(rows),
        },
        "cells": {
            "count": len(whole),
            "qoe_score": _distribution(qoe),
            "buf_ratio": _distribution(buf),
        },
    }
    if len(whole) < len(rows):
        report["degraded"] = {
            "completed": len(whole),
            "total": len(rows),
            "missing": [
                {
                    "spec_hash": row["spec_hash"],
                    "label": row.get("label", "-"),
                    "attempts": row["degraded"].get("attempts"),
                    "causes": row["degraded"].get("causes", []),
                }
                for row in rows if "degraded" in row
            ],
        }

    merged_rollup = _merge_row_rollups(rows)
    if merged_rollup is not None:
        report["rollup"] = merged_rollup.summary()
    merged_attr = _merge_row_attributions(rows)
    if merged_attr is not None:
        report["attribution"] = {"combined": merged_attr.to_dict()}
    if kind == "chaos":
        report["profiles"] = _profile_comparison(rows)

    audited = [row for row in rows if "audit" in row]
    cells_ok = all(row["audit"]["ok"] for row in audited)
    attribution_ok = merged_attr.ok if merged_attr is not None else True
    report["audit"] = {
        "ok": cells_ok and attribution_ok,
        "attribution_ok": attribution_ok,
        "cells_audited": len(audited),
        "violations": [
            violation
            for row in audited
            for violation in row["audit"]["violations"]
        ],
    }
    return report


def _merge_row_rollups(rows: List[Dict]) -> Optional[TraceRollup]:
    merged: Optional[TraceRollup] = None
    for row in rows:
        data = row.get("rollup")
        if data is None:
            continue
        rollup = TraceRollup.from_dict(data)
        if merged is None:
            merged = rollup
        else:
            merged.merge(rollup)
    return merged


def _merge_row_attributions(
    rows: List[Dict],
) -> Optional[AttributionResult]:
    merged: Optional[AttributionResult] = None
    for row in rows:
        data = row.get("attribution")
        if data is None:
            continue
        result = AttributionResult.from_dict(data)
        if merged is None:
            merged = result
        else:
            merged.merge(result)
    return merged


def _profile_comparison(rows: List[Dict]) -> Dict[str, Dict]:
    """Per-profile aggregate table (chaos inputs), profiles sorted."""
    groups: Dict[str, List[Dict]] = {}
    for row in rows:
        if "degraded" in row:  # no summary to aggregate
            continue
        groups.setdefault(str(row.get("profile", "-")), []).append(row)
    out: Dict[str, Dict] = {}
    for profile in sorted(groups):
        members = groups[profile]
        summaries = [row.get("summary") or {} for row in members]
        count = len(members)
        audits = [row["audit"] for row in members if "audit" in row]
        out[profile] = {
            "cells": count,
            "mean_ssim": sum(
                float(s.get("mean_ssim", 0.0)) for s in summaries
            ) / count,
            "buf_ratio": sum(
                float(s.get("buf_ratio", 0.0)) for s in summaries
            ) / count,
            "request_timeouts": int(sum(
                s.get("request_timeouts", 0) for s in summaries
            )),
            "connection_resets": int(sum(
                s.get("connection_resets", 0) for s in summaries
            )),
            "retries": int(sum(s.get("retries", 0) for s in summaries)),
            "degraded_segments": int(sum(
                s.get("degraded_segments", 0) for s in summaries
            )),
            "audits_clean": sum(1 for a in audits if a["ok"]),
            "ok": all(a["ok"] for a in audits),
        }
    return out


# ---------------------------------------------------------------------------
# Rendering.
# ---------------------------------------------------------------------------
def _fmt(value: float) -> str:
    return f"{value:.6g}"


def render_markdown(report: Dict[str, object]) -> str:
    """Deterministic markdown artifact for one report object."""
    lines: List[str] = ["# repro report", ""]
    source = report["source"]
    if source["kind"] == "trace":
        lines.append(
            f"- **source**: trace `{source['path']}` "
            f"({source['events']} events)"
        )
    else:
        lines.append(
            f"- **source**: {source['kind']} results `{source['path']}` "
            f"({source['cells']} cells)"
        )
    audit = report["audit"]
    verdict = "ok" if audit["ok"] else "**FAILED**"
    lines.append(f"- **audit**: {verdict}")
    lines.append("")

    rollup = report.get("rollup")
    if rollup is not None:
        lines.extend(_render_rollup(rollup))
    attribution = report.get("attribution")
    if attribution is not None:
        lines.extend(_render_attribution(attribution["combined"]))
    cells = report.get("cells")
    if cells is not None:
        lines.extend(_render_cells(cells))
    profiles = report.get("profiles")
    if profiles is not None:
        lines.extend(_render_profiles(profiles))
    degraded = report.get("degraded")
    if degraded is not None:
        lines.extend(_render_degraded(degraded))
    lines.extend(_render_audit(audit))
    return "\n".join(lines) + "\n"


def _render_degraded(degraded: Dict) -> List[str]:
    lines = ["## Degraded run", ""]
    lines.append(
        f"**{degraded['completed']}/{degraded['total']} cells "
        f"completed** — the statistics above cover the completed "
        f"cells only."
    )
    lines.append("")
    lines.append("| cell | attempts | causes |")
    lines.append("|---|---|---|")
    for row in degraded["missing"]:
        causes = ", ".join(row.get("causes", [])) or "-"
        lines.append(
            f"| `{row['label']}` | {row['attempts']} | {causes} |"
        )
    lines.append("")
    return lines


def _render_rollup(rollup: Dict) -> List[str]:
    lines = ["## Fleet rollup", ""]
    lines.append(
        f"{rollup['events']}/{rollup['events_seen']} events aggregated "
        f"from {rollup['sessions_sampled']}/{rollup['sessions_seen']} "
        f"sessions (sample rate {_fmt(rollup['sample_rate'])}, "
        f"seed {rollup['sample_seed']})."
    )
    lines.append("")
    lines.append("| distribution | n | mean | p50 | p90 | p99 | p99.9 |")
    lines.append("|---|---|---|---|---|---|---|")
    for name in DISTRIBUTIONS:
        dist = rollup[name]
        lines.append(
            f"| {_DIST_LABELS[name]} | {int(dist['count'])} "
            f"| {_fmt(dist['mean'])} | {_fmt(dist['p50'])} "
            f"| {_fmt(dist['p90'])} | {_fmt(dist['p99'])} "
            f"| {_fmt(dist['p999'])} |"
        )
    lines.append("")
    lines.append(f"Jain fairness index: {rollup['jain_index']:.4f}")
    lines.append("")
    return lines


def _render_attribution(combined: Dict) -> List[str]:
    lines = ["## Stall attribution", ""]
    lines.append(
        "| cause | stall s | share | stall events | quality drops |"
    )
    lines.append("|---|---|---|---|---|")
    total = float(combined["total_stall"])
    for cause in CAUSES:
        seconds = float(combined["stall_seconds"][cause])
        share = seconds / total * 100.0 if total > 0 else 0.0
        lines.append(
            f"| {cause} | {_fmt(seconds)} | {share:.1f}% "
            f"| {combined['stall_events'][cause]} "
            f"| {combined['quality_drops'][cause]} |"
        )
    lines.append(
        f"| **total** | {_fmt(total)} | 100.0% "
        f"| {combined['total_stall_events']} "
        f"| {combined['total_drops']} |"
    )
    lines.append("")
    law = "holds" if combined["ok"] else "**VIOLATED**"
    lines.append(
        f"Partition law {law}: causes sum to "
        f"{_fmt(sum(float(combined['stall_seconds'][c]) for c in CAUSES))}s "
        f"against {_fmt(total)}s of stall "
        f"(residual {float(combined['residual']):+.2e}s)."
    )
    lines.append("")
    return lines


def _render_cells(cells: Dict) -> List[str]:
    lines = ["## Cell distributions", ""]
    lines.append("| metric | n | mean | p50 | p90 | p99 |")
    lines.append("|---|---|---|---|---|---|")
    for key, label in (
        ("qoe_score", "QoE score (SSIM)"),
        ("buf_ratio", "bufRatio"),
    ):
        dist = cells[key]
        lines.append(
            f"| {label} | {int(dist['count'])} | {_fmt(dist['mean'])} "
            f"| {_fmt(dist['p50'])} | {_fmt(dist['p90'])} "
            f"| {_fmt(dist['p99'])} |"
        )
    lines.append("")
    return lines


def _render_profiles(profiles: Dict[str, Dict]) -> List[str]:
    lines = ["## Fault-profile comparison", ""]
    lines.append(
        "| profile | cells | mean SSIM | mean bufRatio | timeouts "
        "| resets | retries | degraded | audits |"
    )
    lines.append("|---|---|---|---|---|---|---|---|---|")
    for profile, row in profiles.items():
        audits = f"{row['audits_clean']}/{row['cells']}"
        if not row["ok"]:
            audits = f"**{audits}**"
        lines.append(
            f"| {profile} | {row['cells']} | {row['mean_ssim']:.4f} "
            f"| {row['buf_ratio']:.4f} | {row['request_timeouts']} "
            f"| {row['connection_resets']} | {row['retries']} "
            f"| {row['degraded_segments']} | {audits} |"
        )
    lines.append("")
    return lines


def _render_audit(audit: Dict) -> List[str]:
    lines = ["## Invariant audit", ""]
    if audit["ok"]:
        lines.append("All invariants hold (attribution partition included).")
    else:
        lines.append(
            f"**{len(audit['violations'])} violation(s)** — "
            f"attribution partition "
            f"{'holds' if audit.get('attribution_ok') else 'VIOLATED'}."
        )
        for violation in audit["violations"][:20]:
            lines.append(f"- `{violation}`")
        if len(audit["violations"]) > 20:
            lines.append(
                f"- … {len(audit['violations']) - 20} more"
            )
    lines.append("")
    return lines


def report_to_json(report: Dict[str, object]) -> str:
    """Canonical JSON form (sorted keys, stable floats)."""
    return json.dumps(report, indent=2, sort_keys=True)
