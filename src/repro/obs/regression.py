"""Benchmark regression gating: compare two BENCH_*.json payloads.

``repro bench --compare baseline.json --threshold 10`` fails (exit 1)
when any benchmark's wall time grew by at least the threshold percent —
or when a benchmark present in the baseline disappeared, which would
otherwise let a regression hide by deleting its benchmark.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.bench import BENCH_SCHEMA_VERSION


class BenchFormatError(ValueError):
    """A BENCH_*.json file does not conform to the bench schema."""


def load_payload(path: str) -> Dict[str, object]:
    """Read and schema-check one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BenchFormatError(f"unparseable bench file: {exc}") from None
    if not isinstance(payload, dict):
        raise BenchFormatError("bench payload is not a JSON object")
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise BenchFormatError(
            f"unsupported bench schema version {version!r} "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise BenchFormatError("bench payload has no 'benchmarks' map")
    for name, stats in benchmarks.items():
        if not isinstance(stats, dict) or "wall_s" not in stats:
            raise BenchFormatError(f"benchmark {name!r} has no 'wall_s'")
    return payload


@dataclass
class ComparisonRow:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    baseline_s: Optional[float]
    current_s: Optional[float]
    delta_pct: Optional[float]
    status: str  # "ok" | "regression" | "missing" | "new" | "broken"


@dataclass
class Comparison:
    """Outcome of comparing a current run against a baseline."""

    threshold_pct: float
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def missing(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status == "missing"]

    @property
    def broken(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status == "broken"]

    @property
    def failed(self) -> bool:
        return bool(self.regressions or self.missing or self.broken)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (``repro bench --json``)."""
        counts: Dict[str, int] = {}
        for row in self.rows:
            counts[row.status] = counts.get(row.status, 0) + 1
        return {
            "threshold_pct": self.threshold_pct,
            "failed": self.failed,
            "counts": dict(sorted(counts.items())),
            "rows": [
                {
                    "name": row.name,
                    "baseline_s": row.baseline_s,
                    "current_s": row.current_s,
                    "delta_pct": row.delta_pct,
                    "status": row.status,
                }
                for row in self.rows
            ],
        }


def compare_payloads(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold_pct: float = 10.0,
) -> Comparison:
    """Compare wall times benchmark by benchmark.

    A benchmark regresses when its wall time grows by at least
    ``threshold_pct`` percent over the baseline.  Benchmarks only in the
    baseline are ``missing`` (a failure); benchmarks only in the current
    run are ``new`` (informational).  A current benchmark carrying a
    falsy ``audit_ok`` (the resilience macro audits its own trace) is
    ``broken`` — a correctness failure that gates regardless of speed.
    """
    if threshold_pct <= 0:
        raise ValueError("threshold must be positive")
    base_marks: Dict[str, Dict] = baseline["benchmarks"]  # type: ignore
    cur_marks: Dict[str, Dict] = current["benchmarks"]  # type: ignore
    comparison = Comparison(threshold_pct=threshold_pct)
    for name in sorted(set(base_marks) | set(cur_marks)):
        base = base_marks.get(name)
        cur = cur_marks.get(name)
        if base is None:
            comparison.rows.append(ComparisonRow(
                name=name, baseline_s=None,
                current_s=float(cur["wall_s"]), delta_pct=None,
                status="new",
            ))
            continue
        if cur is None:
            comparison.rows.append(ComparisonRow(
                name=name, baseline_s=float(base["wall_s"]),
                current_s=None, delta_pct=None, status="missing",
            ))
            continue
        base_s = float(base["wall_s"])
        cur_s = float(cur["wall_s"])
        delta = (cur_s - base_s) / base_s * 100.0 if base_s > 0 else 0.0
        if not cur.get("audit_ok", True):
            status = "broken"
        elif delta >= threshold_pct:
            status = "regression"
        else:
            status = "ok"
        comparison.rows.append(ComparisonRow(
            name=name, baseline_s=base_s, current_s=cur_s,
            delta_pct=delta, status=status,
        ))
    return comparison


def format_comparison(comparison: Comparison) -> str:
    lines = [
        f"=== bench compare (threshold {comparison.threshold_pct:g}%) ==="
    ]
    for row in comparison.rows:
        if row.status == "new":
            lines.append(f"{row.name:28s} {'':>10s} -> "
                         f"{row.current_s:8.4f}s  NEW")
        elif row.status == "missing":
            lines.append(f"{row.name:28s} {row.baseline_s:8.4f}s -> "
                         f"{'':>10s}  MISSING")
        else:
            marker = {
                "regression": "REGRESSION",
                "broken": "AUDIT-FAIL",
            }.get(row.status, "ok")
            lines.append(
                f"{row.name:28s} {row.baseline_s:8.4f}s -> "
                f"{row.current_s:8.4f}s  {row.delta_pct:+7.1f}%  {marker}"
            )
    if comparison.failed:
        lines.append(
            f"FAIL: {len(comparison.regressions)} regression(s), "
            f"{len(comparison.missing)} missing benchmark(s), "
            f"{len(comparison.broken)} broken benchmark(s)"
        )
    else:
        lines.append("ok: no regressions")
    return "\n".join(lines)
