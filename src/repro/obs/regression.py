"""Benchmark regression gating: compare two BENCH_*.json payloads.

``repro bench --compare baseline.json --threshold 10`` fails (exit 1)
when any benchmark's wall time grew by at least the threshold percent —
or when a benchmark present in the baseline disappeared, which would
otherwise let a regression hide by deleting its benchmark.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.bench import BENCH_SCHEMA_VERSION


class BenchFormatError(ValueError):
    """A BENCH_*.json file does not conform to the bench schema."""


def load_payload(path: str) -> Dict[str, object]:
    """Read and schema-check one BENCH_*.json file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BenchFormatError(f"unparseable bench file: {exc}") from None
    if not isinstance(payload, dict):
        raise BenchFormatError("bench payload is not a JSON object")
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise BenchFormatError(
            f"unsupported bench schema version {version!r} "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise BenchFormatError("bench payload has no 'benchmarks' map")
    for name, stats in benchmarks.items():
        if not isinstance(stats, dict) or "wall_s" not in stats:
            raise BenchFormatError(f"benchmark {name!r} has no 'wall_s'")
    return payload


@dataclass
class ComparisonRow:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    baseline_s: Optional[float]
    current_s: Optional[float]
    delta_pct: Optional[float]
    status: str  # "ok" | "regression" | "missing" | "new" | "broken"


@dataclass
class Comparison:
    """Outcome of comparing a current run against a baseline."""

    threshold_pct: float
    rows: List[ComparisonRow] = field(default_factory=list)
    #: Per-subsystem wall-time attribution of the delta, when both
    #: payloads carry the ``macro.spans`` benchmark's subsystem table.
    attribution: Optional[Dict[str, object]] = None

    @property
    def regressions(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def missing(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status == "missing"]

    @property
    def broken(self) -> List[ComparisonRow]:
        return [r for r in self.rows if r.status == "broken"]

    @property
    def failed(self) -> bool:
        return bool(self.regressions or self.missing or self.broken)

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable form (``repro bench --json``)."""
        counts: Dict[str, int] = {}
        for row in self.rows:
            counts[row.status] = counts.get(row.status, 0) + 1
        return {
            "threshold_pct": self.threshold_pct,
            "failed": self.failed,
            "counts": dict(sorted(counts.items())),
            "attribution": self.attribution,
            "rows": [
                {
                    "name": row.name,
                    "baseline_s": row.baseline_s,
                    "current_s": row.current_s,
                    "delta_pct": row.delta_pct,
                    "status": row.status,
                }
                for row in self.rows
            ],
        }


def span_attribution(
    base_marks: Dict[str, Dict],
    cur_marks: Dict[str, Dict],
) -> Optional[Dict[str, object]]:
    """Attribute a wall-time delta to subsystems via ``macro.spans``.

    Both payloads must carry the ``macro.spans`` benchmark with its
    flat ``subsystems`` table (``{name: self_wall_s}``); returns None
    otherwise.  The ``top`` entry names the subsystem whose self time
    grew the most — the prime suspect for any regression.
    """
    base = (base_marks.get("macro.spans") or {}).get("subsystems")
    cur = (cur_marks.get("macro.spans") or {}).get("subsystems")
    if not isinstance(base, dict) or not isinstance(cur, dict):
        return None
    table: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(base) | set(cur)):
        b = float(base.get(name, 0.0))
        c = float(cur.get(name, 0.0))
        table[name] = {
            "baseline_s": b,
            "current_s": c,
            "delta_s": c - b,
        }
    top = max(
        table, key=lambda n: (table[n]["delta_s"], n), default=None
    )
    return {
        "subsystems": table,
        "top": top,
        "top_delta_s": table[top]["delta_s"] if top else 0.0,
    }


def compare_payloads(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold_pct: float = 10.0,
) -> Comparison:
    """Compare wall times benchmark by benchmark.

    A benchmark regresses when its wall time grows by at least
    ``threshold_pct`` percent over the baseline.  Benchmarks only in the
    baseline are ``missing`` (a failure); benchmarks only in the current
    run are ``new`` (informational).  A current benchmark carrying a
    falsy ``audit_ok`` (the resilience macro audits its own trace) is
    ``broken`` — a correctness failure that gates regardless of speed.
    """
    if threshold_pct <= 0:
        raise ValueError("threshold must be positive")
    base_marks: Dict[str, Dict] = baseline["benchmarks"]  # type: ignore
    cur_marks: Dict[str, Dict] = current["benchmarks"]  # type: ignore
    comparison = Comparison(threshold_pct=threshold_pct)
    for name in sorted(set(base_marks) | set(cur_marks)):
        base = base_marks.get(name)
        cur = cur_marks.get(name)
        if base is None:
            comparison.rows.append(ComparisonRow(
                name=name, baseline_s=None,
                current_s=float(cur["wall_s"]), delta_pct=None,
                status="new",
            ))
            continue
        if cur is None:
            comparison.rows.append(ComparisonRow(
                name=name, baseline_s=float(base["wall_s"]),
                current_s=None, delta_pct=None, status="missing",
            ))
            continue
        base_s = float(base["wall_s"])
        cur_s = float(cur["wall_s"])
        delta = (cur_s - base_s) / base_s * 100.0 if base_s > 0 else 0.0
        if not cur.get("audit_ok", True):
            status = "broken"
        elif delta >= threshold_pct:
            status = "regression"
        else:
            status = "ok"
        comparison.rows.append(ComparisonRow(
            name=name, baseline_s=base_s, current_s=cur_s,
            delta_pct=delta, status=status,
        ))
    comparison.attribution = span_attribution(base_marks, cur_marks)
    return comparison


def format_comparison(comparison: Comparison) -> str:
    lines = [
        f"=== bench compare (threshold {comparison.threshold_pct:g}%) ==="
    ]
    for row in comparison.rows:
        if row.status == "new":
            lines.append(f"{row.name:28s} {'':>10s} -> "
                         f"{row.current_s:8.4f}s  NEW")
        elif row.status == "missing":
            lines.append(f"{row.name:28s} {row.baseline_s:8.4f}s -> "
                         f"{'':>10s}  MISSING")
        else:
            marker = {
                "regression": "REGRESSION",
                "broken": "AUDIT-FAIL",
            }.get(row.status, "ok")
            lines.append(
                f"{row.name:28s} {row.baseline_s:8.4f}s -> "
                f"{row.current_s:8.4f}s  {row.delta_pct:+7.1f}%  {marker}"
            )
    attribution = comparison.attribution
    if attribution and attribution.get("top"):
        top = attribution["top"]
        delta = float(attribution["top_delta_s"])
        lines.append(
            f"attribution: largest subsystem delta is {top} "
            f"({delta:+.4f}s self time, macro.spans)"
        )
    if comparison.failed:
        lines.append(
            f"FAIL: {len(comparison.regressions)} regression(s), "
            f"{len(comparison.missing)} missing benchmark(s), "
            f"{len(comparison.broken)} broken benchmark(s)"
        )
    else:
        lines.append("ok: no regressions")
    return "\n".join(lines)
