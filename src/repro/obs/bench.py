"""Continuous benchmark suite: the repo's performance trajectory.

``repro bench`` runs a deterministic suite of micro benchmarks (one hot
function at a time, timed through the :mod:`repro.obs.profiling` hooks
into a scoped metrics registry) and macro benchmarks (full seeded
streaming sessions per transport backend, traced) and emits a
schema-versioned ``BENCH_<label>.json``.  Committing one per milestone
and diffing with ``repro bench --compare`` turns "did this PR slow the
simulator down?" into a CI check (:mod:`repro.obs.regression`).

Wall times are inherently machine-dependent; the suite therefore also
records machine-independent *throughput* figures — simulated seconds per
wall second and trace events per second — which are the numbers worth
tracking across hardware.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional

from repro.obs.metrics import scoped_registry
from repro.obs.profiling import enable_profiling, profiling_enabled, timed
from repro.obs.tracer import Tracer

#: Version of the BENCH_*.json layout.  Adding a benchmark or a field is
#: backward compatible; renaming or removing one bumps this.
BENCH_SCHEMA_VERSION = 1

#: Synthetic workload for quick runs and the packet backend: mirrors the
#: test suite's tiny video (6 segments, full 13-level ladder) so a quick
#: bench costs seconds, not minutes.
_TINY_PROFILE_KWARGS = dict(
    name="benchtiny",
    title="Bench Tiny Video",
    genre="Bench",
    segments=6,
    motion_mean=0.4,
    motion_spread=0.2,
    complexity=0.5,
    scene_cut_rate=1.0,
    size_std_mbps=3.0,
    static_fraction=0.15,
)


def default_output_path(label: str) -> str:
    return f"BENCH_{label}.json"


def _git_sha() -> Optional[str]:
    """The repo's HEAD commit, or None outside a git checkout.

    Stamped into the payload's ``meta`` so archived bench results are
    traceable to the exact code that produced them.  Resolved against
    the source tree containing this module, not the caller's cwd.
    """
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _tiny_prepared():
    from repro.prep.prepare import prepare
    from repro.video.content import ContentProfile
    from repro.video.encoder import encode_video

    return prepare(encode_video(ContentProfile(**_TINY_PROFILE_KWARGS)))


def _timed_loop(name: str, repeats: int, fn) -> Dict[str, float]:
    """Run ``fn`` ``repeats`` times under a profiling hook; report stats.

    The timings flow through ``timed()`` into a scoped registry — the
    same pipeline the ``--metrics`` flag uses — so the benchmark measures
    exactly what production profiling measures.
    """
    was_enabled = profiling_enabled()
    with scoped_registry(merge=False) as registry:
        enable_profiling(True)
        try:
            for _ in range(repeats):
                with timed(f"bench.{name}"):
                    fn()
        finally:
            enable_profiling(was_enabled)
        hist = registry.histogram(f"timing.bench.{name}")
        summary = hist.summary()
    return {
        "kind": "micro",
        "repeats": repeats,
        "wall_s": summary["sum"],
        "per_call_s": summary["mean"],
        "p50_s": summary["p50"],
        "p90_s": summary["p90"],
    }


# ---------------------------------------------------------------------------
def _bench_decode_segment(prepared, repeats: int) -> Dict[str, float]:
    from repro.qoe.model import decode_segment

    top = prepared.manifest.num_levels - 1
    segment = prepared.video.segment(top, 0)
    # Drop a couple of tail frames: the realistic imperfect-delivery case
    # the decoder model is built for (never frame 0, the I-frame).
    num_frames = len(segment.frames)
    dropped = [i for i in range(max(num_frames - 3, 1), num_frames)]

    def call():
        decode_segment(segment, params=prepared.params, dropped=dropped,
                       corruption={})

    return _timed_loop("decode_segment", repeats, call)


def _bench_abr_choose(prepared, repeats: int) -> Dict[str, float]:
    from repro.abr import make_abr
    from repro.network.traces import constant_trace
    from repro.player.session import SessionConfig, StreamingSession

    abr = make_abr("abr_star", prepared=prepared)
    session = StreamingSession(
        prepared, abr, constant_trace(10.0),
        SessionConfig(buffer_segments=3),
    )
    context = session._context(0, None)

    def call():
        abr.choose(context)

    return _timed_loop("abr_choose", repeats, call)


def _bench_transport_round(repeats: int) -> Dict[str, float]:
    # The bare transport stack comes from the backend registry (the same
    # assembly path sessions use), described by a spec — no hardcoded
    # link/connection wiring that could drift from production.
    from repro.core.build import StackBuilder
    from repro.core.spec import ScenarioSpec
    from repro.network.clock import Clock
    from repro.transport.backends import make_backend

    builder = StackBuilder(ScenarioSpec(trace="constant:10"))
    stack = make_backend(
        builder.spec.backend,
        config=builder.session_config(),
        clock=Clock(),
        trace=builder.resolve_trace(),
    )
    connection = stack.connection
    rounds = [0]

    def call():
        result = connection.download(500_000, reliable=True)
        rounds[0] += result.rounds

    stats = _timed_loop("transport_download", repeats, call)
    total_rounds = max(rounds[0], 1)
    stats["rounds"] = rounds[0]
    stats["per_round_s"] = stats["wall_s"] / total_rounds
    return stats


def _bench_session(prepared, backend: str, seed: int) -> Dict[str, float]:
    from repro.abr import make_abr
    from repro.network.traces import get_trace
    from repro.player.session import SessionConfig, StreamingSession

    tracer = Tracer()
    abr = make_abr("abr_star", prepared=prepared)
    config = SessionConfig(buffer_segments=3, transport_backend=backend)
    session = StreamingSession(
        prepared, abr, get_trace("verizon", seed=seed), config,
        tracer=tracer,
    )
    t0 = time.perf_counter()
    metrics = session.run()
    wall = max(time.perf_counter() - t0, 1e-9)
    events = len(tracer)
    trace_bytes = len(tracer.to_jsonl())
    return {
        "kind": "macro",
        "workload": prepared.name,
        "wall_s": wall,
        "sim_s": metrics.wall_duration,
        "sim_s_per_wall_s": metrics.wall_duration / wall,
        "events": events,
        "events_per_s": events / wall,
        "peak_trace_bytes": trace_bytes,
        "segments": len(metrics.records),
    }


def _bench_multiclient(tiny, seed: int) -> Dict[str, float]:
    """Four mixed clients contending on one shared bottleneck."""
    from repro.experiments.multiclient import ClientSpec, run_multiclient
    from repro.network.traces import constant_trace

    tracer = Tracer()
    specs = [
        ClientSpec(abr="abr_star", video=tiny.name, partially_reliable=True),
        ClientSpec(abr="bola", video=tiny.name, partially_reliable=True),
        ClientSpec(abr="abr_star", video=tiny.name, partially_reliable=False),
        ClientSpec(abr="bola", video=tiny.name, partially_reliable=False),
    ]
    t0 = time.perf_counter()
    result = run_multiclient(
        specs,
        trace=constant_trace(20.0),
        seed=seed,
        tracer=tracer,
        prepared_map={tiny.name: tiny},
    )
    wall = max(time.perf_counter() - t0, 1e-9)
    sim_s = max(c.metrics.wall_duration for c in result.clients)
    events = len(tracer)
    return {
        "kind": "macro",
        "workload": tiny.name,
        "wall_s": wall,
        "sim_s": sim_s,
        "sim_s_per_wall_s": sim_s / wall,
        "events": events,
        "events_per_s": events / wall,
        "peak_trace_bytes": len(tracer.to_jsonl()),
        "clients": len(result.clients),
        "jain_index": result.jain_index,
    }


def _bench_fleet(tiny, seed: int) -> Dict[str, float]:
    """A sharded fleet: clients simulated per wall-second.

    Fixed shard count so the headline ``clients_per_s`` tracks
    per-shard executor cost, not parallelism; runs single-process for
    the same reason.  ``audit_ok`` gates the attribution partition law
    over the merged fleet, and ``fleet_hash`` pins cross-shard merge
    determinism into the payload.
    """
    from repro.experiments.fleet import ClientGroup, FleetSpec, run_fleet

    groups = tuple(
        ClientGroup(abr=abr, video=tiny.name, partially_reliable=pr)
        for abr, pr in (
            ("abr_star", True), ("bola", True),
            ("abr_star", False), ("bola", False),
        )
    )
    spec = FleetSpec(
        clients=48, shards=4, groups=groups, trace="constant:40",
        seed=seed,
    )
    t0 = time.perf_counter()
    result = run_fleet(spec, prepared_map={tiny.name: tiny})
    wall = max(time.perf_counter() - t0, 1e-9)
    report = result.report()
    return {
        "kind": "fleet",
        "workload": tiny.name,
        "wall_s": wall,
        "clients": result.clients,
        "shards": spec.shards,
        "clients_per_s": result.clients / wall,
        "events": int(report["rollup"]["events_seen"]),
        "jain_index": result.jain_index,
        "stall_p99_s": report["rollup"]["session_stall_s"]["p99"],
        "fleet_hash": result.fleet_hash(),
        "audit_ok": bool(result.attribution.combined().ok),
    }


def _bench_resilience(tiny, seed: int) -> Dict[str, float]:
    """A faulted session under the retry/degradation machinery, audited.

    Benchmarks the fault-injection hot path (deadline checks, fault-plan
    window queries, retry/backoff bookkeeping) and doubles as a
    regression tripwire: ``audit_ok`` feeds bench gating, so a PR that
    breaks retry accounting fails the comparison even if it got faster.
    """
    from repro.core.build import StackBuilder
    from repro.core.spec import ScenarioSpec
    from repro.experiments.chaos import CHAOS_PROFILES
    from repro.obs.invariants import TraceAuditor

    spec = ScenarioSpec(
        video=tiny.name,
        abr="abr_star",
        trace="verizon",
        seed=seed,
        buffer_segments=2,
        faults=CHAOS_PROFILES["mixed"],
        request_timeout_s=2.0,
        retry_budget=2,
    )
    auditor = TraceAuditor()
    tracer = Tracer(observers=[auditor.feed])
    session = StackBuilder(spec, prepared=tiny).build(tracer=tracer)
    t0 = time.perf_counter()
    metrics = session.run()
    wall = max(time.perf_counter() - t0, 1e-9)
    report = auditor.finalize()
    summary = metrics.summary()
    events = len(tracer)
    return {
        "kind": "macro",
        "workload": tiny.name,
        "wall_s": wall,
        "sim_s": metrics.wall_duration,
        "sim_s_per_wall_s": metrics.wall_duration / wall,
        "events": events,
        "events_per_s": events / wall,
        "peak_trace_bytes": len(tracer.to_jsonl()),
        "segments": len(metrics.records),
        "faults_injected": summary.get("faults_injected", 0.0),
        "retries": summary.get("retries", 0.0),
        "degraded_segments": summary.get("degraded_segments", 0.0),
        "audit_ok": report.ok,
    }


def _bench_rollup(tiny, seed: int) -> Dict[str, float]:
    """Tracing-off fast path vs streaming rollup on one seeded session.

    ``wall_s`` times the session with the :class:`NullTracer` — the
    production fast path every emit site gates on — so bench comparisons
    catch any PR that puts work on the tracing-off path.  The same
    seeded session then runs again under a buffer-less
    :class:`StreamingTracer` feeding a fleet rollup and causal stall
    attributor, yielding the observer overhead and an ``audit_ok``
    correctness gate (the attribution partition law must hold).
    """
    from repro.abr import make_abr
    from repro.network.traces import get_trace
    from repro.obs.attribution import FleetAttributor
    from repro.obs.rollup import TraceRollup
    from repro.obs.tracer import NULL_TRACER, StreamingTracer
    from repro.player.session import SessionConfig, StreamingSession

    def build(tracer):
        abr = make_abr("abr_star", prepared=tiny)
        config = SessionConfig(buffer_segments=3)
        return StreamingSession(
            tiny, abr, get_trace("verizon", seed=seed), config,
            tracer=tracer,
        )

    session = build(NULL_TRACER)
    t0 = time.perf_counter()
    metrics = session.run()
    wall = max(time.perf_counter() - t0, 1e-9)

    rollup = TraceRollup()
    fleet = FleetAttributor()
    streaming = StreamingTracer(observers=[rollup.feed, fleet.feed])
    session = build(streaming)
    t0 = time.perf_counter()
    session.run()
    rollup_wall = max(time.perf_counter() - t0, 1e-9)
    events = rollup.events_seen
    combined = fleet.combined()
    return {
        "kind": "macro",
        "workload": tiny.name,
        "wall_s": wall,
        "sim_s": metrics.wall_duration,
        "sim_s_per_wall_s": metrics.wall_duration / wall,
        "events": events,
        "events_per_s": events / rollup_wall,
        # Both paths are memory-bounded: the null tracer records nothing
        # and the streaming tracer dispatches without buffering.
        "peak_trace_bytes": 0,
        "segments": len(metrics.records),
        "rollup_wall_s": rollup_wall,
        "rollup_overhead_pct": (rollup_wall - wall) / wall * 100.0,
        "stall_p99_s": rollup.percentile("stall_seconds", 99),
        "audit_ok": combined.ok,
    }


def _bench_spans(tiny, seed: int) -> Dict[str, float]:
    """Spans-off fast path vs full span profiler on one seeded session.

    ``wall_s`` times the session with no profiler installed — the
    single global read every instrumentation site gates on — so bench
    comparisons catch any PR that puts work on the spans-off path.
    The same seeded session then reruns under a
    :class:`~repro.obs.spans.SpanProfiler`, yielding the profiling
    overhead, the per-subsystem self-time table that ``repro diff``
    attributes regressions with, the deterministic tree hash, and an
    ``audit_ok`` gate: the profiled run must compute byte-identical
    session metrics (spans observe, never perturb).
    """
    from repro.abr import make_abr
    from repro.network.traces import get_trace
    from repro.obs import spans
    from repro.player.session import SessionConfig, StreamingSession

    def build(tracer):
        abr = make_abr("abr_star", prepared=tiny)
        config = SessionConfig(buffer_segments=3)
        return StreamingSession(
            tiny, abr, get_trace("verizon", seed=seed), config,
            tracer=tracer,
        )

    tracer = Tracer()
    session = build(tracer)
    t0 = time.perf_counter()
    metrics = session.run()
    wall = max(time.perf_counter() - t0, 1e-9)
    events = len(tracer)
    trace_bytes = len(tracer.to_jsonl())

    prof = spans.SpanProfiler()
    prev = spans.install(prof)
    try:
        # Build inside the install window: components capture the
        # ambient profiler at construction time.
        session = build(Tracer())
        t0 = time.perf_counter()
        prof_metrics = session.run()
        spans_wall = max(time.perf_counter() - t0, 1e-9)
    finally:
        prof.finalize()
        spans.install(prev)
    table = prof.subsystem_table()
    return {
        "kind": "macro",
        "workload": tiny.name,
        "wall_s": wall,
        "sim_s": metrics.wall_duration,
        "sim_s_per_wall_s": metrics.wall_duration / wall,
        "events": events,
        "events_per_s": events / wall,
        "peak_trace_bytes": trace_bytes,
        "segments": len(metrics.records),
        "spans_wall_s": spans_wall,
        "spans_overhead_pct": (spans_wall - wall) / wall * 100.0,
        "spans": prof.total_spans,
        "subsystems": {
            name: entry["self_wall_s"] for name, entry in table.items()
        },
        "tree_hash": prof.tree_hash(),
        "audit_ok": bool(
            prof_metrics.summary() == metrics.summary()
            and prof.total_spans > 0
        ),
    }


def _bench_parallel_runner(tiny, seed: int) -> Dict[str, float]:
    """Serial vs parallel trial executor on the same experiment cell."""
    from repro.experiments.runner import ExperimentConfig, run_trials

    config = ExperimentConfig(
        video=tiny.name,
        abr="bola",
        trace="constant:20",
        repetitions=4,
        seed=seed,
    )
    t0 = time.perf_counter()
    serial = run_trials(config, prepared=tiny, workers=1)
    serial_wall = max(time.perf_counter() - t0, 1e-9)
    t0 = time.perf_counter()
    parallel = run_trials(config, prepared=tiny, workers=2)
    wall = max(time.perf_counter() - t0, 1e-9)
    return {
        "kind": "parallel",
        "workload": tiny.name,
        "wall_s": wall,
        "serial_wall_s": serial_wall,
        "speedup": serial_wall / wall,
        "workers": 2,
        "reps": config.repetitions,
        "identical": serial.sessions == parallel.sessions,
    }


# ---------------------------------------------------------------------------
def run_suite(
    quick: bool = False,
    seed: int = 0,
    label: str = "local",
    prepared=None,
) -> Dict[str, object]:
    """Run the whole suite; returns the BENCH payload (JSON-ready).

    Args:
        quick: reduced repeat counts and the tiny synthetic workload —
            for CI and smoke runs.
        seed: network-trace seed for the macro sessions.
        label: stamped into the payload (and the default file name).
        prepared: optionally reuse an already-prepared video as the
            workload (tests pass their session fixture to avoid
            re-preparing).
    """
    with scoped_registry(merge=False):
        # The whole suite runs inside one scope: benchmark instrumentation
        # (sessions, connections) must not pollute the process registry.
        if prepared is not None:
            workload = prepared
            tiny = prepared
        elif quick:
            workload = tiny = _tiny_prepared()
        else:
            from repro.prep.prepare import get_prepared

            workload = get_prepared("bbb")
            tiny = _tiny_prepared()

        decode_reps, abr_reps, transport_reps = (
            (20, 200, 5) if quick or prepared is not None else (100, 1000, 20)
        )
        benchmarks: Dict[str, Dict[str, float]] = {}
        benchmarks["micro.decode_segment"] = _bench_decode_segment(
            workload, decode_reps
        )
        benchmarks["micro.abr_choose"] = _bench_abr_choose(
            workload, abr_reps
        )
        benchmarks["micro.transport_round"] = _bench_transport_round(
            transport_reps
        )
        benchmarks["macro.session.round"] = _bench_session(
            workload, "round", seed
        )
        # The per-packet backend is ~2 orders of magnitude slower; it
        # always runs on the tiny workload so the suite stays bounded.
        benchmarks["macro.session.packet"] = _bench_session(
            tiny, "packet", seed
        )
        # Multi-client contention and the parallel trial executor always
        # use the tiny workload — they each run several full sessions.
        benchmarks["macro.multiclient"] = _bench_multiclient(tiny, seed)
        # The sharded fleet executor: headline clients-per-wall-second
        # at a fixed shard count, with the fleet hash pinned into the
        # payload (cross-shard merge determinism).
        benchmarks["macro.fleet"] = _bench_fleet(tiny, seed)
        # Chaos cell: the resilience machinery under the mixed fault
        # profile, with the inline invariant auditor attached.
        benchmarks["macro.resilience"] = _bench_resilience(tiny, seed)
        # Null-tracer fast path vs streaming rollup observers: gates the
        # tracing-off cost and the fleet-observability overhead.
        benchmarks["macro.rollup"] = _bench_rollup(tiny, seed)
        # Spans-off fast path vs full span profiler: gates the
        # profiler-off cost and feeds `repro diff` its per-subsystem
        # regression attribution.
        benchmarks["macro.spans"] = _bench_spans(tiny, seed)
        benchmarks["macro.parallel_runner"] = _bench_parallel_runner(
            tiny, seed
        )

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "quick": bool(quick),
        "seed": seed,
        "workload": workload.name,
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "git_sha": _git_sha(),
        },
        "benchmarks": benchmarks,
    }


def write_payload(payload: Dict[str, object], path: str) -> None:
    from repro.ioutil import atomic_write_json

    atomic_write_json(path, payload)


def format_suite(payload: Dict[str, object]) -> str:
    """Human-readable one-line-per-benchmark rendering."""
    lines = [
        f"=== bench {payload['label']} "
        f"(schema v{payload['schema_version']}, "
        f"workload {payload['workload']}, "
        f"{'quick' if payload['quick'] else 'full'}) ==="
    ]
    for name, stats in sorted(payload["benchmarks"].items()):
        if stats["kind"] == "micro":
            lines.append(
                f"{name:28s} {stats['wall_s']:9.4f}s total  "
                f"{stats['per_call_s'] * 1e6:10.1f}us/call  "
                f"p90 {stats['p90_s'] * 1e6:10.1f}us "
                f"({stats['repeats']} calls)"
            )
        elif stats["kind"] == "parallel":
            lines.append(
                f"{name:28s} {stats['wall_s']:9.4f}s wall  "
                f"serial {stats['serial_wall_s']:9.4f}s  "
                f"speedup {stats['speedup']:5.2f}x  "
                f"({stats['workers']} workers, {stats['reps']} reps, "
                f"identical={stats['identical']})"
            )
        elif stats["kind"] == "fleet":
            lines.append(
                f"{name:28s} {stats['wall_s']:9.4f}s wall  "
                f"{stats['clients_per_s']:8.1f} clients/s  "
                f"({stats['clients']} clients / {stats['shards']} "
                f"shards, jain {stats['jain_index']:.3f}, "
                f"hash {stats['fleet_hash']})"
            )
        else:
            lines.append(
                f"{name:28s} {stats['wall_s']:9.4f}s wall  "
                f"{stats['sim_s_per_wall_s']:8.1f} sim-s/s  "
                f"{stats['events_per_s']:10.0f} events/s  "
                f"trace {stats['peak_trace_bytes'] / 1e3:.1f} kB"
            )
    return "\n".join(lines)
