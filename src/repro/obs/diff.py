"""``repro diff``: attribute a wall-time delta between two perf files.

Compares two ``BENCH_*.json`` payloads or two perf ledgers (the
artifact ``repro profile`` writes) and attributes the delta to
subsystems.  Bench mode reuses the regression comparator and reads the
attribution off the ``macro.spans`` benchmark's subsystem table; ledger
mode diffs the ledgers' subsystem self-time tables directly.  Either
way the report — markdown and ``--json`` alike — names the subsystem
whose self time grew the most: the prime suspect.

The file kind is sniffed from the payload (``ledger_version`` vs
``schema_version``/``benchmarks``), so ``repro diff A B`` needs no
format flag; mixing kinds is an error.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.ledger import LEDGER_SCHEMA_VERSION, load_ledger
from repro.obs.regression import (
    BenchFormatError,
    compare_payloads,
    load_payload,
)


class PerfDiffFormatError(ValueError):
    """A perf file is neither a bench payload nor a perf ledger."""


def load_perf_file(path: str) -> Tuple[str, Dict]:
    """Load a perf file, sniffing its kind.

    Returns ``("bench", payload)`` or ``("ledger", payload)``; raises
    :class:`PerfDiffFormatError` for anything else.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except json.JSONDecodeError as exc:
        raise PerfDiffFormatError(f"{path}: unparseable JSON: {exc}") from None
    if not isinstance(raw, dict):
        raise PerfDiffFormatError(f"{path}: not a JSON object")
    if "ledger_version" in raw:
        try:
            return "ledger", load_ledger(path)
        except ValueError as exc:
            raise PerfDiffFormatError(str(exc)) from None
    if "benchmarks" in raw or "schema_version" in raw:
        try:
            return "bench", load_payload(path)
        except BenchFormatError as exc:
            raise PerfDiffFormatError(f"{path}: {exc}") from None
    raise PerfDiffFormatError(
        f"{path}: neither a bench payload (schema_version/benchmarks) "
        f"nor a perf ledger (ledger_version {LEDGER_SCHEMA_VERSION})"
    )


def _subsystem_deltas(
    base: Dict[str, Dict],
    cur: Dict[str, Dict],
) -> Dict[str, Dict[str, float]]:
    table: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(base) | set(cur)):
        b = float((base.get(name) or {}).get("self_wall_s", 0.0))
        c = float((cur.get(name) or {}).get("self_wall_s", 0.0))
        table[name] = {
            "baseline_s": b,
            "current_s": c,
            "delta_s": c - b,
            "delta_pct": (c - b) / b * 100.0 if b > 0 else 0.0,
        }
    return table


def diff_ledgers(
    baseline: Dict,
    current: Dict,
    threshold_pct: float = 10.0,
) -> Dict[str, object]:
    """Diff two perf ledgers: totals, throughput, subsystem deltas.

    Fails (``failed=True``) when total wall time grew by at least
    ``threshold_pct`` percent.  ``unattributed_s`` is the share of the
    wall delta not explained by span self time (interpreter overhead,
    unspanned code) — a large value means the profiler is missing the
    regression, which is itself a finding.
    """
    if threshold_pct <= 0:
        raise ValueError("threshold must be positive")
    base_wall = float(baseline.get("wall_s", 0.0))
    cur_wall = float(current.get("wall_s", 0.0))
    wall_delta = cur_wall - base_wall
    wall_pct = wall_delta / base_wall * 100.0 if base_wall > 0 else 0.0
    table = _subsystem_deltas(
        baseline.get("subsystems", {}), current.get("subsystems", {})
    )
    attributed = sum(entry["delta_s"] for entry in table.values())
    top = max(
        table, key=lambda n: (table[n]["delta_s"], n), default=None
    )
    return {
        "kind": "ledger",
        "threshold_pct": float(threshold_pct),
        "failed": wall_pct >= threshold_pct,
        "baseline": {
            "label": baseline.get("label", ""),
            "wall_s": base_wall,
            "sim_s_per_wall_s": float(
                baseline.get("sim_s_per_wall_s", 0.0)
            ),
        },
        "current": {
            "label": current.get("label", ""),
            "wall_s": cur_wall,
            "sim_s_per_wall_s": float(
                current.get("sim_s_per_wall_s", 0.0)
            ),
        },
        "wall_delta_s": wall_delta,
        "wall_delta_pct": wall_pct,
        "subsystems": table,
        "top": top,
        "top_delta_s": table[top]["delta_s"] if top else 0.0,
        "unattributed_s": wall_delta - attributed,
    }


def diff_bench(
    baseline: Dict,
    current: Dict,
    threshold_pct: float = 10.0,
) -> Dict[str, object]:
    """Diff two bench payloads via the regression comparator.

    The subsystem attribution rides in from ``macro.spans`` (when both
    payloads carry it); ``top`` names the subsystem with the largest
    self-time growth.
    """
    comparison = compare_payloads(
        baseline, current, threshold_pct=threshold_pct
    )
    attribution = comparison.attribution or {}
    return {
        "kind": "bench",
        "threshold_pct": float(threshold_pct),
        "failed": comparison.failed,
        "comparison": comparison.to_dict(),
        "subsystems": attribution.get("subsystems"),
        "top": attribution.get("top"),
        "top_delta_s": attribution.get("top_delta_s", 0.0),
    }


def diff_files(
    baseline_path: str,
    current_path: str,
    threshold_pct: float = 10.0,
) -> Dict[str, object]:
    """Sniff, load, and diff two perf files of the same kind."""
    base_kind, baseline = load_perf_file(baseline_path)
    cur_kind, current = load_perf_file(current_path)
    if base_kind != cur_kind:
        raise PerfDiffFormatError(
            f"cannot diff a {base_kind} file against a {cur_kind} file "
            f"({baseline_path} vs {current_path})"
        )
    if base_kind == "ledger":
        result = diff_ledgers(baseline, current, threshold_pct)
    else:
        result = diff_bench(baseline, current, threshold_pct)
    result["baseline_path"] = baseline_path
    result["current_path"] = current_path
    return result


def _attribution_lines(result: Dict[str, object]) -> List[str]:
    lines: List[str] = []
    table = result.get("subsystems")
    if isinstance(table, dict) and table:
        lines.append("")
        lines.append("| subsystem | baseline | current | delta |")
        lines.append("|---|---:|---:|---:|")
        for name in sorted(
            table, key=lambda n: (-abs(table[n]["delta_s"]), n)
        ):
            entry = table[name]
            lines.append(
                f"| {name} | {entry['baseline_s']:.4f}s "
                f"| {entry['current_s']:.4f}s "
                f"| {entry['delta_s']:+.4f}s |"
            )
    top = result.get("top")
    if top:
        lines.append("")
        lines.append(
            f"**Attribution:** the largest subsystem delta is `{top}` "
            f"({float(result['top_delta_s']):+.4f}s self time)."
        )
    elif result.get("kind") == "bench":
        lines.append("")
        lines.append(
            "**Attribution:** unavailable — one of the payloads lacks "
            "the `macro.spans` benchmark."
        )
    return lines


def format_diff(result: Dict[str, object]) -> str:
    """Markdown report of a perf diff (either kind)."""
    lines = ["## Perf diff"]
    lines.append("")
    lines.append(
        f"`{result.get('baseline_path', 'baseline')}` → "
        f"`{result.get('current_path', 'current')}` "
        f"(threshold {float(result['threshold_pct']):g}%)"
    )
    if result["kind"] == "ledger":
        base = result["baseline"]
        cur = result["current"]
        lines.append("")
        lines.append(
            f"Wall time {base['wall_s']:.3f}s → {cur['wall_s']:.3f}s "
            f"({float(result['wall_delta_pct']):+.1f}%); throughput "
            f"{base['sim_s_per_wall_s']:.1f} → "
            f"{cur['sim_s_per_wall_s']:.1f} sim-s/wall-s."
        )
        lines.extend(_attribution_lines(result))
        unattributed = float(result["unattributed_s"])
        lines.append(
            f"Unattributed delta: {unattributed:+.4f}s "
            "(outside span self time)."
        )
    else:
        comparison = result["comparison"]
        lines.append("")
        lines.append("| benchmark | baseline | current | delta | status |")
        lines.append("|---|---:|---:|---:|---|")
        for row in comparison["rows"]:
            base_s = (
                f"{row['baseline_s']:.4f}s"
                if row["baseline_s"] is not None else "—"
            )
            cur_s = (
                f"{row['current_s']:.4f}s"
                if row["current_s"] is not None else "—"
            )
            delta = (
                f"{row['delta_pct']:+.1f}%"
                if row["delta_pct"] is not None else "—"
            )
            lines.append(
                f"| {row['name']} | {base_s} | {cur_s} | {delta} "
                f"| {row['status']} |"
            )
        lines.extend(_attribution_lines(result))
    lines.append("")
    if result["failed"]:
        lines.append("**Verdict: FAIL** — regression above threshold.")
    else:
        lines.append("**Verdict: ok** — no regression above threshold.")
    return "\n".join(lines)


__all__ = [
    "PerfDiffFormatError",
    "diff_bench",
    "diff_files",
    "diff_ledgers",
    "format_diff",
    "load_perf_file",
]
