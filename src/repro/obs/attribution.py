"""Causal stall attribution: every bad second gets exactly one cause.

VOXEL's claim is cross-layer — stalls and quality drops are explained
jointly by transport, link, and ABR behaviour.  This engine walks a
session's event stream and partitions every stall second and every
quality-level drop into exactly one of :data:`CAUSES`:

* ``fault`` — the stall interval overlaps an injected fault window
  (blackout, server stall, reset point, …).
* ``retry`` — the segment burned time in timeout/reset retry chains
  (backoff plus re-requests).
* ``degraded`` — the retry budget ran out and the session degraded the
  segment (floor quality or skip).
* ``bandwidth`` — the ABR's choice was feasible at its decision-time
  estimate, but the realized trace delivered less.
* ``abr_overreach`` — the choice could not have finished within the
  buffer even at the ABR's own throughput estimate, or an ABR-commanded
  wait drained the buffer dry.

Precedence is fault > retry > degraded > bandwidth > abr_overreach —
injected faults own everything they overlap, explicit resilience
machinery owns its segments, and only then is blame split between the
network and the controller.

The partition law — per-cause stall seconds sum exactly to the
session's ``total_stall`` and stall events partition likewise — is
enforced as the 11th trace invariant (see ``repro.obs.invariants``).

The module is stream-first: :class:`SessionAttributor.feed` is a tracer
observer, :class:`FleetAttributor` partitions an interleaved
multi-client stream by ``session_id``, and memory stays bounded by
segment count, never event count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs import events as ev
from repro.obs.events import TraceEvent

#: Float comparison slack for the partition law (mirrors the auditor's
#: tolerance; duplicated here so attribution has no import cycle with
#: ``repro.obs.invariants``, which imports this module).
TOLERANCE = 1e-6

CAUSE_FAULT = "fault"
CAUSE_RETRY = "retry"
CAUSE_DEGRADED = "degraded"
CAUSE_BANDWIDTH = "bandwidth"
CAUSE_OVERREACH = "abr_overreach"

#: All causes, in attribution precedence order.
CAUSES = (
    CAUSE_FAULT, CAUSE_RETRY, CAUSE_DEGRADED, CAUSE_BANDWIDTH,
    CAUSE_OVERREACH,
)

CAUSE_DESCRIPTIONS: Dict[str, str] = {
    CAUSE_FAULT: "stall interval overlaps an injected fault window",
    CAUSE_RETRY: "segment spent time in timeout/reset retry chains",
    CAUSE_DEGRADED: "retry budget exhausted: segment floored or skipped",
    CAUSE_BANDWIDTH: "network delivered less than the decision-time estimate",
    CAUSE_OVERREACH: "the ABR's own choice could not fit its buffer headroom",
}


def _zero_float() -> Dict[str, float]:
    return {cause: 0.0 for cause in CAUSES}


def _zero_int() -> Dict[str, int]:
    return {cause: 0 for cause in CAUSES}


@dataclass
class AttributionResult:
    """Per-cause partition of one session's (or a fleet's) bad seconds."""

    stall_seconds: Dict[str, float] = field(default_factory=_zero_float)
    stall_events: Dict[str, int] = field(default_factory=_zero_int)
    quality_drops: Dict[str, int] = field(default_factory=_zero_int)
    total_stall: float = 0.0
    total_stall_events: int = 0
    total_drops: int = 0
    #: ``total_stall`` from the session_end event, when one was seen.
    reported_stall: Optional[float] = None

    @property
    def attributed_stall(self) -> float:
        return sum(self.stall_seconds.values())

    @property
    def residual(self) -> float:
        """Stall seconds the partition failed to cover (law: ~0)."""
        return self.total_stall - self.attributed_stall

    @property
    def ok(self) -> bool:
        """Does the attribution partition hold exactly?"""
        if abs(self.residual) > TOLERANCE:
            return False
        if sum(self.stall_events.values()) != self.total_stall_events:
            return False
        if sum(self.quality_drops.values()) != self.total_drops:
            return False
        if self.reported_stall is not None and (
            abs(self.reported_stall - self.attributed_stall) > TOLERANCE
        ):
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        return {
            "stall_seconds": {c: self.stall_seconds[c] for c in CAUSES},
            "stall_events": {c: self.stall_events[c] for c in CAUSES},
            "quality_drops": {c: self.quality_drops[c] for c in CAUSES},
            "total_stall": self.total_stall,
            "total_stall_events": self.total_stall_events,
            "total_drops": self.total_drops,
            "reported_stall": self.reported_stall,
            "residual": self.residual,
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AttributionResult":
        """Rebuild from :meth:`to_dict` output (``residual``/``ok`` are
        derived properties and recomputed, not trusted)."""
        reported = data.get("reported_stall")
        return cls(
            stall_seconds={
                c: float(data["stall_seconds"][c]) for c in CAUSES
            },
            stall_events={
                c: int(data["stall_events"][c]) for c in CAUSES
            },
            quality_drops={
                c: int(data["quality_drops"][c]) for c in CAUSES
            },
            total_stall=float(data["total_stall"]),
            total_stall_events=int(data["total_stall_events"]),
            total_drops=int(data["total_drops"]),
            reported_stall=(
                float(reported) if reported is not None else None
            ),
        )

    def merge(self, other: "AttributionResult") -> None:
        """Fold another session's partition in (fleet aggregation)."""
        for cause in CAUSES:
            self.stall_seconds[cause] += other.stall_seconds[cause]
            self.stall_events[cause] += other.stall_events[cause]
            self.quality_drops[cause] += other.quality_drops[cause]
        self.total_stall += other.total_stall
        self.total_stall_events += other.total_stall_events
        self.total_drops += other.total_drops
        if other.reported_stall is not None:
            self.reported_stall = (
                self.reported_stall or 0.0
            ) + other.reported_stall


class SessionAttributor:
    """Streaming causal attribution for one session's event stream.

    Feed events in stream order; read :meth:`result` at any point.
    State is bounded by segment count (decision-time estimates, wire
    sizes, failure/degrade flags), never by event count.
    """

    def __init__(self) -> None:
        self._windows: List[Tuple[float, float]] = []
        self._failed: set = set()        # segments with timeout/reset/retry
        self._degraded: set = set()      # segments floored or skipped
        self._abandoned: set = set()     # segments restarted at lower quality
        # segment -> (throughput_bps estimate, buffer_level_s, decision t)
        self._decisions: Dict[int, Tuple[float, float, float]] = {}
        self._wire: Dict[int, float] = {}  # segment -> first-attempt bytes
        self._last_quality: Optional[int] = None
        self._stall_seconds = _zero_float()
        self._stall_events = _zero_int()
        self._drops = _zero_int()
        self._total_stall = 0.0
        self._total_stall_events = 0
        self._total_drops = 0
        self._reported: Optional[float] = None

    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        """Consume one event (tracer-observer signature)."""
        handler = self._HANDLERS.get(event.type)
        if handler is not None:
            handler(self, event)

    def result(self) -> AttributionResult:
        """Snapshot of the partition accumulated so far."""
        return AttributionResult(
            stall_seconds=dict(self._stall_seconds),
            stall_events=dict(self._stall_events),
            quality_drops=dict(self._drops),
            total_stall=self._total_stall,
            total_stall_events=self._total_stall_events,
            total_drops=self._total_drops,
            reported_stall=self._reported,
        )

    # ------------------------------------------------------------------
    def _on_fault(self, event: TraceEvent) -> None:
        fields = event.fields
        start = float(fields["start"])
        duration = max(float(fields["duration"]), 0.0)
        self._windows.append((start, start + duration))

    def _on_failure(self, event: TraceEvent) -> None:
        # Repair/manifest failures degrade silently by design and never
        # stall a segment; only segment-context chains claim blame.
        if event.fields.get("context", "segment") != "segment":
            return
        self._failed.add(int(event.fields["segment"]))

    def _on_degraded(self, event: TraceEvent) -> None:
        fields = event.fields
        if fields.get("context", "segment") != "segment":
            return
        self._degraded.add(int(fields["segment"]))

    def _on_decision(self, event: TraceEvent) -> None:
        fields = event.fields
        if float(fields["wait_s"]) > 0:
            return
        self._decisions[int(fields["segment"])] = (
            float(fields["throughput_bps"]),
            float(fields["buffer_level_s"]),
            event.t,
        )

    def _on_download_start(self, event: TraceEvent) -> None:
        fields = event.fields
        if int(fields["attempt"]) == 0:
            self._wire[int(fields["segment"])] = float(fields["wire_bytes"])

    def _on_abandon(self, event: TraceEvent) -> None:
        self._abandoned.add(int(event.fields["segment"]))

    def _on_session_end(self, event: TraceEvent) -> None:
        self._reported = float(event.fields["total_stall"])

    # ------------------------------------------------------------------
    def _in_fault_window(self, t0: float, t1: float) -> bool:
        for start, end in self._windows:
            # Closed-interval overlap so zero-width fault points (resets)
            # still claim the stall they trigger.
            if start <= t1 and t0 <= end:
                return True
        return False

    def _classify_stall(self, event: TraceEvent) -> str:
        fields = event.fields
        duration = float(fields["duration"])
        segment = int(fields["segment"])
        t1 = event.t
        t0 = t1 - max(duration, 0.0)
        if self._in_fault_window(t0, t1):
            return CAUSE_FAULT
        if segment in self._failed:
            return CAUSE_RETRY
        if segment in self._degraded:
            return CAUSE_DEGRADED
        decision = self._decisions.get(segment)
        if segment < 0 or decision is None:
            # A stall outside any download — an ABR-commanded wait or a
            # repair window that ran the buffer dry — is the controller's.
            return CAUSE_OVERREACH
        throughput, buffer_level, _ = decision
        wire = self._wire.get(segment)
        if throughput <= 0.0 or wire is None or wire <= 0.0:
            # No estimate yet (cold start): the network owes the blame.
            return CAUSE_BANDWIDTH
        expected_s = wire * 8.0 / throughput
        if expected_s > buffer_level + TOLERANCE:
            # Even at its own estimate the download could not finish
            # inside the buffer headroom: the ABR overreached.
            return CAUSE_OVERREACH
        return CAUSE_BANDWIDTH

    def _on_stall(self, event: TraceEvent) -> None:
        duration = float(event.fields["duration"])
        if duration <= 0.0:
            return
        cause = self._classify_stall(event)
        self._stall_seconds[cause] += duration
        self._stall_events[cause] += 1
        self._total_stall += duration
        self._total_stall_events += 1

    def _on_download_end(self, event: TraceEvent) -> None:
        fields = event.fields
        quality = int(fields["quality"])
        segment = int(fields["segment"])
        last = self._last_quality
        self._last_quality = quality
        if last is None or quality >= last:
            return
        self._total_drops += 1
        decision = self._decisions.get(segment)
        decision_t = decision[2] if decision is not None else event.t
        if self._in_fault_window(decision_t, event.t):
            cause = CAUSE_FAULT
        elif segment in self._failed:
            cause = CAUSE_RETRY
        elif segment in self._degraded:
            cause = CAUSE_DEGRADED
        elif segment in self._abandoned:
            # Mid-download restart at lower quality: the realized trace
            # underdelivered against the committed choice.
            cause = CAUSE_BANDWIDTH
        else:
            previous = self._decisions.get(segment - 1)
            if (
                decision is not None
                and previous is not None
                and decision[0] < previous[0] - TOLERANCE
            ):
                cause = CAUSE_BANDWIDTH
            else:
                cause = CAUSE_OVERREACH
        self._drops[cause] += 1

    _HANDLERS = {
        ev.FAULT_INJECTED: _on_fault,
        ev.REQUEST_TIMEOUT: _on_failure,
        ev.CONNECTION_RESET: _on_failure,
        ev.RETRY: _on_failure,
        ev.DEGRADED: _on_degraded,
        ev.ABR_DECISION: _on_decision,
        ev.DOWNLOAD_START: _on_download_start,
        ev.ABANDON: _on_abandon,
        ev.STALL: _on_stall,
        ev.DOWNLOAD_END: _on_download_end,
        ev.SESSION_END: _on_session_end,
    }


class FleetAttributor:
    """Partition an interleaved multi-client stream by ``session_id``.

    Solo traces (no ``session_id``) reduce to a single partition keyed
    ``None``; back-to-back solo sessions in one stream (an experiment
    cell's repetitions sharing one observer) are split at each
    ``session_start``, with finished sessions archived into the
    combined result.  Session order follows first appearance in the
    stream, so results are deterministic for a deterministic trace.
    """

    def __init__(self) -> None:
        self._sessions: Dict[object, SessionAttributor] = {}
        self._order: List[object] = []
        self._archived: List[AttributionResult] = []
        # Finalized partitions restored across a process boundary
        # (from_dict/merge); frozen — they can no longer be fed.
        self._restored: Dict[object, AttributionResult] = {}

    def feed(self, event: TraceEvent) -> None:
        sid = event.fields.get("session_id")
        if sid is None:
            if event.type == ev.SESSION_START:
                if None in self._sessions:
                    self._archived.append(
                        self._sessions.pop(None).result()
                    )
            elif event.type not in SessionAttributor._HANDLERS:
                # Sessionless bookkeeping events (link stats emitted at
                # the end of a shard) belong to no partition; admitting
                # them would fabricate a phantom ``None`` session in
                # multi-client streams.
                return
        attributor = self._sessions.get(sid)
        if attributor is None:
            attributor = self._sessions[sid] = SessionAttributor()
            if sid not in self._order:
                self._order.append(sid)
        # Inlined SessionAttributor.feed: one dispatch, no method hop.
        handler = SessionAttributor._HANDLERS.get(event.type)
        if handler is not None:
            handler(attributor, event)

    def _session_results(self) -> List[Tuple[object, AttributionResult]]:
        """(session_id, partition) pairs in first-appearance order,
        folding restored state into any live attributor for the id."""
        out: List[Tuple[object, AttributionResult]] = []
        for sid in self._order:
            parts: List[AttributionResult] = []
            restored = self._restored.get(sid)
            if restored is not None:
                parts.append(restored)
            live = self._sessions.get(sid)
            if live is not None:
                parts.append(live.result())
            if not parts:
                continue
            if len(parts) == 1:
                out.append((sid, parts[0]))
            else:
                folded = AttributionResult()
                for part in parts:
                    folded.merge(part)
                out.append((sid, folded))
        return out

    def results(self) -> "Dict[object, AttributionResult]":
        """Per-session partitions, in order of first appearance."""
        return dict(self._session_results())

    def combined(self) -> AttributionResult:
        """Fleet-wide partition: per-session results folded together."""
        combined = AttributionResult()
        any_reported = False
        parts = list(self._archived)
        parts.extend(result for _, result in self._session_results())
        for result in parts:
            combined.merge(result)
            if result.reported_stall is not None:
                any_reported = True
        if not any_reported:
            combined.reported_stall = None
        return combined

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot: archived solo runs plus per-session
        partitions in first-appearance order.  Mergeable state only —
        the internal per-segment attributor machinery is finalized, so
        a restored fleet cannot be fed further events for these ids."""
        return {
            "archived": [result.to_dict() for result in self._archived],
            "sessions": [
                {"session_id": sid, "result": result.to_dict()}
                for sid, result in self._session_results()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FleetAttributor":
        """Rebuild from :meth:`to_dict` output (sessions restore as
        frozen partitions; order is preserved)."""
        fleet = cls()
        fleet._archived = [
            AttributionResult.from_dict(entry)
            for entry in data.get("archived", ())
        ]
        for entry in data.get("sessions", ()):
            sid = entry["session_id"]
            fleet._order.append(sid)
            fleet._restored[sid] = AttributionResult.from_dict(
                entry["result"]
            )
        return fleet

    def merge(self, other: "FleetAttributor") -> None:
        """Fold another fleet's partitions in (cross-shard merge).

        Distinct session ids append in ``other``'s order; a colliding
        id folds into the existing partition.  ``other`` is left
        untouched — merged state is copied, never aliased.
        """
        for result in other._archived:
            self._archived.append(
                AttributionResult.from_dict(result.to_dict())
            )
        for sid, result in other._session_results():
            if sid in self._restored:
                self._restored[sid].merge(result)
            elif sid in self._sessions:
                folded = self._restored[sid] = AttributionResult()
                folded.merge(result)
            else:
                self._order.append(sid)
                self._restored[sid] = AttributionResult.from_dict(
                    result.to_dict()
                )


def attribute_events(events: Iterable[TraceEvent]) -> AttributionResult:
    """One-shot attribution over any event iterable (fleet-combined)."""
    fleet = FleetAttributor()
    for event in events:
        fleet.feed(event)
    return fleet.combined()


def format_attribution(result: AttributionResult) -> str:
    """Human-readable per-cause breakdown."""
    lines = ["=== stall attribution ==="]
    total = result.total_stall
    for cause in CAUSES:
        seconds = result.stall_seconds[cause]
        share = seconds / total * 100.0 if total > 0 else 0.0
        lines.append(
            f"{cause:14s} {seconds:8.3f}s ({share:5.1f}%) "
            f"events={result.stall_events[cause]:3d} "
            f"drops={result.quality_drops[cause]:3d}"
        )
    lines.append(
        f"{'total':14s} {total:8.3f}s          "
        f"events={result.total_stall_events:3d} "
        f"drops={result.total_drops:3d}"
    )
    verdict = "holds" if result.ok else "VIOLATED"
    lines.append(
        f"partition law {verdict} (residual {result.residual:+.2e}s)"
    )
    return "\n".join(lines)
