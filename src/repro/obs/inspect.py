"""Trace inspector: summarize a JSONL trace, reconstruct timelines.

Backs the ``repro trace`` CLI command.  Given the events of one session
it can answer the Fig. 6/7-style questions the aggregates hide: which
ABR decisions ran, where the stalls were, how the buffer and the chosen
bitrate evolved segment by segment.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Dict, List, Optional, Sequence

from repro.obs import events as ev
from repro.obs.events import TraceEvent
from repro.obs.tracer import read_jsonl


def load_trace(path: str) -> List[TraceEvent]:
    """Read and schema-validate a JSONL trace file."""
    return read_jsonl(path)


def filter_events(
    events: Sequence[TraceEvent], type_: Optional[str] = None
) -> List[TraceEvent]:
    if type_ is None:
        return list(events)
    return [e for e in events if e.type == type_]


# ---------------------------------------------------------------------------
def summarize(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Aggregate view of one trace: counts, lifecycle, loss/repair totals."""
    counts = TallyCounter(e.type for e in events)
    summary: Dict[str, object] = {
        "schema_version": ev.SCHEMA_VERSION,
        "events": len(events),
        "event_counts": dict(sorted(counts.items())),
        "duration": events[-1].t - events[0].t if events else 0.0,
    }
    starts = [e for e in events if e.type == ev.SESSION_START]
    if starts:
        summary["session"] = dict(starts[0].fields)
    ends = [e for e in events if e.type == ev.SESSION_END]
    if ends:
        summary["result"] = dict(ends[-1].fields)
    stalls = [e for e in events if e.type == ev.STALL]
    summary["stall_count"] = len(stalls)
    summary["stall_seconds"] = float(
        sum(e.fields["duration"] for e in stalls)
    )
    summary["abr_decisions"] = counts.get(ev.ABR_DECISION, 0)
    summary["abandons"] = counts.get(ev.ABANDON, 0)
    summary["truncations"] = counts.get(ev.TRUNCATE, 0)
    losses = [e for e in events if e.type == ev.PACKET_LOSS]
    summary["loss_events"] = len(losses)
    summary["lost_packets"] = int(
        sum(e.fields["dropped_packets"] for e in losses)
    )
    repairs = [e for e in events if e.type == ev.SELECTIVE_RETX]
    summary["repaired_bytes"] = int(
        sum(e.fields["repaired_bytes"] for e in repairs)
    )
    return summary


def timeline(events: Sequence[TraceEvent]) -> List[Dict[str, object]]:
    """Per-segment rows reconstructed from the event stream.

    One row per streamed segment with the decision, realized download,
    stall, and post-push buffer level — the raw material of a Fig. 7
    per-segment narrative.
    """
    rows: Dict[int, Dict[str, object]] = {}

    def row(segment: int) -> Dict[str, object]:
        return rows.setdefault(segment, {"segment": segment})

    seg_dur = None
    for event in events:
        f = event.fields
        if event.type == ev.SESSION_START:
            seg_dur = float(f["segment_duration"])
        elif event.type == ev.ABR_DECISION and f["wait_s"] == 0:
            r = row(int(f["segment"]))
            r["quality"] = f["quality"]
            r["target_bytes"] = f["target_bytes"]
            r["buffer_s"] = round(float(f["buffer_level_s"]), 3)
            r["tput_kbps"] = round(float(f["throughput_bps"]) / 1e3, 1)
        elif event.type == ev.DOWNLOAD_END:
            r = row(int(f["segment"]))
            r["quality"] = f["quality"]  # realized (restarts may differ)
            r["bytes"] = f["bytes_delivered"]
            r["time_s"] = round(float(f["elapsed"]), 3)
            r["stall_s"] = round(float(f["stall"]), 3)
            r["truncated"] = bool(f["truncated"])
            r["restarts"] = f["restarts"]
            r["lost_bytes"] = f["lost_bytes"]
            if seg_dur:
                r["bitrate_kbps"] = round(
                    float(f["bytes_delivered"]) * 8.0 / seg_dur / 1e3, 1
                )
        elif event.type == ev.BUFFER_SAMPLE:
            row(int(f["segment"]))["buffer_after_s"] = round(
                float(f["level_s"]), 3
            )
        elif event.type == ev.SELECTIVE_RETX:
            r = row(int(f["segment"]))
            r["repaired_bytes"] = (
                int(r.get("repaired_bytes", 0)) + int(f["repaired_bytes"])
            )
    return [rows[k] for k in sorted(rows)]


# ---------------------------------------------------------------------------
def format_summary(summary: Dict[str, object]) -> str:
    lines = [
        f"trace: {summary['events']} events, schema "
        f"v{summary['schema_version']}, "
        f"{summary['duration']:.2f} s of session time",
    ]
    session = summary.get("session")
    if session:
        lines.append(
            f"session: {session['video']} / {session['abr']} / "
            f"{session['num_segments']} segments / "
            f"{'QUIC*' if session['partially_reliable'] else 'QUIC'} "
            f"({session['backend']} backend)"
        )
    result = summary.get("result")
    if result:
        lines.append(
            f"result: bufRatio {float(result['buf_ratio']) * 100:.2f} %  "
            f"stall {float(result['total_stall']):.2f} s  "
            f"mean score {float(result['mean_score']):.3f}"
        )
    lines.append(
        f"abr: {summary['abr_decisions']} decisions, "
        f"{summary['abandons']} abandons, "
        f"{summary['truncations']} truncations"
    )
    lines.append(
        f"loss: {summary['loss_events']} loss events "
        f"({summary['lost_packets']} packets), "
        f"{summary['repaired_bytes']} bytes repaired, "
        f"{summary['stall_count']} stalls "
        f"({summary['stall_seconds']:.2f} s)"
    )
    lines.append("events by type:")
    for type_, count in summary["event_counts"].items():
        lines.append(f"  {type_:18s} {count}")
    return "\n".join(lines)


def format_timeline(rows: List[Dict[str, object]]) -> str:
    from repro.experiments.report import format_table

    columns = [
        "segment", "quality", "buffer_s", "tput_kbps", "bytes",
        "bitrate_kbps", "time_s", "stall_s", "truncated", "restarts",
        "lost_bytes", "buffer_after_s",
    ]
    return format_table(rows, columns, title="per-segment timeline")
