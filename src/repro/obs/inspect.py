"""Trace inspector: summarize a JSONL trace, reconstruct timelines.

Backs the ``repro trace`` CLI command.  Given the events of one session
it can answer the Fig. 6/7-style questions the aggregates hide: which
ABR decisions ran, where the stalls were, how the buffer and the chosen
bitrate evolved segment by segment.

The builders are streaming: :meth:`SummaryBuilder.feed` and
:meth:`TimelineBuilder.feed` consume one event at a time, so the CLI can
inspect a multi-gigabyte multiclient trace in memory bounded by segment
count (timeline rows), never event count.  The sequence-based
:func:`summarize` / :func:`timeline` wrappers remain for callers that
already hold the events.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs import events as ev
from repro.obs.events import TraceEvent
from repro.obs.tracer import read_jsonl


def load_trace(path: str) -> List[TraceEvent]:
    """Read and schema-validate a JSONL trace file."""
    return read_jsonl(path)


def filter_events(
    events: Sequence[TraceEvent], type_: Optional[str] = None
) -> List[TraceEvent]:
    if type_ is None:
        return list(events)
    return [e for e in events if e.type == type_]


# ---------------------------------------------------------------------------
class SummaryBuilder:
    """Single-pass accumulator behind :func:`summarize`."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._events = 0
        self._first_t: Optional[float] = None
        self._last_t = 0.0
        self._session: Optional[Dict[str, object]] = None
        self._result: Optional[Dict[str, object]] = None
        self._stall_count = 0
        self._stall_seconds = 0.0
        self._loss_events = 0
        self._lost_packets = 0
        self._repaired_bytes = 0

    def feed(self, event: TraceEvent) -> None:
        self._events += 1
        if self._first_t is None:
            self._first_t = event.t
        self._last_t = event.t
        type_ = event.type
        self._counts[type_] = self._counts.get(type_, 0) + 1
        fields = event.fields
        if type_ == ev.SESSION_START:
            if self._session is None:
                self._session = dict(fields)
        elif type_ == ev.SESSION_END:
            self._result = dict(fields)
        elif type_ == ev.STALL:
            self._stall_count += 1
            self._stall_seconds += fields["duration"]
        elif type_ == ev.PACKET_LOSS:
            self._loss_events += 1
            self._lost_packets += fields["dropped_packets"]
        elif type_ == ev.SELECTIVE_RETX:
            self._repaired_bytes += fields["repaired_bytes"]

    def result(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "schema_version": ev.SCHEMA_VERSION,
            "events": self._events,
            "event_counts": dict(sorted(self._counts.items())),
            "duration": (
                self._last_t - self._first_t
                if self._first_t is not None else 0.0
            ),
        }
        if self._session is not None:
            summary["session"] = self._session
        if self._result is not None:
            summary["result"] = self._result
        summary["stall_count"] = self._stall_count
        summary["stall_seconds"] = float(self._stall_seconds)
        summary["abr_decisions"] = self._counts.get(ev.ABR_DECISION, 0)
        summary["abandons"] = self._counts.get(ev.ABANDON, 0)
        summary["truncations"] = self._counts.get(ev.TRUNCATE, 0)
        summary["loss_events"] = self._loss_events
        summary["lost_packets"] = int(self._lost_packets)
        summary["repaired_bytes"] = int(self._repaired_bytes)
        return summary


def summarize(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Aggregate view of one trace: counts, lifecycle, loss/repair totals."""
    builder = SummaryBuilder()
    for event in events:
        builder.feed(event)
    return builder.result()


class TimelineBuilder:
    """Single-pass per-segment row accumulator behind :func:`timeline`."""

    def __init__(self) -> None:
        self._rows: Dict[int, Dict[str, object]] = {}
        self._seg_dur: Optional[float] = None

    def _row(self, segment: int) -> Dict[str, object]:
        return self._rows.setdefault(segment, {"segment": segment})

    def feed(self, event: TraceEvent) -> None:
        f = event.fields
        if event.type == ev.SESSION_START:
            self._seg_dur = float(f["segment_duration"])
        elif event.type == ev.ABR_DECISION and f["wait_s"] == 0:
            r = self._row(int(f["segment"]))
            r["quality"] = f["quality"]
            r["target_bytes"] = f["target_bytes"]
            r["buffer_s"] = round(float(f["buffer_level_s"]), 3)
            r["tput_kbps"] = round(float(f["throughput_bps"]) / 1e3, 1)
        elif event.type == ev.DOWNLOAD_END:
            r = self._row(int(f["segment"]))
            r["quality"] = f["quality"]  # realized (restarts may differ)
            r["bytes"] = f["bytes_delivered"]
            r["time_s"] = round(float(f["elapsed"]), 3)
            r["stall_s"] = round(float(f["stall"]), 3)
            r["truncated"] = bool(f["truncated"])
            r["restarts"] = f["restarts"]
            r["lost_bytes"] = f["lost_bytes"]
            if self._seg_dur:
                r["bitrate_kbps"] = round(
                    float(f["bytes_delivered"]) * 8.0 / self._seg_dur / 1e3,
                    1,
                )
        elif event.type == ev.BUFFER_SAMPLE:
            self._row(int(f["segment"]))["buffer_after_s"] = round(
                float(f["level_s"]), 3
            )
        elif event.type == ev.SELECTIVE_RETX:
            r = self._row(int(f["segment"]))
            r["repaired_bytes"] = (
                int(r.get("repaired_bytes", 0)) + int(f["repaired_bytes"])
            )

    def rows(self) -> List[Dict[str, object]]:
        return [self._rows[k] for k in sorted(self._rows)]


def timeline(events: Iterable[TraceEvent]) -> List[Dict[str, object]]:
    """Per-segment rows reconstructed from the event stream.

    One row per streamed segment with the decision, realized download,
    stall, and post-push buffer level — the raw material of a Fig. 7
    per-segment narrative.
    """
    builder = TimelineBuilder()
    for event in events:
        builder.feed(event)
    return builder.rows()


# ---------------------------------------------------------------------------
def format_summary(summary: Dict[str, object]) -> str:
    lines = [
        f"trace: {summary['events']} events, schema "
        f"v{summary['schema_version']}, "
        f"{summary['duration']:.2f} s of session time",
    ]
    session = summary.get("session")
    if session:
        lines.append(
            f"session: {session['video']} / {session['abr']} / "
            f"{session['num_segments']} segments / "
            f"{'QUIC*' if session['partially_reliable'] else 'QUIC'} "
            f"({session['backend']} backend)"
        )
    result = summary.get("result")
    if result:
        lines.append(
            f"result: bufRatio {float(result['buf_ratio']) * 100:.2f} %  "
            f"stall {float(result['total_stall']):.2f} s  "
            f"mean score {float(result['mean_score']):.3f}"
        )
    lines.append(
        f"abr: {summary['abr_decisions']} decisions, "
        f"{summary['abandons']} abandons, "
        f"{summary['truncations']} truncations"
    )
    lines.append(
        f"loss: {summary['loss_events']} loss events "
        f"({summary['lost_packets']} packets), "
        f"{summary['repaired_bytes']} bytes repaired, "
        f"{summary['stall_count']} stalls "
        f"({summary['stall_seconds']:.2f} s)"
    )
    lines.append("events by type:")
    for type_, count in summary["event_counts"].items():
        lines.append(f"  {type_:18s} {count}")
    return "\n".join(lines)


def format_timeline(rows: List[Dict[str, object]]) -> str:
    from repro.experiments.report import format_table

    columns = [
        "segment", "quality", "buffer_s", "tput_kbps", "bytes",
        "bitrate_kbps", "time_s", "stall_s", "truncated", "restarts",
        "lost_bytes", "buffer_after_s",
    ]
    return format_table(rows, columns, title="per-segment timeline")
