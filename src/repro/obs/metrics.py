"""Process-wide metrics registry: counters, gauges and histograms.

Instruments the hot layers of the stack (transport rounds, link drops,
ABR control actions, experiment sessions) with labeled series, prometheus
style but zero-dependency::

    registry = get_registry()
    drops = registry.counter("link.dropped_packets", trace="verizon")
    drops.inc(outcome.dropped_packets)

Metric objects are cheap to hold, so instrumented classes look them up
once at construction and call ``inc``/``set``/``observe`` (a single
attribute update) on the hot path.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, buffer level)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Sample distribution with exact percentiles.

    Samples are kept verbatim (simulation workloads observe thousands,
    not millions, of values); percentiles use the nearest-rank method so
    they are exact and deterministic.
    """

    __slots__ = ("_values", "total")

    def __init__(self) -> None:
        self._values: List[float] = []
        self.total = 0.0

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self.total += value

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 100]."""
        if not self._values:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} out of [0, 100]")
        ordered = sorted(self._values)
        if q == 0.0:
            return ordered[0]
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create registry of labeled metric series."""

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every series, keyed by formatted series name."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for (name, labels), metric in sorted(self._counters.items()):
            out["counters"][format_series(name, labels)] = metric.value
        for (name, labels), metric in sorted(self._gauges.items()):
            out["gauges"][format_series(name, labels)] = metric.value
        for (name, labels), metric in sorted(self._histograms.items()):
            out["histograms"][format_series(name, labels)] = metric.summary()
        return out

    def render(self, prefix: Optional[str] = None) -> str:
        """Human-readable dump (``prefix`` filters series names)."""
        lines: List[str] = ["=== metrics ==="]
        snapshot = self.dump()
        for series, value in snapshot["counters"].items():
            if prefix and not series.startswith(prefix):
                continue
            lines.append(f"counter   {series} = {value:g}")
        for series, value in snapshot["gauges"].items():
            if prefix and not series.startswith(prefix):
                continue
            lines.append(f"gauge     {series} = {value:g}")
        for series, summary in snapshot["histograms"].items():
            if prefix and not series.startswith(prefix):
                continue
            lines.append(
                f"histogram {series} count={summary['count']:g} "
                f"mean={summary['mean']:.6g} p50={summary['p50']:.6g} "
                f"p90={summary['p90']:.6g} p99={summary['p99']:.6g}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def reset_registry() -> None:
    """Clear the default registry (test isolation, fresh experiments)."""
    _DEFAULT_REGISTRY.reset()
