"""Process-wide metrics registry: counters, gauges and histograms.

Instruments the hot layers of the stack (transport rounds, link drops,
ABR control actions, experiment sessions) with labeled series, prometheus
style but zero-dependency::

    registry = get_registry()
    drops = registry.counter("link.dropped_packets", trace="verizon")
    drops.inc(outcome.dropped_packets)

Metric objects are cheap to hold, so instrumented classes look them up
once at construction and call ``inc``/``set``/``observe`` (a single
attribute update) on the hot path.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, buffer level)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


#: Histogram sample cap: below it percentiles are exact; past it a
#: deterministic reservoir (algorithm R with a fixed-seed RNG) keeps a
#: uniform sample, bounding memory and percentile cost while ``count``,
#: ``sum`` and ``mean`` stay exact.
HISTOGRAM_RESERVOIR = 4096


class Histogram:
    """Sample distribution with nearest-rank percentiles.

    Up to :data:`HISTOGRAM_RESERVOIR` samples are kept verbatim, so the
    percentiles of typical simulation workloads (thousands of values)
    are exact and deterministic.  Beyond the cap the samples form a
    uniform reservoir — percentiles become estimates, while ``count``,
    ``sum`` and ``mean`` remain exact.  The sorted view is cached, so a
    ``summary()`` costs one sort regardless of how many percentiles it
    reads.
    """

    __slots__ = (
        "_values", "_sorted", "_seen", "_count", "_rng", "_reservoir",
        "total",
    )

    def __init__(self, reservoir: int = HISTOGRAM_RESERVOIR) -> None:
        if reservoir <= 0:
            raise ValueError("histogram reservoir must be positive")
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._seen = 0  # samples offered to the reservoir
        self._count = 0  # samples observed (exact, never decays)
        self._rng: Optional[random.Random] = None
        self.total = 0.0
        self._reservoir = reservoir

    def observe(self, value: float) -> None:
        self._count += 1
        self.total += value
        self._add_sample(float(value))

    def _add_sample(self, value: float) -> None:
        """Admit one sample to the (bounded) reservoir."""
        self._seen += 1
        if len(self._values) < self._reservoir:
            self._values.append(value)
            self._sorted = None
            return
        if self._rng is None:
            # Fixed seed: reservoir contents are a pure function of the
            # observation sequence, keeping seeded runs reproducible.
            self._rng = random.Random(0x5EED)
        slot = self._rng.randrange(self._seen)
        if slot < self._reservoir:
            self._values[slot] = value
            self._sorted = None

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self.total / self._count if self._count else 0.0

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 100]."""
        if not self._values:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} out of [0, 100]")
        ordered = self._ordered()
        if q == 0.0:
            return ordered[0]
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples and exact aggregates in."""
        for value in other._values:
            self._add_sample(value)
        self._count += other._count
        self.total += other.total

    def state_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot: enough to rebuild the reservoir exactly."""
        return {
            "reservoir": self._reservoir,
            "values": list(self._values),
            "seen": self._seen,
            "count": self._count,
            "total": self.total,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram from :meth:`state_dict` output.

        The restored reservoir holds the same samples in the same order,
        so percentiles — and any subsequent :meth:`merge` — match what
        the original instance would have produced.
        """
        hist = cls(reservoir=int(state["reservoir"]))
        hist._values = [float(v) for v in state["values"]]
        hist._seen = int(state["seen"])
        hist._count = int(state["count"])
        hist.total = float(state["total"])
        return hist


class MetricsRegistry:
    """Get-or-create registry of labeled metric series."""

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    def histograms(
        self, prefix: Optional[str] = None,
    ) -> List[Tuple[str, Histogram]]:
        """(series name, histogram) pairs, sorted by series name.

        ``prefix`` filters on the formatted series name — e.g.
        ``histograms(prefix="timing.")`` for the profiling hooks.
        """
        out: List[Tuple[str, Histogram]] = []
        for (name, labels), metric in sorted(self._histograms.items()):
            series = format_series(name, labels)
            if prefix and not series.startswith(prefix):
                continue
            out.append((series, metric))
        return out

    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every series, keyed by formatted series name."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for (name, labels), metric in sorted(self._counters.items()):
            out["counters"][format_series(name, labels)] = metric.value
        for (name, labels), metric in sorted(self._gauges.items()):
            out["gauges"][format_series(name, labels)] = metric.value
        for (name, labels), metric in sorted(self._histograms.items()):
            out["histograms"][format_series(name, labels)] = metric.summary()
        return out

    def render(self, prefix: Optional[str] = None) -> str:
        """Human-readable dump (``prefix`` filters series names)."""
        lines: List[str] = ["=== metrics ==="]
        snapshot = self.dump()
        for series, value in snapshot["counters"].items():
            if prefix and not series.startswith(prefix):
                continue
            lines.append(f"counter   {series} = {value:g}")
        for series, value in snapshot["gauges"].items():
            if prefix and not series.startswith(prefix):
                continue
            lines.append(f"gauge     {series} = {value:g}")
        for series, summary in snapshot["histograms"].items():
            if prefix and not series.startswith(prefix):
                continue
            lines.append(
                f"histogram {series} count={summary['count']:g} "
                f"mean={summary['mean']:.6g} p50={summary['p50']:.6g} "
                f"p90={summary['p90']:.6g} p99={summary['p99']:.6g}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges take the
        other's latest value, histograms merge sample reservoirs."""
        for (name, labels), metric in other._counters.items():
            self.counter(name, **dict(labels)).inc(metric.value)
        for (name, labels), metric in other._gauges.items():
            self.gauge(name, **dict(labels)).set(metric.value)
        for (name, labels), metric in other._histograms.items():
            self.histogram(name, **dict(labels)).merge(metric)


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def reset_registry() -> None:
    """Clear the default registry (test isolation, fresh experiments)."""
    _DEFAULT_REGISTRY.reset()


@contextmanager
def scoped_registry(merge: bool = True) -> Iterator[MetricsRegistry]:
    """Swap in a fresh default registry for the duration of a block.

    Code instrumented via :func:`get_registry` records into the scope's
    registry, so repeated workloads (the 30 repetitions of an experiment
    cell) report from a clean slate instead of accumulating process-wide
    state.  On exit the scope is folded back into the enclosing registry
    (``merge=False`` discards it instead), so outer consumers — e.g. the
    CLI's ``--metrics`` dump — still see the totals.
    """
    global _DEFAULT_REGISTRY
    parent = _DEFAULT_REGISTRY
    child = MetricsRegistry()
    _DEFAULT_REGISTRY = child
    try:
        yield child
    finally:
        _DEFAULT_REGISTRY = parent
        if merge:
            parent.merge(child)
