"""Trace-driven invariant auditor: cross-layer conservation laws.

The trace of one session is a complete account of what every layer did;
this module checks that the account balances.  Each invariant encodes a
contract the paper's design relies on:

* ``monotone_clock`` — simulation time never runs backwards and sequence
  numbers strictly increase (the premise of every other check).
* ``buffer_continuity`` — the playback buffer is never negative, never
  exceeds capacity plus one in-flight segment, and between consecutive
  segment pushes drains at exactly real-time rate minus recorded stalls
  (§5's player model).
* ``byte_conservation`` — per download, delivered + lost bytes equal the
  bytes requested; nothing is created or silently destroyed at the
  transport/HTTP boundary (§4.2's unreliable-stream accounting).
* ``cwnd_compliance`` — QUIC* keeps *unreliable* streams congestion
  controlled: no transport round offers more packets than the current
  congestion window allows (§4's "QUIC* stays TCP-friendly").
* ``stream_limit`` — a download never requests more than the wire bytes
  announced for the attempt, and never delivers more than it requested
  (stream offsets respect flow-control limits).
* ``frame_drop_legality`` — ABR*'s virtual quality levels may only drop
  frame payloads off the *unreliable tail* of the manifest's frame
  ordering; truncating into the reliable prefix (I-frame + headers)
  would produce an undecodable segment (§4.1/§4.3).
* ``abr_legality`` — decisions walk segments in order, qualities stay
  inside the ladder, and every download attempt matches the decision (or
  abandon target) that authorized it.
* ``stall_accounting`` — the stalls the session reports in
  ``session_end`` equal the sum of the ``stall`` events, and
  ``buf_ratio`` is that total over the media duration — the
  :class:`~repro.player.metrics.SessionMetrics` and the trace agree.
* ``retry_accounting`` — every request failure (``request_timeout`` /
  ``connection_reset``) on a segment download resolves to exactly one
  ``retry`` or ``degraded`` event before the download ends, and the
  bytes the retry resumes from equal the bytes the failed chain had
  accounted — nothing is re-fetched or double-counted across retries
  (the resilience layer's contract).
* ``stall_attribution`` — the causal engine in
  :mod:`repro.obs.attribution` assigns every stall second to exactly one
  cross-layer cause (fault, retry, degraded, bandwidth, ABR overreach),
  and the per-cause sums partition the session's reported stall time
  exactly — no bad second is double-counted or unexplained.

The auditor is incremental: :meth:`TraceAuditor.feed` consumes one event
at a time, so it can run inline as a tracer observer (catching
violations even when the ring buffer later evicts the event) or post hoc
over a parsed JSONL file via :func:`audit_events` / ``repro trace
--check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs import events as ev
from repro.obs.attribution import SessionAttributor
from repro.obs.events import TraceEvent

#: Tolerance for float conservation checks.  Buffer levels and stall
#: totals are chains of clock differences; accumulated rounding is
#: ~1e-13 over hundreds of simulated seconds, so 1e-6 separates real
#: accounting bugs from float noise by seven orders of magnitude.
FLOAT_TOLERANCE = 1e-6

#: Invariant name -> one-line law (the catalog ``--check`` reports from).
INVARIANTS: Dict[str, str] = {
    "monotone_clock": "simulation time and sequence numbers never move backwards",
    "buffer_continuity": "playback buffer stays within [0, capacity + 1 segment] and drains at real-time rate minus stalls",
    "byte_conservation": "bytes delivered + bytes lost = bytes requested for every download",
    "cwnd_compliance": "no transport round offers more packets than the congestion window",
    "stream_limit": "downloads never exceed the announced wire bytes nor deliver more than requested",
    "frame_drop_legality": "truncations keep at least the reliable prefix and at most the announced wire bytes",
    "abr_legality": "decisions walk segments in order with ladder-legal qualities matching each download attempt",
    "stall_accounting": "session_end stall totals and bufRatio equal the sum of stall events",
    "shared_link_conservation": "a shared link's delivered + dropped packets equal the packets the sessions offered",
    "retry_accounting": "every request failure resolves to exactly one retry or degradation, with bytes conserved across the retry chain",
    "stall_attribution": "every stall second maps to exactly one cross-layer cause, and per-cause sums partition the session's stall time",
}


@dataclass
class Violation:
    """One broken invariant, pinned to the event that exposed it."""

    invariant: str
    index: int  # position in the audited stream (0-based)
    seq: int
    t: float
    message: str

    def __str__(self) -> str:
        return (
            f"[{self.invariant}] event #{self.index} (seq {self.seq}, "
            f"t={self.t:.6f}s): {self.message}"
        )


@dataclass
class AuditReport:
    """Outcome of auditing one event stream."""

    events: int
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


class TraceAuditor:
    """Feed trace events in order; collects :class:`Violation` objects.

    Stateless inputs, stateful checks: the auditor reconstructs the
    session's buffer, stall, and per-segment download state from the
    stream alone, so it needs no access to the live session — a recorded
    JSONL file audits identically to an inline run.
    """

    def __init__(self, tolerance: float = FLOAT_TOLERANCE):
        self.tolerance = tolerance
        self.violations: List[Violation] = []
        self._index = -1
        self._last_seq: Optional[int] = None
        self._last_t: Optional[float] = None
        # Session parameters (from session_start, when present).
        self._segment_duration: Optional[float] = None
        self._capacity_s: Optional[float] = None
        self._num_segments: Optional[int] = None
        self._num_levels: Optional[int] = None
        # Buffer-continuity state.
        self._last_sample: Optional[TraceEvent] = None
        self._stall_since_sample = 0.0
        # Stall-accounting state.
        self._stall_total = 0.0
        self._sample_count = 0
        # ABR / download state.
        self._last_decided_segment: Optional[int] = None
        self._decided_quality: Dict[int, int] = {}
        self._abandon_quality: Dict[int, int] = {}
        self._wire_bytes: Dict[int, int] = {}
        # Retry-accounting state: segment -> the unresolved failure event
        # (request_timeout / connection_reset awaiting a retry/degraded).
        self._pending_failure: Dict[int, TraceEvent] = {}
        # Causal attribution runs alongside the conservation checks; the
        # partition law it produces is audited at session_end.
        self._attributor = SessionAttributor()

    # ------------------------------------------------------------------
    def _flag(self, invariant: str, event: TraceEvent, message: str) -> None:
        self.violations.append(Violation(
            invariant=invariant, index=self._index, seq=event.seq,
            t=event.t, message=message,
        ))

    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        """Audit one event (events must arrive in stream order)."""
        self._index += 1
        self._check_clock(event)
        self._attributor.feed(event)
        handler = self._HANDLERS.get(event.type)
        if handler is not None:
            handler(self, event)

    def finalize(self) -> AuditReport:
        """Close the audit and return the report."""
        for segment, failure in sorted(self._pending_failure.items()):
            self._flag(
                "retry_accounting", failure,
                f"segment {segment}: {failure.type} never resolved to a "
                f"retry or degradation before the trace ended",
            )
        self._pending_failure.clear()
        return AuditReport(
            events=self._index + 1, violations=list(self.violations)
        )

    # -- universal ------------------------------------------------------
    def _check_clock(self, event: TraceEvent) -> None:
        if self._last_seq is not None and event.seq <= self._last_seq:
            self._flag(
                "monotone_clock", event,
                f"sequence number {event.seq} does not advance past "
                f"{self._last_seq}",
            )
        if self._last_t is not None and event.t < self._last_t - 1e-12:
            self._flag(
                "monotone_clock", event,
                f"timestamp {event.t:.6f} runs backwards from "
                f"{self._last_t:.6f}",
            )
        self._last_seq = event.seq
        self._last_t = event.t

    # -- session lifecycle ----------------------------------------------
    def _on_session_start(self, event: TraceEvent) -> None:
        f = event.fields
        self._segment_duration = float(f["segment_duration"])
        self._capacity_s = float(f["buffer_capacity_s"])
        self._num_segments = int(f["num_segments"])
        levels = f.get("num_levels")
        self._num_levels = int(levels) if levels is not None else None
        if self._segment_duration <= 0:
            self._flag("abr_legality", event,
                       f"segment duration {self._segment_duration} <= 0")
        if self._capacity_s <= 0:
            self._flag("buffer_continuity", event,
                       f"buffer capacity {self._capacity_s} <= 0")

    def _on_session_end(self, event: TraceEvent) -> None:
        f = event.fields
        total = float(f["total_stall"])
        if abs(total - self._stall_total) > self.tolerance:
            self._flag(
                "stall_accounting", event,
                f"session_end reports {total:.6f}s of stall but the "
                f"trace's stall events sum to {self._stall_total:.6f}s",
            )
        if self._num_segments and self._segment_duration:
            media = self._num_segments * self._segment_duration
            expected_ratio = total / media
            if abs(float(f["buf_ratio"]) - expected_ratio) > self.tolerance:
                self._flag(
                    "stall_accounting", event,
                    f"buf_ratio {float(f['buf_ratio']):.6f} != "
                    f"total_stall/media_duration {expected_ratio:.6f}",
                )
        segments = int(f["segments"])
        if segments != self._sample_count:
            self._flag(
                "stall_accounting", event,
                f"session_end reports {segments} segments but the trace "
                f"pushed {self._sample_count} buffer samples",
            )
        result = self._attributor.result()
        attributed = result.attributed_stall
        if abs(attributed - self._stall_total) > self.tolerance:
            self._flag(
                "stall_attribution", event,
                f"per-cause stall seconds sum to {attributed:.6f}s but "
                f"the trace's stall events total "
                f"{self._stall_total:.6f}s — the partition leaks",
            )
        elif abs(attributed - total) > self.tolerance:
            self._flag(
                "stall_attribution", event,
                f"per-cause stall seconds sum to {attributed:.6f}s but "
                f"session_end reports {total:.6f}s of stall",
            )
        if sum(result.stall_events.values()) != result.total_stall_events:
            self._flag(
                "stall_attribution", event,
                f"{result.total_stall_events} stall events but per-cause "
                f"counts sum to {sum(result.stall_events.values())}",
            )
        if sum(result.quality_drops.values()) != result.total_drops:
            self._flag(
                "stall_attribution", event,
                f"{result.total_drops} quality drops but per-cause "
                f"counts sum to {sum(result.quality_drops.values())}",
            )

    # -- player layer ---------------------------------------------------
    def _on_stall(self, event: TraceEvent) -> None:
        duration = float(event.fields["duration"])
        if duration <= 0:
            self._flag("stall_accounting", event,
                       f"stall event with non-positive duration {duration}")
            return
        self._stall_total += duration
        self._stall_since_sample += duration

    def _on_buffer_sample(self, event: TraceEvent) -> None:
        f = event.fields
        level = float(f["level_s"])
        capacity = float(f["capacity_s"])
        self._sample_count += 1
        if level < -self.tolerance:
            self._flag("buffer_continuity", event,
                       f"buffer level {level:.6f}s is negative")
        seg_dur = self._segment_duration
        if seg_dur is not None and level > capacity + seg_dur + self.tolerance:
            self._flag(
                "buffer_continuity", event,
                f"buffer level {level:.6f}s exceeds capacity "
                f"{capacity:.2f}s plus one in-flight segment",
            )
        prev = self._last_sample
        if prev is not None and seg_dur is not None:
            elapsed = event.t - prev.t
            drained = elapsed - self._stall_since_sample
            expected = float(prev.fields["level_s"]) - drained + seg_dur
            if abs(expected - level) > self.tolerance:
                self._flag(
                    "buffer_continuity", event,
                    f"buffer level {level:.6f}s breaks continuity: "
                    f"expected {expected:.6f}s "
                    f"(previous {float(prev.fields['level_s']):.6f}s - "
                    f"{drained:.6f}s drained + {seg_dur:.2f}s pushed)",
                )
        self._last_sample = event
        self._stall_since_sample = 0.0

    # -- ABR layer ------------------------------------------------------
    def _on_abr_decision(self, event: TraceEvent) -> None:
        f = event.fields
        segment = int(f["segment"])
        quality = int(f["quality"])
        if self._num_segments is not None and not (
            0 <= segment < self._num_segments
        ):
            self._flag("abr_legality", event,
                       f"decision for out-of-range segment {segment}")
        if quality < 0 or (
            self._num_levels is not None and quality >= self._num_levels
        ):
            self._flag(
                "abr_legality", event,
                f"decision quality {quality} outside the ladder "
                f"[0, {self._num_levels})",
            )
        if (
            self._last_decided_segment is not None
            and segment < self._last_decided_segment
        ):
            self._flag(
                "abr_legality", event,
                f"decision for segment {segment} after segment "
                f"{self._last_decided_segment} (segments must be "
                f"non-decreasing)",
            )
        self._last_decided_segment = segment
        if float(f["wait_s"]) <= 0:
            self._decided_quality[segment] = quality
            self._abandon_quality.pop(segment, None)

    # -- download lifecycle ---------------------------------------------
    def _on_download_start(self, event: TraceEvent) -> None:
        f = event.fields
        segment = int(f["segment"])
        quality = int(f["quality"])
        attempt = int(f["attempt"])
        self._wire_bytes[segment] = int(f["wire_bytes"])
        if attempt == 0:
            authorized = self._decided_quality.get(segment)
        else:
            authorized = self._abandon_quality.get(segment)
        if authorized is not None and quality != authorized:
            self._flag(
                "abr_legality", event,
                f"download attempt {attempt} for segment {segment} at "
                f"quality {quality} but the "
                f"{'abandon' if attempt else 'decision'} authorized "
                f"quality {authorized}",
            )

    def _on_abandon(self, event: TraceEvent) -> None:
        f = event.fields
        segment = int(f["segment"])
        self._abandon_quality[segment] = int(f["to_quality"])
        if int(f["wasted_bytes"]) < 0:
            self._flag("byte_conservation", event,
                       f"abandon wasted {f['wasted_bytes']} bytes (< 0)")

    def _on_truncate(self, event: TraceEvent) -> None:
        f = event.fields
        requested = int(f["bytes_requested"])
        wire = int(f["wire_bytes"])
        if requested > wire:
            self._flag(
                "frame_drop_legality", event,
                f"truncation requested {requested} bytes, more than the "
                f"{wire} wire bytes of the attempt",
            )
        reliable = f.get("reliable_bytes")
        if reliable is not None and requested < int(reliable):
            self._flag(
                "frame_drop_legality", event,
                f"truncation to {requested} bytes cuts into the "
                f"{int(reliable)}-byte reliable prefix (I-frame + "
                f"headers): drops must come off the unreliable tail",
            )

    def _on_download_end(self, event: TraceEvent) -> None:
        f = event.fields
        segment = int(f["segment"])
        requested = int(f["bytes_requested"])
        delivered = int(f["bytes_delivered"])
        lost = int(f["lost_bytes"])
        if delivered < 0 or lost < 0 or requested < 0:
            self._flag(
                "byte_conservation", event,
                f"negative byte count (requested={requested}, "
                f"delivered={delivered}, lost={lost})",
            )
            return
        if delivered + lost != requested:
            self._flag(
                "byte_conservation", event,
                f"segment {segment}: delivered {delivered} + lost {lost} "
                f"= {delivered + lost} != requested {requested}",
            )
        if delivered > requested:
            self._flag(
                "stream_limit", event,
                f"segment {segment}: delivered {delivered} bytes exceeds "
                f"the {requested} requested",
            )
        wire = self._wire_bytes.get(segment)
        if wire is not None:
            if requested > wire:
                self._flag(
                    "stream_limit", event,
                    f"segment {segment}: requested {requested} bytes "
                    f"beyond the attempt's {wire} wire bytes",
                )
            truncated = bool(f["truncated"])
            if truncated != (requested < wire):
                self._flag(
                    "stream_limit", event,
                    f"segment {segment}: truncated={truncated} "
                    f"inconsistent with requested {requested} of "
                    f"{wire} wire bytes",
                )
        if float(f["stall"]) < 0:
            self._flag("stall_accounting", event,
                       f"download_end stall {f['stall']} < 0")
        pending = self._pending_failure.pop(segment, None)
        if pending is not None:
            self._flag(
                "retry_accounting", event,
                f"segment {segment}: download ended with an unresolved "
                f"{pending.type} (no retry or degraded event followed)",
            )

    # -- resilience layer -----------------------------------------------
    @staticmethod
    def _segment_scope(fields: Dict) -> bool:
        """Retry accounting binds only segment-download failures; one-off
        repair/manifest failures carry a ``context`` tag and resolve out
        of band."""
        return fields.get("context", "segment") == "segment"

    def _on_request_failure(self, event: TraceEvent) -> None:
        f = event.fields
        if not self._segment_scope(f):
            return
        segment = int(f["segment"])
        if int(f["accounted_bytes"]) < int(f["delivered_bytes"]):
            self._flag(
                "retry_accounting", event,
                f"segment {segment}: accounted bytes "
                f"{f['accounted_bytes']} below delivered "
                f"{f['delivered_bytes']} (accounting lost bytes)",
            )
        previous = self._pending_failure.get(segment)
        if previous is not None:
            self._flag(
                "retry_accounting", event,
                f"segment {segment}: {event.type} while the previous "
                f"{previous.type} is still unresolved",
            )
        self._pending_failure[segment] = event

    def _on_retry(self, event: TraceEvent) -> None:
        f = event.fields
        if not self._segment_scope(f):
            return
        segment = int(f["segment"])
        failure = self._pending_failure.pop(segment, None)
        if failure is None:
            self._flag(
                "retry_accounting", event,
                f"segment {segment}: retry without a preceding "
                f"unresolved failure",
            )
            return
        resume = int(f["resume_bytes"])
        accounted = int(failure.fields["accounted_bytes"])
        if resume != accounted:
            self._flag(
                "retry_accounting", event,
                f"segment {segment}: retry resumes at byte {resume} but "
                f"the failed chain accounted {accounted} — bytes were "
                f"{'re-fetched' if resume < accounted else 'skipped'} "
                f"across the retry",
            )
        if float(f["backoff_s"]) < 0:
            self._flag("retry_accounting", event,
                       f"negative backoff {f['backoff_s']}")

    def _on_degraded(self, event: TraceEvent) -> None:
        f = event.fields
        mode = f["mode"]
        if mode not in ("floor", "skip"):
            self._flag("retry_accounting", event,
                       f"unknown degradation mode {mode!r}")
        if not self._segment_scope(f):
            return
        segment = int(f["segment"])
        failure = self._pending_failure.pop(segment, None)
        if failure is None:
            self._flag(
                "retry_accounting", event,
                f"segment {segment}: degraded without a preceding "
                f"unresolved failure",
            )
        if mode == "floor":
            to_quality = f.get("to_quality")
            if to_quality is None:
                self._flag(
                    "retry_accounting", event,
                    f"segment {segment}: floor degradation without a "
                    f"to_quality authorizing the fallback attempt",
                )
            else:
                # The degradation authorizes the follow-up attempt the
                # same way an abandon does.
                self._abandon_quality[segment] = int(to_quality)

    # -- transport layer ------------------------------------------------
    def _on_transport_round(self, event: TraceEvent) -> None:
        f = event.fields
        offered = int(f["offered"])
        dropped = int(f["dropped"])
        cwnd = float(f["cwnd"])
        allowed = max(int(cwnd), 1)
        if offered > allowed:
            self._flag(
                "cwnd_compliance", event,
                f"round offered {offered} packets with cwnd {cwnd:.2f} "
                f"(allowed {allowed}): the stream escaped congestion "
                f"control",
            )
        if dropped < 0 or dropped > offered:
            self._flag(
                "cwnd_compliance", event,
                f"round dropped {dropped} of {offered} offered packets",
            )
        if float(f["rtt"]) <= 0:
            self._flag("monotone_clock", event,
                       f"non-positive round RTT {f['rtt']}")

    def _on_packet_loss(self, event: TraceEvent) -> None:
        f = event.fields
        if int(f["dropped_packets"]) <= 0:
            self._flag("byte_conservation", event,
                       "packet_loss event with no dropped packets")
        if bool(f["reliable"]) and int(f["lost_bytes"]) != 0:
            self._flag(
                "byte_conservation", event,
                f"reliable stream reports {f['lost_bytes']} "
                f"application bytes lost (retransmission must repair "
                f"them)",
            )

    _HANDLERS = {
        ev.SESSION_START: _on_session_start,
        ev.SESSION_END: _on_session_end,
        ev.STALL: _on_stall,
        ev.BUFFER_SAMPLE: _on_buffer_sample,
        ev.ABR_DECISION: _on_abr_decision,
        ev.DOWNLOAD_START: _on_download_start,
        ev.ABANDON: _on_abandon,
        ev.TRUNCATE: _on_truncate,
        ev.DOWNLOAD_END: _on_download_end,
        ev.TRANSPORT_ROUND: _on_transport_round,
        ev.PACKET_LOSS: _on_packet_loss,
        ev.REQUEST_TIMEOUT: _on_request_failure,
        ev.CONNECTION_RESET: _on_request_failure,
        ev.RETRY: _on_retry,
        ev.DEGRADED: _on_degraded,
    }


class MultiSessionAuditor:
    """Audit one interleaved trace of N concurrent sessions.

    The global stream must stay monotone (one kernel, one clock, one seq
    space); beyond that, events are partitioned by their ``session_id``
    into per-session :class:`TraceAuditor` instances, so every
    single-session law holds *per session* even though the sessions'
    events interleave arbitrarily.  One law is genuinely cross-session:

    * ``shared_link_conservation`` — the shared bottleneck's lifetime
      counters (a ``link_stats`` event emitted when the run ends) must
      balance against what the sessions collectively sent: delivered +
      dropped = offered, offered = the sum of every session's
      ``transport_round.offered``, and dropped = the sum of every
      ``packet_loss.dropped_packets``.  Bytes cannot appear on the wire
      without a session sending them, nor vanish without being dropped.
    """

    def __init__(self, tolerance: float = FLOAT_TOLERANCE):
        self.tolerance = tolerance
        self.violations: List[Violation] = []
        self._index = -1
        self._last_seq: Optional[int] = None
        self._last_t: Optional[float] = None
        self._sessions: Dict[object, TraceAuditor] = {}
        self._session_order: List[object] = []
        self._link_stats: Optional[TraceEvent] = None
        self._rounds_offered = 0
        self._losses_dropped = 0

    # ------------------------------------------------------------------
    def _flag(self, invariant: str, event: TraceEvent, message: str) -> None:
        self.violations.append(Violation(
            invariant=invariant, index=self._index, seq=event.seq,
            t=event.t, message=message,
        ))

    def _session(self, key) -> TraceAuditor:
        auditor = self._sessions.get(key)
        if auditor is None:
            auditor = TraceAuditor(tolerance=self.tolerance)
            self._sessions[key] = auditor
            self._session_order.append(key)
        return auditor

    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        """Audit one event of the interleaved stream (in stream order)."""
        self._index += 1
        if self._last_seq is not None and event.seq <= self._last_seq:
            self._flag(
                "monotone_clock", event,
                f"global sequence number {event.seq} does not advance "
                f"past {self._last_seq}",
            )
        if self._last_t is not None and event.t < self._last_t - 1e-12:
            self._flag(
                "monotone_clock", event,
                f"global timestamp {event.t:.6f} runs backwards from "
                f"{self._last_t:.6f} (sessions share one kernel clock)",
            )
        self._last_seq = event.seq
        self._last_t = event.t

        if event.type == ev.LINK_STATS:
            # Lifetime counters; the last emission wins.
            self._link_stats = event
            return
        if event.type == ev.TRANSPORT_ROUND:
            self._rounds_offered += int(event.fields["offered"])
        elif event.type == ev.PACKET_LOSS:
            self._losses_dropped += int(event.fields["dropped_packets"])
        self._session(event.fields.get("session_id")).feed(event)

    def finalize(self) -> AuditReport:
        """Close every per-session audit plus the cross-session laws."""
        violations = list(self.violations)
        for key in self._session_order:
            violations.extend(self._sessions[key].finalize().violations)
        stats = self._link_stats
        if stats is not None:
            self._check_link(stats, violations)
        return AuditReport(events=self._index + 1, violations=violations)

    def _check_link(self, stats: TraceEvent,
                    violations: List[Violation]) -> None:
        f = stats.fields
        offered = int(f["offered_packets"])
        delivered = int(f["delivered_packets"])
        dropped = int(f["dropped_packets"])

        def flag(message: str) -> None:
            violations.append(Violation(
                invariant="shared_link_conservation", index=self._index,
                seq=stats.seq, t=stats.t, message=message,
            ))

        if delivered + dropped != offered:
            flag(
                f"link delivered {delivered} + dropped {dropped} = "
                f"{delivered + dropped} != offered {offered}"
            )
        if offered != self._rounds_offered:
            flag(
                f"link saw {offered} offered packets but the sessions' "
                f"transport rounds offered {self._rounds_offered}"
            )
        if dropped != self._losses_dropped:
            flag(
                f"link dropped {dropped} packets but the sessions' "
                f"packet_loss events account for {self._losses_dropped}"
            )


def audit_events(
    events: Sequence[TraceEvent], tolerance: float = FLOAT_TOLERANCE
) -> AuditReport:
    """Audit a complete event stream post hoc.

    Single-session traces go through :class:`TraceAuditor`; traces
    carrying ``session_id`` tags or ``link_stats`` events (multi-client
    runs) through :class:`MultiSessionAuditor`.
    """
    multi = any(
        e.type == ev.LINK_STATS or "session_id" in e.fields for e in events
    )
    auditor = (
        MultiSessionAuditor(tolerance=tolerance) if multi
        else TraceAuditor(tolerance=tolerance)
    )
    for event in events:
        auditor.feed(event)
    return auditor.finalize()


def audit_stream(
    events: Iterable[TraceEvent], tolerance: float = FLOAT_TOLERANCE
) -> AuditReport:
    """Audit an event stream in one pass, without materializing it.

    Unlike :func:`audit_events` — which must scan the whole sequence to
    decide between the single- and multi-session auditor — this feeds a
    :class:`MultiSessionAuditor` directly (solo traces reduce to one
    per-session audit keyed ``None``), so arbitrarily large JSONL
    traces audit in memory bounded by session count, not event count.
    """
    auditor = MultiSessionAuditor(tolerance=tolerance)
    for event in events:
        auditor.feed(event)
    return auditor.finalize()


def format_report(report: AuditReport) -> str:
    """Human-readable audit outcome (one line per violation)."""
    if report.ok:
        return (
            f"ok: {report.events} events, "
            f"{len(INVARIANTS)} invariants checked, 0 violations"
        )
    lines = [
        f"FAIL: {len(report.violations)} violation(s) in "
        f"{report.events} events"
    ]
    lines.extend(str(v) for v in report.violations)
    return "\n".join(lines)
