"""Observability: structured tracing, metrics registry, profiling hooks.

The layer is zero-dependency and deterministic: trace timestamps come
from the simulation clock (never wall time), so the same seed yields a
byte-identical JSONL trace; the metrics registry and the (wall-time)
profiling histograms live outside the trace and never influence the
simulation.

Usage::

    from repro import prepare_video, stream
    from repro.obs import Tracer

    tracer = Tracer()
    stream(prepare_video("bbb"), tracer=tracer)
    tracer.write_jsonl("trace.jsonl")
"""

from repro.obs import spans
from repro.obs.attribution import (
    CAUSE_DESCRIPTIONS,
    CAUSES,
    AttributionResult,
    FleetAttributor,
    SessionAttributor,
    attribute_events,
    format_attribution,
)
from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_TYPES,
    OPTIONAL_FIELDS,
    SCHEMA_VERSION,
    SchemaError,
    TraceEvent,
)
from repro.obs.invariants import (
    INVARIANTS,
    AuditReport,
    MultiSessionAuditor,
    TraceAuditor,
    Violation,
    audit_events,
    audit_stream,
    format_report,
)
from repro.obs.diff import (
    PerfDiffFormatError,
    diff_files,
    format_diff,
    load_perf_file,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    build_ledger,
    collapsed_stacks,
    format_ledger,
    load_ledger,
    profile_trials,
    write_ledger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
    scoped_registry,
)
from repro.obs.profiling import (
    enable_profiling,
    profiling_enabled,
    timed,
    timing_summary,
)
from repro.obs.report import (
    build_report,
    render_markdown,
    report_to_json,
)
from repro.obs.spans import (
    SPANS_VERSION,
    SUBSYSTEMS,
    SpanNode,
    SpanProfiler,
)
from repro.obs.rollup import (
    TraceRollup,
    format_rollup,
    iter_trace_events,
    merge_rollups,
    session_sample_key,
    session_sampled,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SessionTracer,
    StreamingTracer,
    Tracer,
    read_jsonl,
)

__all__ = [
    "CAUSE_DESCRIPTIONS",
    "CAUSES",
    "AttributionResult",
    "FleetAttributor",
    "SessionAttributor",
    "attribute_events",
    "format_attribution",
    "EVENT_FIELDS",
    "EVENT_TYPES",
    "OPTIONAL_FIELDS",
    "SCHEMA_VERSION",
    "SchemaError",
    "TraceEvent",
    "INVARIANTS",
    "AuditReport",
    "MultiSessionAuditor",
    "TraceAuditor",
    "Violation",
    "audit_events",
    "audit_stream",
    "format_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "scoped_registry",
    "enable_profiling",
    "profiling_enabled",
    "timed",
    "timing_summary",
    "SPANS_VERSION",
    "SUBSYSTEMS",
    "SpanNode",
    "SpanProfiler",
    "spans",
    "LEDGER_SCHEMA_VERSION",
    "build_ledger",
    "collapsed_stacks",
    "format_ledger",
    "load_ledger",
    "profile_trials",
    "write_ledger",
    "PerfDiffFormatError",
    "diff_files",
    "format_diff",
    "load_perf_file",
    "build_report",
    "render_markdown",
    "report_to_json",
    "TraceRollup",
    "format_rollup",
    "iter_trace_events",
    "merge_rollups",
    "session_sample_key",
    "session_sampled",
    "NULL_TRACER",
    "NullTracer",
    "SessionTracer",
    "StreamingTracer",
    "Tracer",
    "read_jsonl",
]
