"""Observability: structured tracing, metrics registry, profiling hooks.

The layer is zero-dependency and deterministic: trace timestamps come
from the simulation clock (never wall time), so the same seed yields a
byte-identical JSONL trace; the metrics registry and the (wall-time)
profiling histograms live outside the trace and never influence the
simulation.

Usage::

    from repro import prepare_video, stream
    from repro.obs import Tracer

    tracer = Tracer()
    stream(prepare_video("bbb"), tracer=tracer)
    tracer.write_jsonl("trace.jsonl")
"""

from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_TYPES,
    OPTIONAL_FIELDS,
    SCHEMA_VERSION,
    SchemaError,
    TraceEvent,
)
from repro.obs.invariants import (
    INVARIANTS,
    AuditReport,
    MultiSessionAuditor,
    TraceAuditor,
    Violation,
    audit_events,
    format_report,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
    scoped_registry,
)
from repro.obs.profiling import (
    enable_profiling,
    profiling_enabled,
    timed,
    timing_summary,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SessionTracer,
    Tracer,
    read_jsonl,
)

__all__ = [
    "EVENT_FIELDS",
    "EVENT_TYPES",
    "OPTIONAL_FIELDS",
    "SCHEMA_VERSION",
    "SchemaError",
    "TraceEvent",
    "INVARIANTS",
    "AuditReport",
    "MultiSessionAuditor",
    "TraceAuditor",
    "Violation",
    "audit_events",
    "format_report",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "scoped_registry",
    "enable_profiling",
    "profiling_enabled",
    "timed",
    "timing_summary",
    "NULL_TRACER",
    "NullTracer",
    "SessionTracer",
    "Tracer",
    "read_jsonl",
]
