"""Profiling hooks: wall-time histograms + span-profiler integration.

``timed(name)`` works as a context manager *and* a decorator::

    with timed("decode_segment", subsystem="qoe"):
        decode_segment(...)

    @timed("abr.choose", subsystem="abr")
    def choose(...): ...

Timings go into ``timing.<name>`` histograms (seconds) in the default
:class:`~repro.obs.metrics.MetricsRegistry`, and — when a
:class:`~repro.obs.spans.SpanProfiler` is installed — each block also
opens a span attributed to ``subsystem`` in the cross-layer span tree.
Both hooks are **off** by default: a disabled ``timed`` block reads the
single :mod:`repro.obs.spans` state global and returns.  Timings use
wall time, so they feed only the registry/profiler, never the
(deterministic, simulation-clocked) trace.

``record_span=False`` keeps the histogram but skips the span — used
where a blocking wrapper and its generator core would otherwise open
the same span twice (``QuicConnection.download`` /
``download_iter``).
"""

from __future__ import annotations

import functools
import time
from typing import Optional

from repro.obs import spans as _spans
from repro.obs.metrics import MetricsRegistry, get_registry


def enable_profiling(on: bool = True) -> None:
    """Globally switch the ``timed`` histogram hooks on or off."""
    _spans.set_timers(on)


def profiling_enabled() -> bool:
    return _spans.timers_enabled()


class timed:
    """Time a block or callable into a ``timing.<name>`` histogram."""

    __slots__ = ("name", "registry", "subsystem", "record_span",
                 "_t0", "_timing", "_frame", "_prof")

    def __init__(self, name: str, registry: Optional[MetricsRegistry] = None,
                 subsystem: str = "other", record_span: bool = True):
        self.name = name
        self.registry = registry
        self.subsystem = subsystem
        self.record_span = record_span
        self._t0 = 0.0
        self._timing = False
        self._frame = None
        self._prof = None

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "timed":
        state = _spans._STATE
        if state is None:
            return self
        timers, profiler = state
        if profiler is not None and self.record_span:
            self._prof = profiler
            self._frame = profiler.push(self.name, self.subsystem)
        if timers:
            self._timing = True
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._timing:
            self._timing = False
            registry = self.registry if self.registry is not None \
                else get_registry()
            registry.histogram(f"timing.{self.name}").observe(
                time.perf_counter() - self._t0
            )
        if self._frame is not None:
            self._prof.pop(self._frame)
            self._frame = None
            self._prof = None

    # -- decorator -------------------------------------------------------
    def __call__(self, func):
        name, registry = self.name, self.registry
        subsystem, record_span = self.subsystem, self.record_span

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            state = _spans._STATE
            if state is None:
                return func(*args, **kwargs)
            timers, profiler = state
            frame = profiler.push(name, subsystem) \
                if profiler is not None and record_span else None
            t0 = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                if timers:
                    reg = registry if registry is not None else get_registry()
                    reg.histogram(f"timing.{name}").observe(
                        time.perf_counter() - t0
                    )
                if frame is not None:
                    profiler.pop(frame)

        return wrapper


def timing_summary(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the ``timing.*`` histograms, hottest (by total) first."""
    registry = registry if registry is not None else get_registry()
    entries = registry.histograms(prefix="timing.")
    if not entries:
        return "=== timing === (no samples; enable profiling)"
    entries.sort(key=lambda item: (-item[1].total, item[0]))
    width = max(len(name) for name, _ in entries)
    lines = ["=== timing ==="]
    for name, hist in entries:
        lines.append(
            f"{name:<{width}s}  total={hist.total:>10.6f}s"
            f"  count={hist.count:>8d}"
            f"  mean={hist.mean * 1e6:>10.1f}us"
            f"  max={hist.percentile(100.0) * 1e6:>10.1f}us"
        )
    return "\n".join(lines)
