"""Profiling hooks: wall-time histograms for hot paths.

``timed(name)`` works as a context manager *and* a decorator::

    with timed("decode_segment"):
        decode_segment(...)

    @timed("abr.choose")
    def choose(...): ...

Timings go into ``timing.<name>`` histograms (seconds) in the default
:class:`~repro.obs.metrics.MetricsRegistry`.  Profiling is **off** by
default — a disabled ``timed`` block costs one global read — and uses
wall time, so it feeds only the registry, never the (deterministic,
simulation-clocked) trace.
"""

from __future__ import annotations

import functools
import time
from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry

_ENABLED = False


def enable_profiling(on: bool = True) -> None:
    """Globally switch the ``timed`` hooks on or off."""
    global _ENABLED
    _ENABLED = bool(on)


def profiling_enabled() -> bool:
    return _ENABLED


class timed:
    """Time a block or callable into a ``timing.<name>`` histogram."""

    __slots__ = ("name", "registry", "_t0")

    def __init__(self, name: str, registry: Optional[MetricsRegistry] = None):
        self.name = name
        self.registry = registry
        self._t0 = 0.0

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "timed":
        if _ENABLED:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if _ENABLED:
            registry = self.registry if self.registry is not None \
                else get_registry()
            registry.histogram(f"timing.{self.name}").observe(
                time.perf_counter() - self._t0
            )

    # -- decorator -------------------------------------------------------
    def __call__(self, func):
        name, registry = self.name, self.registry

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _ENABLED:
                return func(*args, **kwargs)
            t0 = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                reg = registry if registry is not None else get_registry()
                reg.histogram(f"timing.{name}").observe(
                    time.perf_counter() - t0
                )

        return wrapper


def timing_summary(registry: Optional[MetricsRegistry] = None) -> str:
    """Render the per-experiment timing histograms (``timing.*``)."""
    registry = registry if registry is not None else get_registry()
    text = registry.render(prefix="timing.")
    lines = text.splitlines()
    if len(lines) <= 1:
        return "=== timing === (no samples; enable profiling)"
    return "\n".join(["=== timing ==="] + lines[1:])
