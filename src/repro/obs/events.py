"""Typed trace events: the schema of the observability layer.

Every event carries the schema version, a monotonically increasing
sequence number, a *simulation-clock* timestamp (never wall time — traces
must be byte-identical across runs of the same seed), a type from the
registry below, and the type's payload fields.

The schema is versioned so traces stay diffable across PRs: adding an
event type or an optional field is backward compatible; renaming or
removing one bumps :data:`SCHEMA_VERSION`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List

SCHEMA_VERSION = 1

# ---------------------------------------------------------------------------
# Event types (session layer)
SESSION_START = "session_start"
SESSION_END = "session_end"
MANIFEST_FETCH = "manifest_fetch"
ABR_DECISION = "abr_decision"
DOWNLOAD_START = "download_start"
DOWNLOAD_END = "download_end"
ABANDON = "abandon"          # restart at another quality, bytes discarded
TRUNCATE = "truncate"        # ABR*-style keep-partial truncation
STALL = "stall"
BUFFER_SAMPLE = "buffer_sample"
SELECTIVE_RETX = "selective_retx"
# Event types (transport / network layer)
TRANSPORT_ROUND = "transport_round"
PACKET_LOSS = "packet_loss"
# Event types (shared-link / multi-client layer)
LINK_STATS = "link_stats"    # lifetime counters of a shared bottleneck
# Event types (fault injection / resilience layer)
FAULT_INJECTED = "fault_injected"      # one planned fault window/point
REQUEST_TIMEOUT = "request_timeout"    # per-request deadline expired
CONNECTION_RESET = "connection_reset"  # injected mid-download reset
RETRY = "retry"                        # backoff + partial-range resume
DEGRADED = "degraded"                  # retry budget exhausted: floor/skip

#: type -> required payload fields.  Emission and parsing both validate
#: against this map, so a trace that round-trips is schema conformant.
EVENT_FIELDS: Dict[str, tuple] = {
    SESSION_START: (
        "video", "abr", "num_segments", "segment_duration",
        "buffer_capacity_s", "backend", "partially_reliable",
    ),
    SESSION_END: (
        "buf_ratio", "total_stall", "startup_delay", "mean_score",
        "segments",
    ),
    MANIFEST_FETCH: ("mode", "bytes", "elapsed"),
    ABR_DECISION: (
        "segment", "quality", "target_bytes", "unreliable", "wait_s",
        "buffer_level_s", "throughput_bps", "expected_score",
    ),
    DOWNLOAD_START: ("segment", "quality", "wire_bytes", "attempt"),
    DOWNLOAD_END: (
        "segment", "quality", "bytes_requested", "bytes_delivered",
        "elapsed", "truncated", "restarts", "lost_bytes", "stall",
    ),
    ABANDON: ("segment", "from_quality", "to_quality", "wasted_bytes"),
    TRUNCATE: ("segment", "quality", "bytes_requested", "wire_bytes"),
    STALL: ("duration", "segment"),
    BUFFER_SAMPLE: ("segment", "level_s", "capacity_s"),
    SELECTIVE_RETX: ("segment", "repaired_bytes", "residual_bytes"),
    TRANSPORT_ROUND: ("round", "rtt", "offered", "dropped", "cwnd"),
    PACKET_LOSS: ("dropped_packets", "lost_bytes", "reliable"),
    LINK_STATS: (
        "offered_packets", "dropped_packets", "delivered_packets", "flows",
    ),
    # Fault injection / resilience.  ``accounted_bytes`` on a failure is
    # the cumulative bytes of the current download chain that will NOT
    # be re-requested (delivered + deliberately-lost); a following
    # ``retry`` must resume at exactly that offset (the retry-accounting
    # invariant).  ``delivered_bytes`` is the usable subset.
    FAULT_INJECTED: ("kind", "start", "duration", "value"),
    REQUEST_TIMEOUT: (
        "segment", "attempt", "elapsed", "accounted_bytes",
        "delivered_bytes",
    ),
    CONNECTION_RESET: (
        "segment", "attempt", "accounted_bytes", "delivered_bytes",
    ),
    RETRY: (
        "segment", "attempt", "backoff_s", "resume_bytes",
        "remaining_bytes",
    ),
    DEGRADED: ("segment", "mode", "attempts", "wasted_bytes"),
}

#: type -> optional payload fields.  Optional fields may be absent (older
#: traces) but nothing outside ``required + optional`` is accepted, so
#: adding one here is a backward-compatible schema extension (no version
#: bump): old parsers never see it as required, new parsers still reject
#: genuinely unknown fields.
OPTIONAL_FIELDS: Dict[str, tuple] = {
    # spec_hash: content hash of the ScenarioSpec a builder-assembled
    # session realizes — keys recorded artifacts to their configuration.
    SESSION_START: ("num_levels", "spec_hash"),
    TRUNCATE: ("reliable_bytes",),
    TRANSPORT_ROUND: ("inflight",),
    # context: "segment" (default when absent), "repair", or "manifest".
    # The retry-accounting invariant only binds segment-context failures;
    # repairs and manifest fetches degrade silently by design.
    REQUEST_TIMEOUT: ("context", "deadline_s"),
    CONNECTION_RESET: ("context", "at"),
    RETRY: ("context",),
    DEGRADED: ("context", "to_quality"),
}

#: Optional fields every event type may carry.  ``session_id`` tags
#: events of multi-client traces with their originating session so
#: auditors can partition one interleaved stream; solo traces omit it
#: entirely (backward compatible, no version bump).
COMMON_OPTIONAL_FIELDS = ("session_id",)

EVENT_TYPES = tuple(sorted(EVENT_FIELDS))

#: Precomputed per-type field sets: validation on the emit hot path is a
#: pair of subset checks against these, with the original list-building
#: diagnostics reconstructed only when a check fails.
_REQUIRED_SETS: Dict[str, frozenset] = {
    type_: frozenset(required) for type_, required in EVENT_FIELDS.items()
}
_ALLOWED_SETS: Dict[str, frozenset] = {
    type_: _REQUIRED_SETS[type_]
    | frozenset(OPTIONAL_FIELDS.get(type_, ()))
    | frozenset(COMMON_OPTIONAL_FIELDS)
    for type_ in EVENT_FIELDS
}

#: (required, allowed) per type in one dict — the emit hot path does a
#: single lookup and two subset checks per event.
CHECK_SETS: Dict[str, tuple] = {
    type_: (_REQUIRED_SETS[type_], _ALLOWED_SETS[type_])
    for type_ in EVENT_FIELDS
}


class SchemaError(ValueError):
    """An event does not conform to the trace schema."""


@dataclass(slots=True)
class TraceEvent:
    """One structured, timestamped observation."""

    seq: int
    t: float  # simulation-clock seconds
    type: str
    fields: Dict[str, object]

    def validate(self) -> None:
        sets = CHECK_SETS.get(self.type)
        if sets is None:
            raise SchemaError(f"unknown event type {self.type!r}")
        keys = self.fields.keys()
        if sets[0] <= keys and keys <= sets[1]:
            return
        self._validate_slow()

    def _validate_slow(self) -> None:
        required = EVENT_FIELDS[self.type]
        missing = [k for k in required if k not in self.fields]
        if missing:
            raise SchemaError(
                f"event {self.type!r} missing fields {missing}"
            )
        optional = OPTIONAL_FIELDS.get(self.type, ())
        extra = [
            k for k in self.fields
            if k not in required and k not in optional
            and k not in COMMON_OPTIONAL_FIELDS
        ]
        if extra:
            raise SchemaError(
                f"event {self.type!r} has unknown fields {extra}"
            )

    def to_json(self) -> str:
        payload = {"v": SCHEMA_VERSION, "seq": self.seq, "t": self.t,
                   "type": self.type}
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"unparseable trace line: {exc}") from None
        if not isinstance(payload, dict):
            raise SchemaError("trace line is not a JSON object")
        version = payload.pop("v", None)
        if version != SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported trace schema version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        try:
            seq = payload.pop("seq")
            t = payload.pop("t")
            type_ = payload.pop("type")
        except KeyError as exc:
            raise SchemaError(f"trace line missing {exc.args[0]!r}") from None
        event = cls(seq=int(seq), t=float(t), type=str(type_),
                    fields=payload)
        event.validate()
        return event


def parse_jsonl(lines: Iterable[str]) -> List[TraceEvent]:
    """Parse (and validate) a JSONL trace."""
    events = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(TraceEvent.from_json(line))
    return events
