"""Cross-layer span profiler: hierarchical spans on two time planes.

A :class:`SpanProfiler` records a tree of named spans (segment →
request → transport round), each attributed to one *subsystem*
(kernel/transport/link/abr/qoe/player/tracing), on two planes at once:

* **sim plane** — span durations measured on the simulation clock.
  Pure function of the scenario: byte-identical across runs and worker
  counts, mergeable like :class:`~repro.obs.rollup.TraceRollup`
  (per-repetition profilers fold in repetition order), and excluded
  wall-time noise, so :meth:`SpanProfiler.to_dict` with
  ``deterministic=True`` is golden-pinnable.
* **wall plane** — self and cumulative wall time per span (and per
  subsystem via :meth:`SpanProfiler.subsystem_table`), the "where does
  the simulator spend its cycles" answer ``repro profile`` renders.

The profiler is **off** by default.  Instrumented components capture
:func:`current` once at construction (the same pattern the metrics
registry uses), so a disabled span site costs one attribute read; the
``timed()`` hooks read the single module-global :data:`_STATE` per
call.  Install a profiler *before* building the stack (the experiment
runner does this per repetition) so every layer records into it.

Wall self-time is exact for strictly nested spans — the solo-session
execution mode every ``repro profile`` run uses.  Interleaved
multi-session kernels keep working (the span stack unwinds
defensively) but attribute wall time to whichever session's span is
innermost; profile one session at a time for exact numbers.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

#: Version of the serialized span-tree layout.
SPANS_VERSION = 1

#: The cross-layer subsystems wall time is attributed to.
SUBSYSTEMS = (
    "kernel", "transport", "link", "abr", "qoe", "player", "tracing",
    "other",
)

# Module state, folded into one global so the off path costs a single
# read: None when both the timing histograms and the span profiler are
# off, else the tuple (timers_enabled, profiler_or_None).
_TIMERS = False
_PROFILER: Optional["SpanProfiler"] = None
_STATE: Optional[Tuple[bool, Optional["SpanProfiler"]]] = None


def _recompute_state() -> None:
    global _STATE
    if not _TIMERS and _PROFILER is None:
        _STATE = None
    else:
        _STATE = (_TIMERS, _PROFILER)


def set_timers(on: bool = True) -> None:
    """Switch the ``timed()`` histogram hooks on or off."""
    global _TIMERS
    _TIMERS = bool(on)
    _recompute_state()


def timers_enabled() -> bool:
    return _TIMERS


def current() -> Optional["SpanProfiler"]:
    """The installed span profiler, or None when span profiling is off."""
    state = _STATE
    return state[1] if state is not None else None


def install(profiler: Optional["SpanProfiler"]) -> Optional["SpanProfiler"]:
    """Install ``profiler`` as the process-wide profiler (None = off).

    Returns the previously installed profiler so callers can restore
    it; prefer the :func:`profiled` context manager.
    """
    global _PROFILER
    previous = _PROFILER
    _PROFILER = profiler
    _recompute_state()
    return previous


@contextmanager
def profiled(clock=None) -> Iterator["SpanProfiler"]:
    """Run a block under a fresh installed :class:`SpanProfiler`."""
    profiler = SpanProfiler(clock=clock)
    previous = install(profiler)
    try:
        yield profiler
    finally:
        profiler.finalize()
        install(previous)


class SpanNode:
    """One node of the span tree: aggregates of every visit to a path."""

    __slots__ = (
        "name", "subsystem", "count", "sim_s", "wall_s", "self_wall_s",
        "children",
    )

    def __init__(self, name: str, subsystem: str = "other"):
        self.name = name
        self.subsystem = subsystem
        self.count = 0
        self.sim_s = 0.0
        self.wall_s = 0.0
        self.self_wall_s = 0.0
        self.children: Dict[str, "SpanNode"] = {}


class SpanProfiler:
    """Hierarchical sim-clock + wall-clock span recorder.

    Spans open with :meth:`push` (returning a frame handle) and close
    with :meth:`pop`.  Closing a handle unwinds any spans left open
    above it, so error paths (transport faults, aborted generators)
    cannot corrupt the stack.  Generator code may hold a span open
    across ``yield``s: the sim plane charges the simulated time that
    passed (that is the *point* — a transport round's span covers its
    RTT), and the wall plane charges whatever computation ran, which is
    exact while one session drives the process (the profile mode).
    """

    def __init__(self, clock=None):
        self._clock = clock
        self._root = SpanNode("", "other")
        self._stack: List[list] = []

    # -- recording ------------------------------------------------------
    def bind_clock(self, clock) -> None:
        """Source sim-plane timestamps from ``clock`` from now on."""
        self._clock = clock

    def push(self, name: str, subsystem: str = "other") -> list:
        """Open a span under the innermost open span; returns its frame."""
        stack = self._stack
        parent = stack[-1][0] if stack else self._root
        node = parent.children.get(name)
        if node is None:
            node = parent.children[name] = SpanNode(name, subsystem)
        clock = self._clock
        frame = [
            node,
            time.perf_counter(),
            0.0,  # wall seconds spent in closed children
            clock.now if clock is not None else None,
        ]
        stack.append(frame)
        return frame

    def _close(self, frame: list) -> None:
        node, t0, child_wall, sim0 = frame
        wall = time.perf_counter() - t0
        node.count += 1
        node.wall_s += wall
        self_wall = wall - child_wall
        if self_wall > 0.0:
            node.self_wall_s += self_wall
        if sim0 is not None and self._clock is not None:
            node.sim_s += self._clock.now - sim0
        if self._stack:
            self._stack[-1][2] += wall

    def pop(self, handle: Optional[list] = None) -> None:
        """Close a span.

        With no ``handle``, closes the innermost open span.  With one,
        unwinds (closing) every span opened above it, then closes it —
        and is a safe no-op if the handle is not on this profiler's
        stack (a stale frame from an already-finalized scope).
        """
        stack = self._stack
        if not stack:
            return
        if handle is None or stack[-1] is handle:
            self._close(stack.pop())
            return
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is handle:
                while len(stack) > i:
                    self._close(stack.pop())
                return

    @contextmanager
    def span(self, name: str, subsystem: str = "other") -> Iterator[None]:
        frame = self.push(name, subsystem)
        try:
            yield
        finally:
            self.pop(frame)

    def add_flat(self, name: str, subsystem: str, wall_s: float,
                 count: int = 1) -> None:
        """Accumulate a top-level leaf outside the span stack.

        The kernel's dispatch overhead is metered this way: the event
        loop cannot hold a stack span open across a callback (the
        callback resumes processes that open and close their own
        spans), so it measures its pre-callback heap work and adds it
        here.  Flat nodes carry no sim time.
        """
        node = self._root.children.get(name)
        if node is None:
            node = self._root.children[name] = SpanNode(name, subsystem)
        node.count += count
        node.wall_s += wall_s
        node.self_wall_s += wall_s

    def finalize(self) -> None:
        """Close every span still open (aborted runs, error paths)."""
        while self._stack:
            self._close(self._stack.pop())

    # -- aggregates -----------------------------------------------------
    @property
    def total_wall_s(self) -> float:
        """Wall seconds covered by top-level spans."""
        return sum(c.wall_s for c in self._root.children.values())

    @property
    def total_sim_s(self) -> float:
        """Simulated seconds covered by top-level spans."""
        return sum(c.sim_s for c in self._root.children.values())

    @property
    def total_spans(self) -> int:
        total = 0
        for node, _ in self._walk():
            total += node.count
        return total

    @property
    def node_count(self) -> int:
        return sum(1 for _ in self._walk())

    def _walk(self) -> Iterator[Tuple[SpanNode, Tuple[str, ...]]]:
        def visit(node: SpanNode, path: Tuple[str, ...]):
            path = path + (node.name,)
            yield node, path
            for child in node.children.values():
                yield from visit(child, path)

        for child in self._root.children.values():
            yield from visit(child, ())

    def subsystem_table(self) -> Dict[str, Dict[str, float]]:
        """Per-subsystem self/cumulative attribution.

        ``self_wall_s`` partitions the profiled wall time (every span's
        self time counts toward its own subsystem exactly once);
        ``wall_s`` is cumulative — a node's whole duration counts when
        no ancestor already belongs to the same subsystem, so nested
        same-subsystem spans are not double-counted.
        """
        table: Dict[str, Dict[str, float]] = {}

        def visit(node: SpanNode, seen: frozenset) -> None:
            entry = table.get(node.subsystem)
            if entry is None:
                entry = table[node.subsystem] = {
                    "self_wall_s": 0.0, "wall_s": 0.0, "sim_s": 0.0,
                    "count": 0,
                }
            entry["self_wall_s"] += node.self_wall_s
            entry["count"] += node.count
            if node.subsystem not in seen:
                entry["wall_s"] += node.wall_s
                entry["sim_s"] += node.sim_s
                seen = seen | {node.subsystem}
            for child in node.children.values():
                visit(child, seen)

        for child in self._root.children.values():
            visit(child, frozenset())
        return dict(sorted(table.items()))

    def hotspots(self, top: int = 12) -> List[Dict[str, object]]:
        """The ``top`` spans by self wall time (semicolon-joined paths)."""
        rows = [
            {
                "path": ";".join(path),
                "subsystem": node.subsystem,
                "count": node.count,
                "self_wall_s": node.self_wall_s,
                "wall_s": node.wall_s,
                "sim_s": node.sim_s,
            }
            for node, path in self._walk()
        ]
        rows.sort(key=lambda r: (-r["self_wall_s"], r["path"]))
        return rows[:top]

    def collapsed(self) -> str:
        """Collapsed-stack export (speedscope / flamegraph compatible).

        One line per span path, ``a;b;c <self-microseconds>`` — the
        format ``flamegraph.pl`` and speedscope's importer both read.
        """
        lines = []
        for node, path in self._walk():
            micros = int(round(node.self_wall_s * 1e6))
            if micros > 0:
                lines.append(";".join(path) + f" {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- merge / serialize ---------------------------------------------
    def merge(self, other: "SpanProfiler") -> None:
        """Fold another profiler's tree in (matching paths add)."""
        self._merge_node(self._root, other._root)

    def merge_dict(self, state: Dict) -> None:
        """Fold a serialized tree in (forked-worker results)."""
        self.merge(SpanProfiler.from_dict(state))

    @staticmethod
    def _merge_node(dst: SpanNode, src: SpanNode) -> None:
        dst.count += src.count
        dst.sim_s += src.sim_s
        dst.wall_s += src.wall_s
        dst.self_wall_s += src.self_wall_s
        for name, child in src.children.items():
            mine = dst.children.get(name)
            if mine is None:
                mine = dst.children[name] = SpanNode(name, child.subsystem)
            SpanProfiler._merge_node(mine, child)

    def _node_dict(self, node: SpanNode, deterministic: bool) -> Dict:
        out: Dict[str, object] = {
            "subsystem": node.subsystem,
            "count": node.count,
            "sim_s": node.sim_s,
        }
        if not deterministic:
            out["wall_s"] = node.wall_s
            out["self_wall_s"] = node.self_wall_s
        if node.children:
            out["children"] = {
                name: self._node_dict(node.children[name], deterministic)
                for name in sorted(node.children)
            }
        return out

    def to_dict(self, deterministic: bool = False) -> Dict:
        """JSON-ready span tree.

        ``deterministic=True`` drops every wall-time field, leaving the
        sim plane (names, subsystems, counts, sim seconds) — the view
        that is byte-identical across runs and worker counts and safe
        to hash or golden-pin.
        """
        return {
            "spans_version": SPANS_VERSION,
            "tree": self._node_dict(self._root, deterministic),
        }

    @classmethod
    def from_dict(cls, state: Dict) -> "SpanProfiler":
        version = state.get("spans_version")
        if version != SPANS_VERSION:
            raise ValueError(
                f"unsupported span-tree version {version!r} "
                f"(expected {SPANS_VERSION})"
            )
        profiler = cls()

        def build(data: Dict, node: SpanNode) -> None:
            node.subsystem = data.get("subsystem", "other")
            node.count = int(data.get("count", 0))
            node.sim_s = float(data.get("sim_s", 0.0))
            node.wall_s = float(data.get("wall_s", 0.0))
            node.self_wall_s = float(data.get("self_wall_s", 0.0))
            for name, child in data.get("children", {}).items():
                node.children[name] = SpanNode(name)
                build(child, node.children[name])

        build(state["tree"], profiler._root)
        return profiler

    def tree_hash(self) -> str:
        """sha256 of the canonical deterministic (sim-plane) tree."""
        text = json.dumps(
            self.to_dict(deterministic=True),
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


__all__ = [
    "SPANS_VERSION",
    "SUBSYSTEMS",
    "SpanNode",
    "SpanProfiler",
    "current",
    "install",
    "profiled",
    "set_timers",
    "timers_enabled",
]
