"""Streaming trace rollups: memory-bounded fleet aggregation.

A :class:`TraceRollup` consumes trace events one at a time — as a tracer
observer during a live run, or from :func:`iter_trace_events` over a
JSONL file — and keeps only bounded state: per-event-type counters and
reservoir histograms of the QoE-bearing quantities (stall durations,
session stall totals, mean scores, bufRatio, startup delay).  Below the
:data:`~repro.obs.metrics.HISTOGRAM_RESERVOIR` threshold the percentiles
are exact; past it the fixed-seed reservoir keeps them deterministic
estimates.  Per-session throughput rates feed a streaming Jain index.

Fleet sampling is head-based and hash-keyed: whether a session is kept
depends only on ``(sample_seed, session_id)``, never on arrival order or
worker partitioning, so the sampled set — and therefore the rollup — is
byte-identical at any worker count.  Rollups serialize via
:meth:`TraceRollup.to_dict` and fold together with :meth:`merge`, which
is how sweep and chaos workers ship per-cell rollups across fork
boundaries for a deterministic fleet-wide aggregate.
"""

from __future__ import annotations

import hashlib
from typing import Dict, IO, Iterable, Iterator, List, Optional, Union

from repro.obs import events as ev
from repro.obs.events import SchemaError, TraceEvent
from repro.obs.metrics import HISTOGRAM_RESERVOIR, Histogram

ROLLUP_VERSION = 1

#: Distribution names tracked by every rollup, in render order.
DISTRIBUTIONS = (
    "stall_seconds",      # per-stall-event duration
    "session_stall_s",    # per-session total stall
    "qoe_score",          # per-session mean SSIM
    "buf_ratio",          # per-session stall/media ratio
    "startup_delay_s",    # per-session startup delay
)

#: Event types the aggregator branches on; everything else only counts.
#: One membership test short-circuits the dispatch chain on the hot path.
_TRACKED_TYPES = frozenset(
    (ev.STALL, ev.DOWNLOAD_END, ev.SESSION_START, ev.SESSION_END)
)


# ---------------------------------------------------------------------------
# Streaming JSONL reader (shared by rollup, report, and ``repro trace``).
# ---------------------------------------------------------------------------
def iter_trace_events(
    source: Union[str, IO[str], Iterable[str]],
) -> Iterator[TraceEvent]:
    """Yield events from a JSONL trace one line at a time, O(1) memory.

    ``source`` is a path, open file object, or iterable of lines.  Blank
    lines are skipped.  A malformed line raises :class:`SchemaError`
    naming the 1-based line number, so CLI error messages can point at
    the exact spot in a multi-gigabyte trace.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from _iter_lines(handle)
        return
    yield from _iter_lines(source)


def _iter_lines(lines: Iterable[str]) -> Iterator[TraceEvent]:
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            yield TraceEvent.from_json(line)
        except SchemaError as exc:
            raise SchemaError(f"line {number}: {exc}") from None


# ---------------------------------------------------------------------------
# Deterministic head sampling.
# ---------------------------------------------------------------------------
def session_sample_key(session_id: str, seed: int = 0) -> float:
    """Deterministic uniform key in [0, 1) from ``(seed, session_id)``.

    A seeded hash rather than an RNG stream: the decision for a session
    is a pure function of its identity, independent of how many other
    sessions were seen first or which worker processed it.
    """
    digest = hashlib.sha256(
        f"rollup:{seed}:{session_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def session_sampled(
    session_id: str, sample_rate: float, seed: int = 0
) -> bool:
    """Whether ``session_id`` is in the sampled set at ``sample_rate``."""
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    return session_sample_key(session_id, seed) < sample_rate


# ---------------------------------------------------------------------------
# The rollup aggregator.
# ---------------------------------------------------------------------------
class TraceRollup:
    """Streaming aggregator over a trace event stream.

    Feed it events (``tracer.add_observer(rollup.feed)`` or any loop
    over :func:`iter_trace_events`); read :meth:`summary` at the end.
    State is bounded: counters, five reservoir histograms, one cached
    sampling decision per session, and one throughput rate per finished
    session (for Jain's index).
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        sample_seed: int = 0,
        reservoir: int = HISTOGRAM_RESERVOIR,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample rate {sample_rate} out of [0, 1]")
        self.sample_rate = float(sample_rate)
        self.sample_seed = int(sample_seed)
        self.events_seen = 0        # every event offered
        self.events = 0             # events from sampled sessions
        self.sessions_seen = 0
        self.sessions_sampled = 0
        self.event_counts: Dict[str, int] = {}
        self._hists = {name: Histogram(reservoir) for name in DISTRIBUTIONS}
        self._included: Dict[object, bool] = {}
        self._live: Dict[object, List[float]] = {}  # sid -> [start_t, bytes]
        self._rates: List[float] = []

    # ------------------------------------------------------------------
    def feed(self, event: TraceEvent) -> None:
        """Consume one event (tracer-observer signature)."""
        self.events_seen += 1
        fields = event.fields
        sid = fields.get("session_id")
        if sid is not None:
            included = self._included.get(sid)
            if included is None:
                self.sessions_seen += 1
                included = session_sampled(
                    sid, self.sample_rate, self.sample_seed
                )
                self._included[sid] = included
                if included:
                    self.sessions_sampled += 1
            if not included:
                return
        self.events += 1
        counts = self.event_counts
        type_ = event.type
        try:
            counts[type_] += 1
        except KeyError:
            counts[type_] = 1
        if type_ not in _TRACKED_TYPES:
            return
        if type_ == ev.STALL:
            self._hists["stall_seconds"].observe(float(fields["duration"]))
        elif type_ == ev.DOWNLOAD_END:
            live = self._live.get(sid)
            if live is not None:
                live[1] += float(fields["bytes_delivered"])
        elif type_ == ev.SESSION_START:
            if sid is None:
                # Solo traces carry no session_id; count the session via
                # its start event so fleet and solo summaries agree.
                self.sessions_seen += 1
                self.sessions_sampled += 1
            self._live[sid] = [event.t, 0.0]
        elif type_ == ev.SESSION_END:
            self._hists["session_stall_s"].observe(
                float(fields["total_stall"])
            )
            self._hists["qoe_score"].observe(float(fields["mean_score"]))
            self._hists["buf_ratio"].observe(float(fields["buf_ratio"]))
            self._hists["startup_delay_s"].observe(
                float(fields["startup_delay"])
            )
            live = self._live.pop(sid, None)
            if live is not None:
                wall = event.t - live[0]
                rate = live[1] * 8.0 / wall / 1e6 if wall > 0 else 0.0
                self._rates.append(rate)

    # ------------------------------------------------------------------
    @property
    def jain_index(self) -> float:
        """Jain fairness over per-session delivered throughput (Mbit/s)."""
        rates = self._rates
        if not rates:
            return 1.0
        total = sum(rates)
        square = sum(r * r for r in rates)
        if total == 0.0 or square == 0.0:
            return 1.0
        return total * total / (len(rates) * square)

    def percentile(self, distribution: str, q: float) -> float:
        """Nearest-rank percentile of one tracked distribution."""
        if distribution not in self._hists:
            raise KeyError(
                f"unknown distribution {distribution!r}; tracked: "
                f"{', '.join(DISTRIBUTIONS)}"
            )
        return self._hists[distribution].percentile(q)

    def summary(self) -> Dict[str, object]:
        """Deterministic snapshot: counters, tails, fairness."""
        out: Dict[str, object] = {
            "rollup_version": ROLLUP_VERSION,
            "sample_rate": self.sample_rate,
            "sample_seed": self.sample_seed,
            "events_seen": self.events_seen,
            "events": self.events,
            "sessions_seen": self.sessions_seen,
            "sessions_sampled": self.sessions_sampled,
            "event_counts": dict(sorted(self.event_counts.items())),
        }
        for name in DISTRIBUTIONS:
            out[name] = _distribution(self._hists[name])
        out["jain_index"] = self.jain_index
        return out

    # ------------------------------------------------------------------
    def merge(self, other: "TraceRollup") -> None:
        """Fold another rollup's state in (same sampling parameters)."""
        if (other.sample_rate, other.sample_seed) != (
            self.sample_rate, self.sample_seed,
        ):
            raise ValueError(
                "cannot merge rollups with different sampling parameters"
            )
        self.events_seen += other.events_seen
        self.events += other.events
        self.sessions_seen += other.sessions_seen
        self.sessions_sampled += other.sessions_sampled
        for type_, count in other.event_counts.items():
            self.event_counts[type_] = (
                self.event_counts.get(type_, 0) + count
            )
        for name in DISTRIBUTIONS:
            self._hists[name].merge(other._hists[name])
        self._rates.extend(other._rates)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready state for shipping across process boundaries."""
        return {
            "rollup_version": ROLLUP_VERSION,
            "sample_rate": self.sample_rate,
            "sample_seed": self.sample_seed,
            "events_seen": self.events_seen,
            "events": self.events,
            "sessions_seen": self.sessions_seen,
            "sessions_sampled": self.sessions_sampled,
            "event_counts": dict(sorted(self.event_counts.items())),
            "hists": {
                name: self._hists[name].state_dict()
                for name in DISTRIBUTIONS
            },
            "rates": list(self._rates),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceRollup":
        """Rebuild a rollup from :meth:`to_dict` output."""
        version = data.get("rollup_version")
        if version != ROLLUP_VERSION:
            raise ValueError(f"unsupported rollup version {version!r}")
        rollup = cls(
            sample_rate=float(data["sample_rate"]),
            sample_seed=int(data["sample_seed"]),
        )
        rollup.events_seen = int(data["events_seen"])
        rollup.events = int(data["events"])
        rollup.sessions_seen = int(data["sessions_seen"])
        rollup.sessions_sampled = int(data["sessions_sampled"])
        rollup.event_counts = {
            str(k): int(v) for k, v in data["event_counts"].items()
        }
        rollup._hists = {
            name: Histogram.from_state(state)
            for name, state in data["hists"].items()
        }
        rollup._rates = [float(r) for r in data["rates"]]
        return rollup


def merge_rollups(dicts: Iterable[Dict[str, object]]) -> TraceRollup:
    """Fold serialized rollups (in iteration order) into one aggregate."""
    combined: Optional[TraceRollup] = None
    for data in dicts:
        rollup = TraceRollup.from_dict(data)
        if combined is None:
            combined = rollup
        else:
            combined.merge(rollup)
    return combined if combined is not None else TraceRollup()


def _distribution(hist: Histogram) -> Dict[str, float]:
    """count/sum/mean plus the tail percentiles the fleet view needs."""
    return {
        "count": float(hist.count),
        "sum": hist.total,
        "mean": hist.mean,
        "p50": hist.percentile(50),
        "p90": hist.percentile(90),
        "p99": hist.percentile(99),
        "p999": hist.percentile(99.9),
    }


def format_rollup(summary: Dict[str, object]) -> str:
    """Human-readable fleet rollup block."""
    lines = ["=== fleet rollup ==="]
    lines.append(
        f"events {summary['events']}/{summary['events_seen']} aggregated, "
        f"sessions {summary['sessions_sampled']}/{summary['sessions_seen']} "
        f"sampled (rate {summary['sample_rate']:g}, "
        f"seed {summary['sample_seed']})"
    )
    labels = (
        ("stall_seconds", "stall event s"),
        ("session_stall_s", "session stall s"),
        ("qoe_score", "QoE score"),
        ("buf_ratio", "bufRatio"),
        ("startup_delay_s", "startup s"),
    )
    for name, label in labels:
        dist = summary[name]
        lines.append(
            f"{label:16s} n={dist['count']:g} mean={dist['mean']:.4g} "
            f"p50={dist['p50']:.4g} p99={dist['p99']:.4g} "
            f"p99.9={dist['p999']:.4g}"
        )
    lines.append(f"jain index {summary['jain_index']:.4f}")
    return "\n".join(lines)
