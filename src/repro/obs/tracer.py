"""Session tracer: a ring buffer of structured events with JSONL export.

Two implementations share one interface:

* :class:`Tracer` — records events; timestamps come from the simulation
  :class:`~repro.network.clock.Clock` the session binds, so a seeded run
  replays to a byte-identical trace.
* :class:`NullTracer` — the default; every operation is a no-op.  Call
  sites guard event construction with ``if tracer.enabled:`` so disabled
  tracing costs one attribute read per site.
"""

from __future__ import annotations

from collections import deque
from typing import IO, Callable, Iterable, Iterator, List, Optional, Union

from repro.network.clock import Clock
from repro.obs.events import CHECK_SETS as _CHECK_SETS
from repro.obs.events import TraceEvent, parse_jsonl
from repro.obs.spans import current as _current_profiler

DEFAULT_CAPACITY = 262_144

#: Slot-direct event allocation for the emit hot paths: skips the
#: dataclass ``__init__`` call (the four stores below are the entire
#: constructor body).
_EVENT_NEW = object.__new__


class NullTracer:
    """No-op tracer: keeps the instrumented call sites branch-cheap."""

    enabled = False

    def bind_clock(self, clock: Clock) -> None:
        pass

    def add_observer(self, observer) -> None:
        pass

    def emit(self, type_: str, **fields) -> None:
        pass

    def emit_at(self, t: float, type_: str, **fields) -> None:
        pass

    def emit_fields(self, t, type_: str, fields) -> None:
        pass

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def write_jsonl(self, destination) -> int:
        return 0


#: Shared no-op instance (the tracer has no state, one suffices).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects typed events in a bounded ring buffer.

    Args:
        clock: simulation clock supplying timestamps.  The streaming
            session rebinds its own clock via :meth:`bind_clock`.
        capacity: ring-buffer size; the oldest events are dropped once
            exceeded (``dropped`` counts them).
        validate: check each event against the schema on emission
            (cheap; disable only in micro-benchmarks).
        observers: callables invoked with every emitted event *before*
            it can be evicted from the ring buffer — how the inline
            invariant auditor sees the full stream of a long session.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Clock] = None,
        capacity: int = DEFAULT_CAPACITY,
        validate: bool = True,
        observers: Optional[Iterable[Callable[[TraceEvent], None]]] = None,
    ):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.clock = clock
        self.capacity = capacity
        self.validate = validate
        self.dropped = 0
        self._seq = 0
        self._buffer: deque = deque(maxlen=capacity)
        self._observers: List[Callable[[TraceEvent], None]] = list(
            observers or ()
        )
        self._prof = _current_profiler()

    def add_observer(self, observer: Callable[[TraceEvent], None]) -> None:
        """Subscribe ``observer`` to every subsequently emitted event."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    def bind_clock(self, clock: Clock) -> None:
        """Use ``clock`` for timestamps from now on."""
        self.clock = clock

    def emit(self, type_: str, **fields) -> TraceEvent:
        """Record one event, stamped with the current simulation time."""
        return self.emit_fields(None, type_, fields)

    def emit_at(self, t: float, type_: str, **fields) -> TraceEvent:
        """Record one event with an explicit simulation timestamp.

        Event-driven components (the packet backend) report the event
        loop's time, which runs ahead of the session clock mid-download.
        """
        return self.emit_fields(t, type_, fields)

    def emit_fields(self, t, type_: str, fields) -> TraceEvent:
        """Record one event taking ownership of an already-built dict.

        The single internal emission path: ``emit``/``emit_at`` and the
        per-session wrapper all funnel here, so one payload dict is built
        per event regardless of how many wrappers the call went through.
        ``t=None`` stamps the current simulation time.
        """
        if t is None:
            clock = self.clock
            t = clock.now if clock is not None else 0.0
        prof = self._prof
        frame = prof.push("tracing.emit", "tracing") \
            if prof is not None else None
        event = _EVENT_NEW(TraceEvent)
        event.seq = self._seq
        event.t = t
        event.type = type_
        event.fields = fields
        if self.validate:
            # Inlined schema check (one lookup, two subset tests); the
            # method call reconstructs full diagnostics on any failure.
            sets = _CHECK_SETS.get(type_)
            keys = fields.keys()
            if sets is None or not (sets[0] <= keys <= sets[1]):
                event.validate()
        self._seq += 1
        buffer = self._buffer
        if len(buffer) == self.capacity:
            self.dropped += 1
        buffer.append(event)
        for observer in self._observers:
            observer(event)
        if frame is not None:
            prof.pop(frame)
        return event

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)

    def select(self, type_: str) -> List[TraceEvent]:
        return [e for e in self._buffer if e.type == type_]

    def clear(self) -> None:
        self._buffer.clear()
        self._seq = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The whole buffer as JSONL (one event per line)."""
        return "\n".join(e.to_json() for e in self._buffer)

    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write the buffer to a path or file object; returns event count."""
        text = self.to_jsonl()
        if text:
            text += "\n"
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(text)
        return len(self._buffer)


class StreamingTracer:
    """A tracer that dispatches to observers without buffering events.

    The fleet-scale record path: sessions emit through the usual tracer
    interface, every event reaches the observers (rollups, attributors,
    auditors), and nothing is retained — memory stays O(1) in trace
    length.  ``events`` is always empty and ``write_jsonl`` writes
    nothing; use :class:`Tracer` when the raw stream itself is wanted.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Clock] = None,
        validate: bool = True,
        observers: Optional[Iterable[Callable[[TraceEvent], None]]] = None,
    ):
        self.clock = clock
        self.validate = validate
        self.dropped = 0
        self._seq = 0
        self._observers: List[Callable[[TraceEvent], None]] = list(
            observers or ()
        )
        self._prof = _current_profiler()

    def add_observer(self, observer: Callable[[TraceEvent], None]) -> None:
        """Subscribe ``observer`` to every subsequently emitted event."""
        self._observers.append(observer)

    def bind_clock(self, clock: Clock) -> None:
        """Use ``clock`` for timestamps from now on."""
        self.clock = clock

    def emit(self, type_: str, **fields) -> TraceEvent:
        return self.emit_fields(None, type_, fields)

    def emit_at(self, t: float, type_: str, **fields) -> TraceEvent:
        return self.emit_fields(t, type_, fields)

    def emit_fields(self, t, type_: str, fields) -> TraceEvent:
        if t is None:
            clock = self.clock
            t = clock.now if clock is not None else 0.0
        prof = self._prof
        frame = prof.push("tracing.emit", "tracing") \
            if prof is not None else None
        event = _EVENT_NEW(TraceEvent)
        event.seq = self._seq
        event.t = t
        event.type = type_
        event.fields = fields
        if self.validate:
            sets = _CHECK_SETS.get(type_)
            keys = fields.keys()
            if sets is None or not (sets[0] <= keys <= sets[1]):
                event.validate()
        self._seq += 1
        for observer in self._observers:
            observer(event)
        if frame is not None:
            prof.pop(frame)
        return event

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def write_jsonl(self, destination) -> int:
        return 0


class SessionTracer:
    """A per-session view onto a shared :class:`Tracer`.

    Multi-client runs record every session into one tracer (one globally
    ordered stream, one seq space); each session gets a ``SessionTracer``
    that stamps its ``session_id`` onto everything it emits, so auditors
    and analyses can partition the interleaved stream afterwards.
    """

    def __init__(self, tracer, session_id: str):
        self._tracer = tracer
        self.session_id = session_id
        # Bound forward target: one attribute hop less per emission.
        self._forward = tracer.emit_fields

    @property
    def enabled(self) -> bool:
        return self._tracer.enabled

    def bind_clock(self, clock: Clock) -> None:
        self._tracer.bind_clock(clock)

    def add_observer(self, observer) -> None:
        self._tracer.add_observer(observer)

    def emit(self, type_: str, **fields):
        fields.setdefault("session_id", self.session_id)
        return self._forward(None, type_, fields)

    def emit_at(self, t: float, type_: str, **fields):
        fields.setdefault("session_id", self.session_id)
        return self._forward(t, type_, fields)

    def emit_fields(self, t, type_: str, fields):
        fields.setdefault("session_id", self.session_id)
        return self._forward(t, type_, fields)

    @property
    def events(self) -> List[TraceEvent]:
        return self._tracer.events

    def __len__(self) -> int:
        return len(self._tracer)

    def write_jsonl(self, destination) -> int:
        return self._tracer.write_jsonl(destination)


def read_jsonl(source: Union[str, IO[str], Iterable[str]]) -> List[TraceEvent]:
    """Read a JSONL trace from a path, file object, or iterable of lines."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_jsonl(handle)
    return parse_jsonl(source)
