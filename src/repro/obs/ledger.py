"""Perf ledger: the artifact a ``repro profile`` run emits.

A ledger is the JSON summary of one profiled workload: per-subsystem
self/cumulative wall-time attribution, simulated-seconds-per-wall-second
throughput, top-N hotspots, the full span tree, and a ``deterministic``
block (sim-plane tree + sha256) that is byte-identical across runs and
worker counts — wall-time fields never enter the hashed view.

Builders here; the regression-attribution consumer lives in
:mod:`repro.obs.diff`.  The collapsed-stack export
(:func:`collapsed_stacks`) renders ``a;b;c <self-microseconds>`` lines,
the format both ``flamegraph.pl`` and speedscope import.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List, Optional, Tuple

from repro.obs import spans
from repro.obs.spans import SpanProfiler

LEDGER_SCHEMA_VERSION = 1


def profile_trials(
    config,
    prepared=None,
    workers: int = 1,
):
    """Run a scenario's repetitions under a fresh span profiler.

    Returns ``(profiler, summary, wall_s)`` — the folded profiler (rep
    trees merged in repetition order by the runner), the
    :class:`~repro.experiments.runner.TrialSummary`, and the run's wall
    time.  The video is prepared before the wall clock starts, so the
    ledger's throughput figure measures simulation, not one-time
    offline analysis.
    """
    from repro.experiments.runner import run_trials

    if prepared is None:
        from repro.prep.prepare import get_prepared

        prepared = get_prepared(config.video)
    profiler = SpanProfiler()
    previous = spans.install(profiler)
    t0 = time.perf_counter()
    try:
        summary = run_trials(config, prepared=prepared, workers=workers)
    finally:
        profiler.finalize()
        spans.install(previous)
    wall_s = max(time.perf_counter() - t0, 1e-9)
    return profiler, summary, wall_s


def build_ledger(
    profiler: SpanProfiler,
    wall_s: float,
    label: str = "",
    spec: Optional[Dict] = None,
    spec_hash: Optional[str] = None,
    top: int = 12,
    meta: bool = True,
) -> Dict:
    """Assemble the ledger dict from a folded profiler.

    ``wall_s`` is the whole run's wall time (span bookkeeping included),
    so subsystem shares are reported against the time actually covered
    by spans, and throughput against the run.
    """
    table = profiler.subsystem_table()
    total_self = sum(e["self_wall_s"] for e in table.values())
    subsystems = {}
    for name, entry in table.items():
        subsystems[name] = {
            "self_wall_s": entry["self_wall_s"],
            "self_pct": (
                100.0 * entry["self_wall_s"] / total_self
                if total_self > 0 else 0.0
            ),
            "wall_s": entry["wall_s"],
            "sim_s": entry["sim_s"],
            "count": entry["count"],
        }
    sim_s = profiler.total_sim_s
    ledger = {
        "ledger_version": LEDGER_SCHEMA_VERSION,
        "label": label,
        "spec": spec,
        "spec_hash": spec_hash,
        "wall_s": wall_s,
        "sim_s": sim_s,
        "sim_s_per_wall_s": sim_s / wall_s if wall_s > 0 else 0.0,
        "spans": profiler.total_spans,
        "span_nodes": profiler.node_count,
        "subsystems": subsystems,
        "hotspots": profiler.hotspots(top),
        "tree": profiler.to_dict(),
        "deterministic": {
            "tree": profiler.to_dict(deterministic=True),
            "hash": profiler.tree_hash(),
        },
    }
    if meta:
        from repro.obs.bench import _git_sha

        ledger["meta"] = {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "git_sha": _git_sha(),
        }
    return ledger


def write_ledger(path: str, ledger: Dict) -> None:
    from repro.ioutil import atomic_write_json

    atomic_write_json(path, ledger)


def load_ledger(path: str) -> Dict:
    """Load and sanity-check a ledger file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a perf ledger (expected an object)")
    version = payload.get("ledger_version")
    if version != LEDGER_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported ledger_version {version!r} "
            f"(expected {LEDGER_SCHEMA_VERSION})"
        )
    for key in ("wall_s", "subsystems"):
        if key not in payload:
            raise ValueError(f"{path}: ledger is missing {key!r}")
    return payload


def collapsed_stacks(ledger: Dict) -> str:
    """Collapsed-stack export from a ledger's span tree.

    One ``path;to;span <self-microseconds>`` line per tree node with
    nonzero self time — directly consumable by speedscope or
    ``flamegraph.pl``.
    """
    lines: List[str] = []

    def visit(name: str, node: Dict, path: Tuple[str, ...]) -> None:
        path = path + (name,)
        micros = int(round(float(node.get("self_wall_s", 0.0)) * 1e6))
        if micros > 0:
            lines.append(";".join(path) + f" {micros}")
        for child_name in sorted(node.get("children", {})):
            visit(child_name, node["children"][child_name], path)

    root = ledger.get("tree", {}).get("tree", {})
    for child_name in sorted(root.get("children", {})):
        visit(child_name, root["children"][child_name], ())
    return "\n".join(lines) + ("\n" if lines else "")


def format_ledger(ledger: Dict, top: int = 10) -> str:
    """Human-readable ledger: subsystem table + hotspots + throughput."""
    lines = ["=== perf ledger ==="]
    if ledger.get("label"):
        lines.append(f"workload      {ledger['label']}")
    if ledger.get("spec_hash"):
        lines.append(f"spec_hash     {ledger['spec_hash']}")
    wall = float(ledger.get("wall_s", 0.0))
    sim = float(ledger.get("sim_s", 0.0))
    lines.append(f"wall time     {wall:.3f} s")
    lines.append(f"sim time      {sim:.3f} s")
    lines.append(
        f"throughput    {float(ledger.get('sim_s_per_wall_s', 0.0)):.1f} "
        "sim-seconds per wall-second"
    )
    lines.append(
        f"spans         {ledger.get('spans', 0)} "
        f"({ledger.get('span_nodes', 0)} tree nodes)"
    )
    det = ledger.get("deterministic", {})
    if det.get("hash"):
        lines.append(f"tree sha256   {det['hash']}")
    lines.append("")
    lines.append("--- subsystems (self time) ---")
    header = (
        f"{'subsystem':<12s} {'self':>10s} {'self%':>7s} "
        f"{'cumulative':>11s} {'sim':>10s} {'count':>10s}"
    )
    lines.append(header)
    table = ledger.get("subsystems", {})
    for name in sorted(
        table, key=lambda n: (-table[n]["self_wall_s"], n)
    ):
        entry = table[name]
        lines.append(
            f"{name:<12s} {entry['self_wall_s']:>9.4f}s "
            f"{entry['self_pct']:>6.1f}% {entry['wall_s']:>10.4f}s "
            f"{entry['sim_s']:>9.2f}s {entry['count']:>10d}"
        )
    hotspots = ledger.get("hotspots", [])
    if hotspots:
        lines.append("")
        lines.append(f"--- hotspots (top {min(top, len(hotspots))}) ---")
        for spot in hotspots[:top]:
            lines.append(
                f"{spot['self_wall_s']:>9.4f}s  {spot['count']:>9d}x  "
                f"[{spot['subsystem']}] {spot['path']}"
            )
    return "\n".join(lines)


__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "build_ledger",
    "collapsed_stacks",
    "format_ledger",
    "load_ledger",
    "profile_trials",
    "write_ledger",
]
