"""Analytic QoE model: encoding distortion + loss propagation.

This module replaces FFmpeg's ``ssim`` filter (and the VMAF/PSNR tools)
with an analytic model that maps *what was delivered* to a per-frame and
per-segment quality score.  Two distortion sources combine:

**Encoding distortion.**  The paper scores every stream against the Q12
(4K) encode as the pristine reference, so Q12 without loss is SSIM 1.0 by
construction and lower ladder rungs pay a rate-distortion penalty::

    d_enc(segment, q) = c_seg * ((R_top / R_q) ** eta - 1)

with ``c_seg`` growing with the segment's spatial/temporal activity.  The
constants are calibrated against Fig. 1d: most Q9 segments score below
0.99 while static segments stay above, and Q6 lands around 0.88-0.98.

**Loss distortion.**  A frame missing entirely is concealed by repeating
the previous decoded frame; its error grows with the *accumulated motion*
since that frame (so consecutive drops — e.g. naive tail-only drops — hurt
super-linearly, the effect behind Fig. 2b).  A partially delivered frame
is zero-padded and error-concealed, costing a fraction of a full drop.
Errors propagate through the prediction graph: a frame referencing a
damaged frame inherits ``weight * decay`` of its error, transitively.

All scores are all-component-SSIM-like values in [0, 1].  VMAF and PSNR
are monotone reparameterizations of the same underlying distortion
(:mod:`repro.qoe.metrics`), which is what makes VOXEL "QoE-metric
agnostic" in this reproduction, matching §5.2/Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.video.encoder import EncodedSegment
from repro.video.frames import FrameType, SegmentFrames


@dataclass(frozen=True)
class QoEParams:
    """Tunable constants of the analytic QoE model.

    The defaults are calibrated so the §3 insights reproduce: at Q12 the
    median segment of the canonical videos tolerates 10-20 % frame drops
    at SSIM 0.99; tolerance shrinks at Q9/0.99 and recovers at Q9/0.95.
    """

    # Encoding rate-distortion: d = c_seg * ((R_top/R)**eta - 1).
    # The sub-linear exponent keeps the bottom of the ladder plausible
    # (Q0 at 144p scores ~0.8 against the 4K reference, not ~0.3) while
    # still putting most Q9 segments below 0.99 (Fig. 1d).
    rd_eta: float = 0.45
    rd_base: float = 0.002
    rd_activity: float = 0.060

    # Loss model.
    freeze_cost: float = 0.16  # distortion per unit accumulated motion
    freeze_cap: float = 0.85  # a frozen frame can't be worse than this
    corrupt_cost: float = 0.30  # full-payload corruption vs full drop
    propagation_decay: float = 0.75  # per-hop error attenuation
    max_frame_distortion: float = 0.95

    def encoding_distortion(self, activity: float, rate_ratio: float) -> float:
        """Distortion of a loss-free segment at ``R_top / R_q == rate_ratio``."""
        c_seg = self.rd_base + self.rd_activity * activity
        return c_seg * (rate_ratio ** self.rd_eta - 1.0)


DEFAULT_PARAMS = QoEParams()


class _SegmentDecodeContext:
    """Precomputed arrays for fast repeated decode simulation.

    Decoding the same segment with hundreds of different delivered-frame
    subsets dominates the offline analysis, so the reference graph is
    flattened into numpy-friendly arrays once per segment.
    """

    __slots__ = (
        "n",
        "motion",
        "payload",
        "sizes",
        "depth_groups",
        "ref_idx_padded",
        "ref_w_padded",
    )

    def __init__(self, frames: SegmentFrames):
        self.n = len(frames)
        self.motion = np.array([frame.motion for frame in frames], dtype=float)
        self.sizes = np.array([frame.size for frame in frames], dtype=np.int64)
        self.payload = np.array(
            [frame.payload_bytes for frame in frames], dtype=np.int64
        )

        # Pad each frame's reference list to a fixed width so propagation
        # can gather with one fancy-index per dependency *depth level*.
        # Padding entries point at frame 0 with weight 0 (harmless: they
        # contribute nothing).
        max_refs = max(
            (len(frame.references) for frame in frames), default=0
        )
        width = max(max_refs, 1)
        self.ref_idx_padded = np.zeros((self.n, width), dtype=np.intp)
        self.ref_w_padded = np.zeros((self.n, width), dtype=float)
        depth = np.zeros(self.n, dtype=np.intp)
        for frame in frames:
            for slot, (ref, weight) in enumerate(frame.references):
                self.ref_idx_padded[frame.index, slot] = ref
                self.ref_w_padded[frame.index, slot] = weight

        # Dependency depth = longest reference chain below the frame.
        # Frames at the same depth have no references among each other,
        # so each depth level propagates as one vectorized step.
        order = list(reversed(frames._topological_order()))  # referees first
        for idx in order:
            refs = frames[idx].references
            if refs:
                depth[idx] = 1 + max(depth[ref] for ref, _ in refs)
        # Propagation plan: one step per dependency depth, in depth order.
        # Small groups (the sequential P-frame chain) run as scalar Python
        # steps — cheaper than a vectorized gather for 1-4 frames — while
        # wide groups (the B-frame layers) run as one einsum each.
        self.depth_groups = []
        if self.n > 1 and depth.max() > 0:
            for level in range(1, int(depth.max()) + 1):
                group = np.flatnonzero(depth == level)
                if len(group) == 0:
                    continue
                if len(group) <= 4:
                    scalars = [
                        (int(idx), [(int(r), float(w))
                                    for r, w in frames[int(idx)].references])
                        for idx in group
                    ]
                    self.depth_groups.append(("s", scalars))
                else:
                    self.depth_groups.append(("v", group))


_CONTEXT_CACHE: Dict[int, _SegmentDecodeContext] = {}


def _context(frames: SegmentFrames) -> _SegmentDecodeContext:
    key = id(frames)
    ctx = _CONTEXT_CACHE.get(key)
    if ctx is None:
        ctx = _SegmentDecodeContext(frames)
        # Bound the cache: segments are cached library-wide anyway, but we
        # guard against unbounded growth from ad-hoc segments in tests.
        if len(_CONTEXT_CACHE) > 20000:
            _CONTEXT_CACHE.clear()
        _CONTEXT_CACHE[key] = ctx
    return ctx


@dataclass
class DecodeResult:
    """Outcome of decoding a (possibly incomplete) segment.

    Attributes:
        frame_scores: SSIM-like score per frame in display order.
        score: segment score (mean over frames), the paper's per-segment
            "SSIM score".
        delivered_frames: number of frames whose payload arrived in full.
        distortion: mean total distortion (1 - score before clipping).
    """

    frame_scores: np.ndarray
    score: float
    delivered_frames: int
    distortion: float


def decode_segment(
    segment: EncodedSegment,
    params: QoEParams = DEFAULT_PARAMS,
    dropped: Optional[Iterable[int]] = None,
    corruption: Optional[Dict[int, float]] = None,
    rate_ratio: Optional[float] = None,
) -> DecodeResult:
    """Simulate decoding a segment with the given losses.

    Args:
        segment: the coded segment.
        params: model constants.
        dropped: display indices of frames whose payload is entirely
            missing (their headers arrived, so the decoder knows to
            conceal them by repeating the previous frame).
        corruption: map display index -> fraction of the frame payload
            lost in transit (zero-padded before decode).  Values are
            clipped to [0, 1]; a fraction of 1.0 equals a full drop.
        rate_ratio: ``R_top / R_q`` for the encoding-distortion term.  If
            omitted it is derived from the segment's quality level and
            ladder position assuming the Tab. 2 ladder.

    Returns:
        The per-frame and segment scores.
    """
    ctx = _context(segment.frames)
    n = ctx.n

    if rate_ratio is None:
        rate_ratio = _default_rate_ratio(segment)
    d_enc = params.encoding_distortion(segment.content.activity, rate_ratio)

    dropped_mask = np.zeros(n, dtype=bool)
    if dropped is not None:
        for idx in dropped:
            if idx == 0:
                raise ValueError("the I-frame (frame 0) can never be dropped")
            dropped_mask[idx] = True

    corrupt_frac = np.zeros(n, dtype=float)
    if corruption:
        for idx, frac in corruption.items():
            if dropped_mask[idx]:
                continue
            corrupt_frac[idx] = min(max(frac, 0.0), 1.0)

    error = _decode_errors(ctx, dropped_mask, corrupt_frac, params)
    frame_scores = np.clip(1.0 - d_enc - error, 0.0, 1.0)
    score = float(frame_scores.mean())
    return DecodeResult(
        frame_scores=frame_scores,
        score=score,
        delivered_frames=int(n - dropped_mask.sum()),
        distortion=float((d_enc + error).mean()),
    )


def _decode_errors(
    ctx: _SegmentDecodeContext,
    dropped: np.ndarray,
    corrupt_frac: np.ndarray,
    params: QoEParams,
) -> np.ndarray:
    """Per-frame decode error from drops, corruption, and propagation."""
    n = ctx.n
    error = np.zeros(n, dtype=float)
    any_drop = bool(dropped.any())

    # Freeze error for dropped frames: accumulated motion since the last
    # delivered frame (display order), capped.  Frame 0 (I) is never
    # dropped, so every run of drops has a delivered left edge; the
    # accumulated motion of a run is a cumsum reset at delivered frames.
    if any_drop:
        masked = np.where(dropped, ctx.motion, 0.0)
        running = np.cumsum(masked)
        # Value of the cumsum at the most recent delivered frame.
        at_delivered = np.where(dropped, -np.inf, running)
        base = np.maximum.accumulate(at_delivered)
        gap = running - base
        error = np.where(
            dropped,
            np.minimum(params.freeze_cost * gap, params.freeze_cap),
            0.0,
        )

    # Corruption error for zero-padded partial frames.
    if corrupt_frac.any():
        error = error + np.where(
            dropped, 0.0, corrupt_frac * (params.corrupt_cost * ctx.motion)
        )

    if not error.any():
        return error

    # Propagate through the prediction DAG, one dependency depth level at
    # a time (frames at the same depth never reference each other).
    decay = params.propagation_decay
    cap = params.max_frame_distortion
    for kind, group in ctx.depth_groups:
        if kind == "s":
            # A dropped frame keeps its freeze error; only delivered
            # frames inherit decode errors from damaged references.
            for idx, refs in group:
                if dropped[idx]:
                    continue
                inherited = 0.0
                for ref, weight in refs:
                    inherited += weight * error[ref]
                if inherited:
                    error[idx] = min(error[idx] + decay * inherited, cap)
            continue
        inherited = np.einsum(
            "ij,ij->i",
            ctx.ref_w_padded[group],
            error[ctx.ref_idx_padded[group]],
        )
        if not inherited.any():
            continue
        updated = np.minimum(error[group] + decay * inherited, cap)
        error[group] = np.where(dropped[group], error[group], updated)
    return error


def decode_segment_scalar(
    segment: EncodedSegment,
    params: QoEParams = DEFAULT_PARAMS,
    dropped: Optional[Iterable[int]] = None,
    corruption: Optional[Dict[int, float]] = None,
    rate_ratio: Optional[float] = None,
) -> DecodeResult:
    """Pure-Python reference decode, bit-identical to :func:`decode_segment`.

    Every arithmetic step mirrors the vectorized pipeline in evaluation
    order (same parenthesization, same sequential accumulation the numpy
    kernels use), so the property tests can require exact equality rather
    than tolerances.  Only the final mean reductions go through numpy —
    they are reductions over the already-compared per-frame values.
    """
    frames = segment.frames
    n = len(frames)
    if rate_ratio is None:
        rate_ratio = _default_rate_ratio(segment)
    d_enc = params.encoding_distortion(segment.content.activity, rate_ratio)

    dropped_set = set()
    if dropped is not None:
        for idx in dropped:
            if idx == 0:
                raise ValueError("the I-frame (frame 0) can never be dropped")
            dropped_set.add(idx)

    corrupt = [0.0] * n
    if corruption:
        for idx, frac in corruption.items():
            if idx in dropped_set:
                continue
            corrupt[idx] = min(max(frac, 0.0), 1.0)

    motion = [frame.motion for frame in frames]
    error = [0.0] * n

    # Freeze error: cumulative dropped motion since the last delivered
    # frame (the cumsum-reset the vector path expresses with a running
    # maximum over delivered checkpoints).
    if dropped_set:
        running = 0.0
        base = float("-inf")
        for i in range(n):
            if i in dropped_set:
                running = running + motion[i]
                gap = running - base
                error[i] = min(params.freeze_cost * gap, params.freeze_cap)
            elif running > base:
                base = running

    if any(corrupt):
        for i in range(n):
            if i not in dropped_set:
                error[i] = error[i] + corrupt[i] * (
                    params.corrupt_cost * motion[i]
                )

    if any(error):
        # Dependency depth per frame (longest reference chain), then one
        # propagation pass per depth level — the same plan the vector
        # path precomputes, including its small-group skip rule.
        depth = [0] * n
        for idx in reversed(frames._topological_order()):
            refs = frames[idx].references
            if refs:
                depth[idx] = 1 + max(depth[ref] for ref, _ in refs)
        decay = params.propagation_decay
        cap = params.max_frame_distortion
        for level in range(1, max(depth) + 1):
            group = [i for i in range(n) if depth[i] == level]
            if len(group) <= 4:
                for idx in group:
                    if idx in dropped_set:
                        continue
                    inherited = 0.0
                    for ref, weight in frames[idx].references:
                        inherited += weight * error[ref]
                    if inherited:
                        error[idx] = min(error[idx] + decay * inherited, cap)
                continue
            inherited_by: Dict[int, float] = {}
            for idx in group:
                total = 0.0
                for ref, weight in frames[idx].references:
                    total += weight * error[ref]
                inherited_by[idx] = total
            if not any(inherited_by.values()):
                continue
            for idx in group:
                if idx in dropped_set:
                    continue
                error[idx] = min(
                    error[idx] + decay * inherited_by[idx], cap
                )

    frame_scores = np.array(
        [min(max(1.0 - d_enc - e, 0.0), 1.0) for e in error], dtype=float
    )
    return DecodeResult(
        frame_scores=frame_scores,
        score=float(frame_scores.mean()),
        delivered_frames=n - len(dropped_set),
        distortion=float(np.array(
            [d_enc + e for e in error], dtype=float
        ).mean()),
    )


_RATE_RATIO_CACHE: Dict[int, float] = {}


def _default_rate_ratio(segment: EncodedSegment) -> float:
    """R_top / R_q from the Tab. 2 ladder for the segment's level.

    The default ladder is a module constant, so the ratio per quality
    level is computed once instead of rebuilding the ladder per decode.
    """
    ratio = _RATE_RATIO_CACHE.get(segment.quality)
    if ratio is None:
        from repro.video.ladder import default_ladder

        ladder = default_ladder()
        top = ladder[-1].avg_bitrate_mbps
        ratio = top / ladder[segment.quality].avg_bitrate_mbps
        _RATE_RATIO_CACHE[segment.quality] = ratio
    return ratio


def pristine_score(
    segment: EncodedSegment,
    params: QoEParams = DEFAULT_PARAMS,
    rate_ratio: Optional[float] = None,
) -> float:
    """Loss-free segment score — pure encoding distortion."""
    if rate_ratio is None:
        rate_ratio = _default_rate_ratio(segment)
    d_enc = params.encoding_distortion(segment.content.activity, rate_ratio)
    return float(np.clip(1.0 - d_enc, 0.0, 1.0))
