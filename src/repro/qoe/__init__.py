"""QoE substrate: analytic SSIM/VMAF/PSNR with loss propagation."""

from repro.qoe.metrics import METRICS, PSNR, SSIM, VMAF, QoEMetric, get_metric
from repro.qoe.model import (
    DEFAULT_PARAMS,
    DecodeResult,
    QoEParams,
    decode_segment,
    pristine_score,
)

__all__ = [
    "METRICS",
    "PSNR",
    "SSIM",
    "VMAF",
    "QoEMetric",
    "get_metric",
    "DEFAULT_PARAMS",
    "DecodeResult",
    "QoEParams",
    "decode_segment",
    "pristine_score",
]
