"""QoE metric front-ends: SSIM, VMAF, PSNR.

The decode simulation (:mod:`repro.qoe.model`) produces an SSIM-like score
in [0, 1].  VMAF and PSNR are exposed as monotone reparameterizations of
that score, mirroring the paper's observation that VOXEL's machinery is
QoE-metric agnostic: the manifest's quality map, ABR* utility, and all
reported statistics can be computed in any of the three scales.

The mappings are calibrated to familiar operating points: SSIM 0.99 ~
VMAF ~93 / PSNR ~42 dB ("excellent"), SSIM 0.95 ~ VMAF ~80 ("good"),
SSIM 0.90 ~ VMAF ~65.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict


@dataclass(frozen=True)
class QoEMetric:
    """A QoE metric expressed as a transform of the model's SSIM score.

    Attributes:
        name: metric identifier ("ssim", "vmaf", "psnr").
        lo: value of the metric at SSIM 0 (worst).
        hi: value at SSIM 1 (best / pristine).
    """

    name: str
    lo: float
    hi: float
    _from_ssim: Callable[[float], float]

    def from_ssim(self, ssim: float) -> float:
        """Convert a model SSIM score into this metric's scale."""
        return self._from_ssim(min(max(ssim, 0.0), 1.0))

    def normalize(self, value: float) -> float:
        """Map a metric value into [0, 1] (1 = pristine)."""
        if self.hi == self.lo:
            return 1.0
        return min(max((value - self.lo) / (self.hi - self.lo), 0.0), 1.0)

    def excellent_threshold(self) -> float:
        """The metric value corresponding to SSIM 0.99 (imperceptible)."""
        return self.from_ssim(0.99)


def _vmaf_from_ssim(ssim: float) -> float:
    # Smooth monotone map: pristine -> 100, heavily damaged -> 0.
    # Exponent chosen so SSIM 0.99 ~ 93 and SSIM 0.95 ~ 80.
    return 100.0 * max(0.0, 1.0 - (1.0 - ssim) ** 0.78 * 2.5)


def _psnr_from_ssim(ssim: float) -> float:
    # Treat (1 - ssim) as a proxy MSE fraction of the dynamic range,
    # scaled so SSIM 0.99 maps to ~42 dB and SSIM 0.5 to ~25 dB.
    mse = max(1.0 - ssim, 1e-6) * 0.006
    return 10.0 * math.log10(1.0 / mse)


SSIM = QoEMetric("ssim", lo=0.0, hi=1.0, _from_ssim=lambda s: s)
VMAF = QoEMetric("vmaf", lo=0.0, hi=100.0, _from_ssim=_vmaf_from_ssim)
PSNR = QoEMetric(
    "psnr", lo=_psnr_from_ssim(0.0), hi=_psnr_from_ssim(1.0),
    _from_ssim=_psnr_from_ssim,
)

METRICS: Dict[str, QoEMetric] = {m.name: m for m in (SSIM, VMAF, PSNR)}


def get_metric(name: str) -> QoEMetric:
    """Look up a metric by name (case-insensitive)."""
    try:
        return METRICS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown QoE metric {name!r}; known: {', '.join(sorted(METRICS))}"
        ) from None
