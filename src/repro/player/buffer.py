"""Playback buffer accounting.

The buffer holds downloaded-but-unplayed media, measured in seconds.
Playback drains it in real time; a new segment download may only start
when there is room for the whole segment (§5: "a new segment download can
start only if the buffer is not full").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class PlaybackBuffer:
    """Seconds-denominated playback buffer.

    Attributes:
        capacity_s: maximum media the buffer may hold.
        level_s: media currently buffered.
        played_s: total media played out so far.
    """

    capacity_s: float
    level_s: float = 0.0
    played_s: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_s <= 0:
            raise ValueError("buffer capacity must be positive")

    @property
    def free_s(self) -> float:
        return max(self.capacity_s - self.level_s, 0.0)

    def room_for(self, duration_s: float) -> bool:
        """Whether a segment of ``duration_s`` fits right now."""
        return self.level_s + duration_s <= self.capacity_s + 1e-9

    def time_until_room(self, duration_s: float) -> float:
        """Playback time needed before a segment of ``duration_s`` fits."""
        overhang = self.level_s + duration_s - self.capacity_s
        return max(overhang, 0.0)

    def drain(self, dt: float) -> float:
        """Play for ``dt`` seconds; returns the stall time incurred.

        If the buffer runs dry before ``dt`` elapses, the remainder is a
        stall (playback frozen while the wall clock keeps running).
        """
        if dt < 0:
            raise ValueError(f"cannot drain {dt} seconds")
        played = min(self.level_s, dt)
        self.level_s -= played
        self.played_s += played
        return dt - played

    def push_segment(self, duration_s: float) -> None:
        """Append a downloaded segment."""
        if duration_s < 0:
            raise ValueError("segment duration must be non-negative")
        self.level_s += duration_s

    def media_time(self) -> float:
        """Playhead position in media time."""
        return self.played_s
