"""Playback client: buffer, streaming session, metrics."""

from repro.player.buffer import PlaybackBuffer
from repro.player.live import LiveMetrics, LiveStreamingSession, stream_live
from repro.player.metrics import (
    SegmentRecord,
    SessionMetrics,
    percentile_across,
    stderr_across,
)
from repro.player.session import SessionConfig, StreamingSession

__all__ = [
    "PlaybackBuffer",
    "LiveMetrics",
    "LiveStreamingSession",
    "stream_live",
    "SegmentRecord",
    "SessionMetrics",
    "percentile_across",
    "stderr_across",
    "SessionConfig",
    "StreamingSession",
]
