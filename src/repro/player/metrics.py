"""Per-session streaming metrics (the quantities the paper reports).

* ``bufRatio`` — total stall time divided by the video duration (§5.1).
* average bitrate — mean delivered bits per second of media.
* per-segment QoE scores (SSIM by default; VMAF/PSNR derivable).
* data skipped — payload bytes deliberately not downloaded (Fig. 7d).
* residual loss — unreliable-stream bytes never repaired (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(slots=True)
class SegmentRecord:
    """Everything measured about one streamed segment."""

    index: int
    quality: int
    target_bytes: Optional[int]
    bytes_requested: int
    bytes_delivered: int
    total_bytes: int  # full size of the chosen-quality segment
    download_time: float
    stall_time: float
    score: float  # model SSIM after losses/repairs
    pristine_score: float  # score had the segment arrived complete
    skipped_frame_count: int
    dropped_referenced_frames: int
    corruption_frames: int
    lost_bytes: int  # bytes lost on the unreliable stream (pre-repair)
    repaired_bytes: int
    residual_loss_bytes: int
    restarts: int  # abandon-and-restart count
    truncated: bool  # ABR*-style keep-partial truncation happened
    wasted_bytes: int  # discarded by restarts
    segment_duration: float = 4.0  # seconds of media this segment covers
    retries: int = 0  # timeout/reset retries spent on this segment
    degraded: str = ""  # "", "floor", or "skip" (budget exhausted)

    @property
    def delivered_bitrate_bps(self) -> float:
        return self.bytes_delivered * 8.0 / self.segment_duration

    @property
    def skipped_bytes(self) -> int:
        return max(self.total_bytes - self.bytes_requested, 0)


@dataclass
class SessionMetrics:
    """Aggregate metrics of one streaming session."""

    video: str
    abr: str
    records: List[SegmentRecord]
    startup_delay: float
    total_stall: float
    media_duration: float
    wall_duration: float
    segment_duration: float = 4.0
    # Resilience counters.  ``resilience`` flags whether the session ran
    # with the fault/retry machinery active; when False the counters are
    # structurally zero and :meth:`summary` omits them entirely, keeping
    # no-fault outputs byte-identical to pre-resilience behaviour.
    resilience: bool = False
    faults_injected: int = 0
    request_timeouts: int = 0
    connection_resets: int = 0
    retries: int = 0
    degraded_segments: int = 0
    backoff_s: float = 0.0

    @property
    def buf_ratio(self) -> float:
        """Stall time over video duration (the paper's bufRatio)."""
        if self.media_duration <= 0:
            return 0.0
        return self.total_stall / self.media_duration

    @property
    def scores(self) -> np.ndarray:
        return np.array([r.score for r in self.records])

    @property
    def mean_ssim(self) -> float:
        return float(self.scores.mean()) if self.records else 0.0

    @property
    def median_ssim(self) -> float:
        return float(np.median(self.scores)) if self.records else 0.0

    @property
    def avg_bitrate_kbps(self) -> float:
        """Mean delivered segment bitrate in kbit/s."""
        if not self.records:
            return 0.0
        rates = [r.delivered_bitrate_bps for r in self.records]
        return float(np.mean(rates)) / 1e3

    @property
    def avg_nominal_bitrate_kbps(self) -> float:
        """Mean full-size bitrate of the chosen quality levels."""
        if not self.records:
            return 0.0
        rates = [
            r.total_bytes * 8.0 / r.segment_duration for r in self.records
        ]
        return float(np.mean(rates)) / 1e3

    @property
    def data_skipped_fraction(self) -> float:
        """Fraction of chosen-quality bytes deliberately not fetched."""
        total = sum(r.total_bytes for r in self.records)
        if total == 0:
            return 0.0
        return sum(r.skipped_bytes for r in self.records) / total

    @property
    def residual_loss_fraction(self) -> float:
        """Unrepaired lost bytes over requested bytes."""
        requested = sum(r.bytes_requested for r in self.records)
        if requested == 0:
            return 0.0
        return sum(r.residual_loss_bytes for r in self.records) / requested

    @property
    def quality_switches(self) -> int:
        return sum(
            1
            for a, b in zip(self.records, self.records[1:])
            if a.quality != b.quality
        )

    @property
    def perceptible_artifact_rate(self) -> float:
        """Fraction of segments visibly below their pristine score.

        Frame drops/corruption that cost less than 0.02 SSIM are treated
        as imperceptible (the whole premise of §3); anything bigger is a
        visible artifact.
        """
        if not self.records:
            return 0.0
        visible = sum(
            1
            for r in self.records
            if r.pristine_score - r.score > 0.02
        )
        return visible / len(self.records)

    @property
    def segments_with_drops(self) -> int:
        return sum(
            1
            for r in self.records
            if r.skipped_frame_count > 0 or r.corruption_frames > 0
        )

    def score_cdf(self) -> np.ndarray:
        """Sorted per-segment scores (for CDF plots like Fig. 9)."""
        return np.sort(self.scores)

    def summary(self) -> Dict[str, float]:
        data = {
            "buf_ratio": self.buf_ratio,
            "startup_delay": self.startup_delay,
            "mean_ssim": self.mean_ssim,
            "median_ssim": self.median_ssim,
            "avg_bitrate_kbps": self.avg_bitrate_kbps,
            "data_skipped": self.data_skipped_fraction,
            "residual_loss": self.residual_loss_fraction,
            "switches": float(self.quality_switches),
            "perceptible_artifact_rate": self.perceptible_artifact_rate,
            "segments_with_drops": float(self.segments_with_drops),
            "wall_duration": self.wall_duration,
        }
        if self.resilience:
            data["faults_injected"] = float(self.faults_injected)
            data["request_timeouts"] = float(self.request_timeouts)
            data["connection_resets"] = float(self.connection_resets)
            data["retries"] = float(self.retries)
            data["degraded_segments"] = float(self.degraded_segments)
            data["backoff_s"] = self.backoff_s
        return data


def percentile_across(
    sessions: Sequence[SessionMetrics], attribute: str, q: float
) -> float:
    """Percentile of a scalar metric across sessions (e.g. 90th bufRatio)."""
    values = [getattr(session, attribute) for session in sessions]
    if not values:
        return 0.0
    return float(np.percentile(values, q))


def stderr_across(sessions: Sequence[SessionMetrics], attribute: str) -> float:
    """Standard error of a scalar metric across sessions."""
    values = np.array([getattr(session, attribute) for session in sessions])
    if len(values) < 2:
        return 0.0
    return float(values.std(ddof=1) / np.sqrt(len(values)))
