"""The streaming session: player main loop tying all layers together.

A session streams one prepared video through an ABR algorithm over a
QUIC(*) connection across an emulated bottleneck.  It reproduces the
paper's client behaviour:

* a new segment download starts only when the playback buffer has room
  (one in-flight segment on top of the configured buffer, §5),
* downloads run with a live control hook so the ABR can abandon
  (restart lower — BOLA/BETA) or truncate-and-keep (ABR*),
* buffer-full idle periods are used for selective retransmission of
  bytes lost on unreliable streams (§4.2), provided the buffer stays
  healthy,
* every delivered segment is scored by decoding it against the
  server-side ground truth with the exact losses that occurred.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.abr.base import (
    ABRAlgorithm,
    ControlVerb,
    Decision,
    DecisionContext,
    DownloadProgress,
    safe_throughput,
)
from repro.network.clock import Clock
from repro.network.events import drive
from repro.network.link import BottleneckLink
from repro.network.traces import NetworkTrace
from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.profiling import timed
from repro.obs.spans import current as _current_profiler
from repro.obs.tracer import NULL_TRACER, SessionTracer
from repro.player.buffer import PlaybackBuffer
from repro.player.metrics import SegmentRecord, SessionMetrics
from repro.prep.prepare import PreparedVideo
from repro.qoe.metrics import SSIM, QoEMetric
from repro.qoe.model import decode_segment
from repro.transport.backends import make_backend
from repro.transport.base import RetryBudgetExhausted, TransportFault
from repro.transport.http import SegmentDelivery, VoxelHttp
from repro.transport.resilience import (
    RetryContext,
    RetryPolicy,
    resilient_download_iter,
)


@dataclass
class SessionConfig:
    """Knobs of one streaming experiment configuration (§5)."""

    buffer_segments: int = 3
    partially_reliable: bool = True  # QUIC* (True) vs plain QUIC (False)
    server_voxel_aware: bool = True
    client_voxel_aware: bool = True
    force_reliable_payload: bool = False  # the "VOXEL rel" ablation (§D)
    selective_retransmission: bool = True
    retx_buffer_threshold: float = 0.5  # min buffer fill to keep repairing
    queue_packets: Optional[int] = 32
    base_rtt: float = 0.060
    metric: QoEMetric = SSIM
    # Transport simulation backend: "round" is the fast per-RTT model
    # used for all sweeps; "packet" is the event-driven per-packet
    # backend (orders of magnitude slower) used to validate it.
    transport_backend: str = "round"  # "round" | "packet"
    # Manifest fetch at session start (§4.1).  "full" downloads the whole
    # (large, VOXEL-enriched) manifest before playback; "incremental"
    # models DASH's MPD-update feature — only a small window of metadata
    # gates startup, mitigating the enriched manifest's size; "free"
    # ignores manifest cost (the default for pure-ABR comparisons, where
    # both systems would pay the same).
    manifest_fetch: str = "free"  # "free" | "incremental" | "full"
    manifest_window_segments: int = 4
    # Resilience.  ``fault_plan`` is a realized
    # :class:`~repro.faults.plan.FaultPlan` (built by the StackBuilder
    # from the scenario's FaultSpec); the retry knobs govern the client's
    # deadline/backoff policy.  The resilience machinery activates only
    # when a plan or a deadline is configured — otherwise the session
    # takes the exact legacy code paths (byte-identical output).
    request_timeout_s: Optional[float] = None
    retry_budget: int = 3
    retry_backoff_s: float = 0.5
    fault_plan: Optional[object] = None

    def buffer_capacity_s(self, segment_duration: float) -> float:
        return self.buffer_segments * segment_duration


@dataclass(slots=True)
class _PendingRepair:
    record: SegmentRecord
    delivery: SegmentDelivery
    quality: int
    index: int


class StreamingSession:
    """Streams one video once; :meth:`run` returns the session metrics."""

    def __init__(
        self,
        prepared: PreparedVideo,
        abr: ABRAlgorithm,
        trace: NetworkTrace,
        config: Optional[SessionConfig] = None,
        cross_demand: Optional[NetworkTrace] = None,
        link: Optional[BottleneckLink] = None,
        tracer=None,
        clock: Optional[Clock] = None,
        session_id: Optional[str] = None,
        scheduler=None,
        router=None,
        spec_hash: Optional[str] = None,
    ):
        self.prepared = prepared
        self.abr = abr
        self.config = config if config is not None else SessionConfig()
        # Multi-client runs hand every session the kernel's clock (the
        # single clock-advancing authority); solo runs own a private one.
        self.clock = clock if clock is not None else Clock()
        self.session_id = session_id
        # Content hash of the ScenarioSpec this session realizes (set by
        # the StackBuilder); stamped into the trace header so recorded
        # artifacts are traceable to their exact configuration.
        self.spec_hash = spec_hash
        tracer = tracer if tracer is not None else NULL_TRACER
        if session_id is not None and tracer.enabled:
            tracer = SessionTracer(tracer, session_id)
        self.tracer = tracer
        self.tracer.bind_clock(self.clock)
        # Span profiler, captured at construction like the registry
        # counters (install the profiler before building the stack).
        # The session supplies the sim plane: spans opened from here on
        # are timestamped on this session's clock.
        self._prof = _current_profiler()
        if self._prof is not None:
            self._prof.bind_clock(self.clock)
        # The transport substrate comes from the backend registry; the
        # link/scheduler/router pass-throughs let multi-client runs share
        # one bottleneck (and one event loop) across sessions.
        stack = make_backend(
            self.config.transport_backend,
            config=self.config,
            clock=self.clock,
            trace=trace,
            cross_demand=cross_demand,
            tracer=self.tracer,
            link=link,
            scheduler=scheduler,
            router=router,
        )
        self.link = stack.link
        self.connection = stack.connection
        self.scheduler = stack.scheduler
        self.http = VoxelHttp(
            self.connection,
            server_voxel_aware=self.config.server_voxel_aware,
            client_voxel_aware=self.config.client_voxel_aware,
        )
        manifest = prepared.manifest
        if not self.http.voxel_capable:
            manifest = manifest.basic_view()
        self.manifest = manifest

        seg_dur = prepared.video.segment_duration
        self.segment_duration = seg_dur
        self.buffer = PlaybackBuffer(
            capacity_s=self.config.buffer_capacity_s(seg_dur)
        )
        self.abr.setup(self.manifest, self.buffer.capacity_s)
        self._throughput_samples: List[float] = []
        # Cache of the harmonic-mean throughput estimate: samples only
        # change when a download completes, but the estimate is read on
        # every progress round and every repair-budget calculation.
        self._tp_cache: Optional[float] = None
        self._pending_repairs: List[_PendingRepair] = []
        self._resilience = (
            self.config.fault_plan is not None
            or self.config.request_timeout_s is not None
        )
        self._retry_policy: Optional[RetryPolicy] = None
        self._res_counts: Dict[str, float] = {}
        self._segment_retries: Dict[int, int] = {}
        if self._resilience:
            self._retry_policy = RetryPolicy(
                request_timeout_s=self.config.request_timeout_s,
                retry_budget=self.config.retry_budget,
                backoff_base_s=self.config.retry_backoff_s,
            )
            self._res_counts = {
                "faults": 0, "timeouts": 0, "resets": 0,
                "retries": 0, "degraded": 0, "backoff": 0.0,
            }
        self._records: List[SegmentRecord] = []
        self._total_stall = 0.0
        self._startup_delay = 0.0
        registry = get_registry()
        self._ctr_segments = registry.counter(
            "session.segments", abr=self.abr.name
        )
        self._ctr_decisions = registry.counter(
            "abr.decisions", abr=self.abr.name
        )
        self._ctr_stall = registry.counter(
            "session.stall_seconds", abr=self.abr.name
        )
        self._ctr_repaired = registry.counter(
            "session.repaired_bytes", abr=self.abr.name
        )
        if self._resilience:
            # Only materialized when the fault/retry machinery is active,
            # keeping no-fault metric dumps identical to legacy runs.
            self._ctr_timeouts = registry.counter(
                "session.request_timeouts", abr=self.abr.name
            )
            self._ctr_resets = registry.counter(
                "session.connection_resets", abr=self.abr.name
            )
            self._ctr_retries = registry.counter(
                "session.retries", abr=self.abr.name
            )
            self._ctr_degraded = registry.counter(
                "session.degraded_segments", abr=self.abr.name
            )

    # ------------------------------------------------------------------
    @property
    def throughput_estimate(self) -> float:
        estimate = self._tp_cache
        if estimate is None:
            estimate = safe_throughput(self._throughput_samples, default=0.0)
            self._tp_cache = estimate
        return estimate

    def _context(self, index: int, last_quality: Optional[int]
                 ) -> DecisionContext:
        entries = self.manifest.entry_row(index)
        # The capacity handed to the ABR is the decision-time maximum: a
        # new download starts once the buffer is at or below capacity, so
        # the level seen by `choose` never exceeds it (the in-flight
        # segment briefly overshoots, but no decision happens then).
        return DecisionContext(
            segment_index=index,
            buffer_level_s=self.buffer.level_s,
            buffer_capacity_s=self.buffer.capacity_s,
            throughput_bps=self.throughput_estimate,
            last_quality=last_quality,
            manifest=self.manifest,
            entries=entries,
            segment_duration=self.segment_duration,
            voxel_capable=self.http.voxel_capable,
            throughput_samples=tuple(self._throughput_samples),
        )

    # ------------------------------------------------------------------
    def run(self) -> SessionMetrics:
        """Stream the whole video, blocking, and return the metrics.

        Equivalent to driving :meth:`steps` to completion on a private
        clock — the legacy single-session mode, byte-identical to the
        pre-kernel implementation.
        """
        return drive(self.steps(), self.clock, scheduler=self.scheduler)

    def steps(self):
        """The session as a resumable kernel process.

        A generator state machine cycling request → progress rounds →
        idle/retransmit → playback for every segment; it yields control
        (sleep times or wake handles) to whatever drives it — either
        :func:`~repro.network.events.drive` (solo) or a
        :class:`~repro.network.events.SimKernel` interleaving N sessions
        on one shared bottleneck.  Returns the session metrics.
        """
        video = self.prepared.video
        last_quality: Optional[int] = None
        start_clock = self.clock.now

        prof = self._prof
        s_frame = prof.push("session", "player") \
            if prof is not None else None

        if self.tracer.enabled:
            extra = {}
            if self.spec_hash is not None:
                extra["spec_hash"] = self.spec_hash
            self.tracer.emit(
                ev.SESSION_START,
                video=video.name,
                abr=self.abr.name,
                num_segments=video.num_segments,
                segment_duration=self.segment_duration,
                buffer_capacity_s=self.buffer.capacity_s,
                backend=self.config.transport_backend,
                partially_reliable=self.config.partially_reliable,
                num_levels=self.manifest.num_levels,
                **extra,
            )
        plan = self.config.fault_plan
        if plan is not None:
            # Announce the realized fault schedule up front: every window
            # the plan will apply is visible in the trace before any
            # request can hit it.
            self._res_counts["faults"] = len(plan.windows)
            if self.tracer.enabled:
                for window in plan.windows:
                    self.tracer.emit(
                        ev.FAULT_INJECTED,
                        kind=window.kind,
                        start=window.start,
                        duration=window.duration,
                        value=window.value,
                    )
        yield from self._before_session()
        for index in range(video.num_segments):
            seg_frame = prof.push("segment", "player") \
                if prof is not None else None
            yield from self._before_segment(index)
            yield from self._wait_for_room()
            yield from self._opportunistic_repair()
            decision = yield from self._decide(index, last_quality)
            record = yield from self._stream_segment(index, decision)
            self._records.append(record)
            self._ctr_segments.inc()
            last_quality = record.quality
            self.abr.on_complete(
                index, record.quality, record.bytes_delivered,
                record.download_time,
            )
            yield from self._after_segment(index, record)
            if seg_frame is not None:
                prof.pop(seg_frame)

        # Drain the remaining buffer (playback finishes).
        self.buffer.drain(self.buffer.level_s)
        metrics = SessionMetrics(
            video=video.name,
            abr=self.abr.name,
            records=self._records,
            startup_delay=self._startup_delay,
            total_stall=self._total_stall,
            media_duration=video.duration,
            wall_duration=self.clock.now - start_clock,
            segment_duration=self.segment_duration,
            resilience=self._resilience,
            faults_injected=int(self._res_counts.get("faults", 0)),
            request_timeouts=int(self._res_counts.get("timeouts", 0)),
            connection_resets=int(self._res_counts.get("resets", 0)),
            retries=int(self._res_counts.get("retries", 0)),
            degraded_segments=int(self._res_counts.get("degraded", 0)),
            backoff_s=float(self._res_counts.get("backoff", 0.0)),
        )
        if self.tracer.enabled:
            self.tracer.emit(
                ev.SESSION_END,
                buf_ratio=metrics.buf_ratio,
                total_stall=metrics.total_stall,
                startup_delay=metrics.startup_delay,
                mean_score=metrics.mean_ssim,
                segments=len(self._records),
            )
        if s_frame is not None:
            prof.pop(s_frame)
        return metrics

    # ------------------------------------------------------------------
    def _before_session(self) -> None:
        """Fetch the manifest per the configured strategy (§4.1).

        The enriched manifest is large (the paper quotes ~16 % of an
        average top-quality segment); downloading it in full delays
        startup, while DASH's MPD-update feature amortizes it.
        """
        mode = self.config.manifest_fetch
        if mode == "free":
            return
        prof = self._prof
        frame = prof.push("manifest", "player") if prof is not None else None
        try:
            yield from self._fetch_manifest(mode)
        finally:
            if frame is not None:
                prof.pop(frame)

    def _fetch_manifest(self, mode: str):
        total = self.manifest.metadata_bytes()
        if mode == "incremental":
            window = min(
                max(self.config.manifest_window_segments, 1),
                self.manifest.num_segments,
            )
            total = int(total * window / self.manifest.num_segments)
        elif mode != "full":
            raise ValueError(f"unknown manifest_fetch mode {mode!r}")
        retry = self._make_retry(-1, context="manifest")
        try:
            result = yield from resilient_download_iter(
                self.connection, total, reliable=True, retry=retry
            )
        except RetryBudgetExhausted as exc:
            # Startup must not wedge on a dead manifest server: record the
            # degradation and stream with the metadata baked into the
            # prepared video (the cost simply was not paid).
            self._bump("degraded", counter=self._ctr_degraded)
            self._startup_delay += exc.elapsed
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.DEGRADED,
                    segment=-1,
                    mode="skip",
                    attempts=exc.attempts,
                    wasted_bytes=exc.kept_bytes,
                    context="manifest",
                )
            return
        self._startup_delay += result.elapsed
        if self.tracer.enabled:
            self.tracer.emit(
                ev.MANIFEST_FETCH, mode=mode, bytes=total,
                elapsed=result.elapsed,
            )

    def _before_segment(self, index: int):
        """Hook before each segment's decision (subclass extension)."""
        return
        yield  # pragma: no cover - makes the hook a kernel process

    def _after_segment(self, index: int, record: SegmentRecord):
        """Hook after each segment completes (subclass extension)."""
        return
        yield  # pragma: no cover - makes the hook a kernel process

    # ------------------------------------------------------------------
    def _record_stall(self, stall: float, segment: int = -1) -> None:
        """Account a rebuffering event (``segment`` -1 = between segments)."""
        if stall <= 0:
            return
        self._total_stall += stall
        self._ctr_stall.inc(stall)
        if self.tracer.enabled:
            self.tracer.emit(ev.STALL, duration=stall, segment=segment)

    # ------------------------------------------------------------------
    def _bump(self, key: str, amount: float = 1, counter=None) -> None:
        self._res_counts[key] = self._res_counts.get(key, 0) + amount
        if counter is not None:
            counter.inc(amount)

    def _make_retry(
        self,
        segment: int,
        context: str = "segment",
        policy: Optional[RetryPolicy] = None,
    ) -> Optional[RetryContext]:
        """Per-segment retry context with trace/metric side effects.

        Returns None when resilience is off, which makes every wrapped
        download a byte-exact passthrough.
        """
        if not self._resilience:
            return None
        session = self

        def notify(kind: str, **fields) -> None:
            if context != "segment":
                fields["context"] = context
            if kind == "timeout":
                session._bump("timeouts", counter=session._ctr_timeouts)
                event = ev.REQUEST_TIMEOUT
            elif kind == "reset":
                session._bump("resets", counter=session._ctr_resets)
                # The reset event records where the chain stood, not how
                # long the attempt ran (its schema has no elapsed field).
                fields.pop("elapsed", None)
                event = ev.CONNECTION_RESET
            else:  # "retry"
                session._bump("retries", counter=session._ctr_retries)
                session._bump("backoff", fields.get("backoff_s", 0.0))
                if context == "segment":
                    session._segment_retries[segment] = (
                        session._segment_retries.get(segment, 0) + 1
                    )
                event = ev.RETRY
            if session.tracer.enabled:
                session.tracer.emit(event, segment=segment, **fields)

        return RetryContext(
            policy=policy if policy is not None else self._retry_policy,
            notify=notify,
        )

    def _note_failure(
        self, fault: TransportFault, segment: int, context: str
    ) -> None:
        """Trace/count a one-off transport failure outside a retry chain."""
        if not self._resilience:
            return
        if fault.kind == "timeout":
            self._bump("timeouts", counter=self._ctr_timeouts)
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.REQUEST_TIMEOUT,
                    segment=segment,
                    attempt=0,
                    elapsed=fault.partial.elapsed,
                    accounted_bytes=fault.accounted_bytes,
                    delivered_bytes=fault.partial.delivered,
                    context=context,
                )
        else:
            self._bump("resets", counter=self._ctr_resets)
            extra = {"at": fault.at} if fault.at is not None else {}
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.CONNECTION_RESET,
                    segment=segment,
                    attempt=0,
                    accounted_bytes=fault.accounted_bytes,
                    delivered_bytes=fault.partial.delivered,
                    context=context,
                    **extra,
                )

    # ------------------------------------------------------------------
    def _wait_for_room(self):
        """Idle until the buffer can take one more in-flight segment."""
        overhang = self.buffer.level_s - self.buffer.capacity_s
        if overhang <= 1e-9:
            return
        yield from self._idle(overhang)

    def _opportunistic_repair(self):
        """Repair losses whenever the buffer is comfortably full (§4.2).

        The paper's client re-requests lost data "when the playback
        buffer is full"; at BOLA's equilibrium the player hovers right at
        capacity, so we treat any healthy margin above the retransmission
        threshold as repair time — spending it never risks a stall
        because we cap the repair window by the spare buffer.
        """
        if not (
            self.config.selective_retransmission
            and self.http.voxel_capable
            and not self.config.force_reliable_payload
            and self._pending_repairs
        ):
            return
        margin = self.buffer.level_s - (
            self.config.retx_buffer_threshold * self.buffer.capacity_s
        )
        if margin <= 0.25:
            return
        t0 = self.clock.now
        yield from self._repair_losses(deadline=t0 + margin)
        elapsed = self.clock.now - t0
        if elapsed > 0:
            self._record_stall(self.buffer.drain(elapsed))

    def _idle(self, duration: float):
        """Pass ``duration`` seconds of playback, repairing losses."""
        prof = self._prof
        frame = prof.push("idle", "player") if prof is not None else None
        t0 = self.clock.now
        deadline = t0 + duration
        if (
            self.config.selective_retransmission
            and self.http.voxel_capable
            and not self.config.force_reliable_payload
        ):
            yield from self._repair_losses(deadline)
        remaining = deadline - self.clock.now
        if remaining > 0:
            yield from self.connection.idle_iter(remaining)
        elapsed = self.clock.now - t0
        self._record_stall(self.buffer.drain(elapsed))
        if frame is not None:
            prof.pop(frame)

    def _repair_losses(self, deadline: float):
        """Selective retransmission of lost bytes during idle time."""
        prof = self._prof
        frame = prof.push("repair", "player") if prof is not None else None
        try:
            yield from self._repair_losses_inner(deadline)
        finally:
            if frame is not None:
                prof.pop(frame)

    def _repair_losses_inner(self, deadline: float):
        playhead = self.buffer.media_time()
        t0 = self.clock.now
        for pending in list(self._pending_repairs):
            if self.clock.now >= deadline:
                break
            effective_buffer = self.buffer.level_s - (self.clock.now - t0)
            if effective_buffer <= (
                self.config.retx_buffer_threshold * self.buffer.capacity_s
            ):
                # Conditions unfavorable: stop repairing (§4.2).
                break
            media_start = pending.index * self.segment_duration
            if media_start <= playhead + 0.5:
                # Too late: (nearly) playing already.
                self._pending_repairs.remove(pending)
                continue
            time_left = deadline - self.clock.now
            budget = int(
                max(self.throughput_estimate, 1e5) * time_left / 8.0
            )
            try:
                repaired = yield from self.http.refetch_lost_iter(
                    pending.delivery, budget
                )
            except TransportFault as fault:
                # A failed repair is not worth a retry chain: the lost
                # intervals stay pending for the next idle window (or
                # remain residual loss).  Re-establish the connection and
                # stop repairing for now.
                self._note_failure(fault, pending.index, context="repair")
                reconnect = getattr(self.connection, "reconnect", None)
                if reconnect is not None:
                    reconnect()
                break
            if repaired > 0:
                pending.record.repaired_bytes += repaired
                pending.record.residual_loss_bytes = (
                    pending.delivery.residual_loss_bytes()
                )
                pending.record.score = self._score_delivery(
                    pending.quality, pending.index, pending.delivery
                )
                self._ctr_repaired.inc(repaired)
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.SELECTIVE_RETX,
                        segment=pending.index,
                        repaired_bytes=repaired,
                        residual_bytes=pending.record.residual_loss_bytes,
                    )
            if not pending.delivery.lost_intervals:
                self._pending_repairs.remove(pending)

    # ------------------------------------------------------------------
    def _decide(self, index: int, last_quality: Optional[int]):
        while True:
            ctx = self._context(index, last_quality)
            with timed("abr.choose", subsystem="abr"):
                decision = self.abr.choose(ctx)
            self._ctr_decisions.inc()
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.ABR_DECISION,
                    segment=index,
                    quality=decision.quality,
                    target_bytes=decision.target_bytes,
                    unreliable=decision.unreliable,
                    wait_s=decision.wait_s,
                    buffer_level_s=ctx.buffer_level_s,
                    throughput_bps=ctx.throughput_bps,
                    expected_score=decision.expected_score,
                )
            if decision.wait_s <= 0:
                return decision
            yield from self._idle(decision.wait_s)

    # ------------------------------------------------------------------
    def _stream_segment(self, index: int, decision: Decision):
        buffer_at_start = self.buffer.level_s
        t_start = self.clock.now
        restarts = 0
        wasted = 0
        truncated = False
        degraded_mode = ""
        retry = self._make_retry(index)

        while True:
            entry = self.manifest.entry(decision.quality, index)
            restart_to: List[int] = []

            total_wire = self._request_total(entry, decision)
            progress = self._make_progress(
                index, decision.quality, t_start, buffer_at_start,
                total_wire, restart_to,
            )

            if self.tracer.enabled:
                self.tracer.emit(
                    ev.DOWNLOAD_START,
                    segment=index,
                    quality=decision.quality,
                    wire_bytes=total_wire,
                    attempt=restarts,
                )
            prof = self._prof
            req_frame = prof.push("request", "player") \
                if prof is not None else None
            try:
                # _fetch's dispatch, inlined: the common VOXEL path runs
                # without the extra delegation frame a helper generator
                # would add to every round's resume chain.
                if (decision.skip_frames is not None
                        and self.connection.partially_reliable):
                    delivery = yield from self._fetch_skip_frames(
                        entry, decision, progress, retry
                    )
                else:
                    delivery = yield from self.http.fetch_segment_iter(
                        entry,
                        target_bytes=decision.target_bytes,
                        progress=progress,
                        force_reliable=(
                            self.config.force_reliable_payload
                            or not decision.unreliable
                        ),
                        retry=retry,
                    )
            except RetryBudgetExhausted as exc:
                if req_frame is not None:
                    prof.pop(req_frame)
                wasted += exc.delivered_bytes
                reconnect = getattr(self.connection, "reconnect", None)
                if reconnect is not None:
                    reconnect()
                if degraded_mode == "":
                    # Graceful degradation, stage 1: abandon the chosen
                    # quality and fall to the lowest level's reliable
                    # prefix with a fresh (single-attempt) budget.
                    degraded_mode = "floor"
                    self._bump("degraded", counter=self._ctr_degraded)
                    if self.tracer.enabled:
                        self.tracer.emit(
                            ev.DEGRADED,
                            segment=index,
                            mode="floor",
                            attempts=exc.attempts,
                            wasted_bytes=exc.kept_bytes,
                            to_quality=0,
                        )
                    restarts += 1
                    decision = Decision(
                        quality=0,
                        target_bytes=self.manifest.entry(
                            0, index
                        ).reliable_size,
                        unreliable=decision.unreliable,
                    )
                    # The floor attempt keeps the deadline but has no
                    # retries left: another failure degrades straight to
                    # skip, so the segment terminates in bounded time.
                    retry = self._make_retry(
                        index,
                        policy=RetryPolicy(
                            request_timeout_s=(
                                self.config.request_timeout_s
                            ),
                            retry_budget=0,
                            backoff_base_s=self.config.retry_backoff_s,
                        ),
                    )
                    continue
                # Stage 2: even the floor failed — skip the segment.
                degraded_mode = "skip"
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.DEGRADED,
                        segment=index,
                        mode="skip",
                        attempts=exc.attempts,
                        wasted_bytes=exc.kept_bytes,
                    )
                delivery = self._skipped_delivery(decision.quality, entry)
                truncated = True
                break
            if req_frame is not None:
                prof.pop(req_frame)
            if restart_to:
                wasted += delivery.bytes_delivered
                restarts += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.ABANDON,
                        segment=index,
                        from_quality=decision.quality,
                        to_quality=restart_to[0],
                        wasted_bytes=delivery.bytes_delivered,
                    )
                decision = Decision(
                    quality=restart_to[0],
                    unreliable=decision.unreliable,
                )
                continue
            truncated = delivery.bytes_requested < total_wire
            break

        elapsed = self.clock.now - t_start
        if index == 0 and not self._records:
            # Adds to any manifest-fetch delay accounted in
            # _before_session.
            self._startup_delay += elapsed
            stall = 0.0
            self.buffer.drain(min(self.buffer.level_s, elapsed))
        else:
            stall = self.buffer.drain(elapsed)
            self._record_stall(stall, index)

        if elapsed > 0:
            # Exclude request round trips: the sample should reflect the
            # path's transfer rate, not per-request latency overheads.
            transfer_time = max(elapsed - delivery.request_latency, 1e-3)
            sample = delivery.bytes_delivered * 8.0 / transfer_time
            if delivery.bytes_delivered > 50_000:
                self._throughput_samples.append(sample)
                self._tp_cache = None

        self.buffer.push_segment(self.segment_duration)

        lost_bytes = sum(
            end - start for start, end in delivery.lost_intervals
        )
        if self.tracer.enabled:
            if truncated and degraded_mode != "skip":
                # The reliable prefix is only a hard floor on the VOXEL
                # path: a plain-QUIC truncation cuts the decode-order
                # stream, where no such boundary exists.  A skipped
                # segment is a degradation, not an ABR truncation — the
                # DEGRADED event already tells that story.
                extra = {}
                if self.http.voxel_capable and decision.skip_frames is None:
                    extra["reliable_bytes"] = entry.reliable_size
                self.tracer.emit(
                    ev.TRUNCATE,
                    segment=index,
                    quality=decision.quality,
                    bytes_requested=delivery.bytes_requested,
                    wire_bytes=total_wire,
                    **extra,
                )
            self.tracer.emit(
                ev.DOWNLOAD_END,
                segment=index,
                quality=decision.quality,
                bytes_requested=delivery.bytes_requested,
                bytes_delivered=delivery.bytes_delivered,
                elapsed=elapsed,
                truncated=truncated,
                restarts=restarts,
                lost_bytes=lost_bytes,
                stall=stall,
            )
            self.tracer.emit(
                ev.BUFFER_SAMPLE,
                segment=index,
                level_s=self.buffer.level_s,
                capacity_s=self.buffer.capacity_s,
            )

        if degraded_mode == "skip":
            # Nothing usable arrived; the viewer sees a frozen segment.
            score = 0.0
        else:
            score = self._score_delivery(decision.quality, index, delivery)
        segment = self.prepared.video.segment(decision.quality, index)
        referenced = segment.frames.referenced_set()
        dropped_ref = sum(
            1 for f in delivery.dropped_frames if f in referenced
        )
        record = SegmentRecord(
            index=index,
            quality=decision.quality,
            target_bytes=decision.target_bytes,
            bytes_requested=delivery.bytes_requested,
            bytes_delivered=delivery.bytes_delivered,
            total_bytes=entry.total_bytes,
            download_time=elapsed,
            stall_time=stall,
            score=score,
            pristine_score=entry.pristine_score,
            skipped_frame_count=len(delivery.skipped_frames),
            dropped_referenced_frames=dropped_ref,
            corruption_frames=len(delivery.corruption),
            lost_bytes=lost_bytes,
            repaired_bytes=0,
            residual_loss_bytes=delivery.residual_loss_bytes(),
            restarts=restarts,
            truncated=truncated,
            wasted_bytes=wasted,
            segment_duration=self.segment_duration,
            retries=self._segment_retries.get(index, 0),
            degraded=degraded_mode,
        )
        if delivery.lost_intervals and self.http.voxel_capable:
            self._pending_repairs.append(
                _PendingRepair(
                    record=record,
                    delivery=delivery,
                    quality=decision.quality,
                    index=index,
                )
            )
        return record

    # ------------------------------------------------------------------
    def _request_total(self, entry, decision: Decision) -> int:
        """Total wire bytes the request will ask for."""
        if decision.skip_frames is not None and self.connection.partially_reliable:
            # Mirrors _fetch: without partial reliability the skip-frames
            # request degrades to a full-segment fetch, so the announced
            # wire bytes must be the full segment too.
            segment = self.prepared.video.segment(decision.quality, entry.index)
            skipped_payload = sum(
                segment.frames[idx].payload_bytes
                for idx in decision.skip_frames
            )
            return entry.total_bytes - skipped_payload
        if not self.http.voxel_capable:
            return entry.total_bytes
        if decision.target_bytes is None:
            return entry.total_bytes
        return min(max(decision.target_bytes, entry.reliable_size),
                   entry.total_bytes)

    def _make_progress(
        self,
        index: int,
        quality: int,
        t_start: float,
        buffer_at_start: float,
        total_wire: int,
        restart_to: List[int],
    ):
        """Build the transport progress callback bridging to ABR control."""
        session = self
        clock = self.clock
        abr_control = self.abr.control
        min_elapsed = self.abr.control_min_elapsed_s

        def progress(request_elapsed: float, request_sent: int) -> Optional[int]:
            elapsed_total = clock.now - t_start
            if elapsed_total < min_elapsed:
                # The algorithm's own warm-up gate would CONTINUE; skip
                # the snapshot without consulting it.
                return None
            buffer_now = buffer_at_start - elapsed_total
            if buffer_now < 0.0:
                buffer_now = 0.0
            # Blend the historical estimate with the rate this very
            # request is achieving: mid-download decisions must react to
            # the network as it is *now*, not as it was last segment.
            throughput = session.throughput_estimate
            if request_elapsed > 0.5 and request_sent > 0:
                # After the slow-start ramp the request's own rate is the
                # best signal; before that it systematically undershoots.
                instantaneous = request_sent * 8.0 / request_elapsed
                throughput = (
                    instantaneous if throughput <= 0
                    else 0.7 * instantaneous + 0.3 * throughput
                )
            state = DownloadProgress(
                index, quality, elapsed_total, request_sent,
                total_wire, buffer_now, throughput,
            )
            action = abr_control(state)
            if action.verb is ControlVerb.CONTINUE:
                return None
            if action.verb is ControlVerb.RESTART:
                restart_to.append(action.restart_quality or 0)
                return request_sent  # stop sending as soon as possible
            # TRUNCATE: convert from total-wire space to request space if
            # needed; connection clamps to >= bytes already sent.
            limit = action.truncate_to_bytes
            if limit is None:
                return request_sent
            return max(limit, request_sent)

        return progress

    def _fetch(self, entry, decision: Decision, progress, retry=None):
        if decision.skip_frames is not None and self.connection.partially_reliable:
            delivery = yield from self._fetch_skip_frames(
                entry, decision, progress, retry
            )
            return delivery
        target = decision.target_bytes
        force_reliable = (
            self.config.force_reliable_payload or not decision.unreliable
        )
        delivery = yield from self.http.fetch_segment_iter(
            entry,
            target_bytes=target,
            progress=progress,
            force_reliable=force_reliable,
            retry=retry,
        )
        return delivery

    def _fetch_skip_frames(self, entry, decision: Decision, progress,
                           retry=None):
        """BETA-style request: the segment minus specific frames, reliable."""
        segment = self.prepared.video.segment(decision.quality, entry.index)
        skip = tuple(decision.skip_frames or ())
        skipped_payload = sum(
            segment.frames[idx].payload_bytes for idx in skip
        )
        nbytes = entry.total_bytes - skipped_payload
        result = yield from resilient_download_iter(
            self.connection, nbytes, reliable=True, progress=progress,
            retry=retry,
        )
        return SegmentDelivery(
            entry=entry,
            bytes_requested=result.requested,
            bytes_delivered=result.delivered,
            skipped_frames=sorted(skip),
            corruption={},
            elapsed=result.elapsed,
            unreliable=False,
            lost_intervals=[],
            request_latency=result.request_latency,
        )

    def _skipped_delivery(self, quality: int, entry) -> SegmentDelivery:
        """Synthesize the empty delivery of a skipped (degraded) segment."""
        segment = self.prepared.video.segment(quality, entry.index)
        return SegmentDelivery(
            entry=entry,
            bytes_requested=0,
            bytes_delivered=0,
            skipped_frames=list(range(len(segment.frames))),
            corruption={},
            elapsed=0.0,
            unreliable=False,
            lost_intervals=[],
        )

    # ------------------------------------------------------------------
    def _score_delivery(
        self, quality: int, index: int, delivery: SegmentDelivery
    ) -> float:
        segment = self.prepared.video.segment(quality, index)
        dropped = [f for f in delivery.dropped_frames if f != 0]
        corruption = delivery.partial_frames
        with timed("decode_segment", subsystem="qoe"):
            result = decode_segment(
                segment,
                params=self.prepared.params,
                dropped=dropped,
                corruption=corruption,
            )
        return result.score
