"""Live / low-latency streaming session.

The paper motivates VOXEL with "the emerging use case of low-latency and
live streaming" (§1, §5): tiny playback buffers because every buffered
second is a second of latency behind the live edge.  This module adds
the live constraint to the streaming session:

* segment ``i`` only becomes *available* at ``(i + 1) * segment_duration
  + encoder_delay`` — it cannot be produced before its content happens,
* the client therefore cannot build arbitrary buffer: it is gated by the
  live edge,
* the headline metric is the **end-to-end latency**: how far behind the
  live edge each segment plays, plus how much latency stalls add over
  the session.

The ABR algorithms are unchanged — exactly the paper's point that VOXEL's
partial-segment machinery is what makes tiny-buffer streaming viable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.player.metrics import SegmentRecord, SessionMetrics
from repro.player.session import SessionConfig, StreamingSession


@dataclass
class LiveMetrics:
    """Latency-side metrics of a live session.

    Attributes:
        session: the underlying VoD-style metrics (bufRatio, SSIM, ...).
        encoder_delay: configured production delay in seconds.
        segment_latencies: per segment, the wall-clock lag between the
            moment the segment was produced (available at the server)
            and the moment it started playing at the client.
    """

    session: SessionMetrics
    encoder_delay: float
    segment_latencies: List[float]

    @property
    def mean_latency(self) -> float:
        if not self.segment_latencies:
            return 0.0
        return float(np.mean(self.segment_latencies))

    @property
    def p95_latency(self) -> float:
        if not self.segment_latencies:
            return 0.0
        return float(np.percentile(self.segment_latencies, 95))

    @property
    def final_latency(self) -> float:
        """Lag behind the live edge at the end of the session."""
        return self.segment_latencies[-1] if self.segment_latencies else 0.0


class LiveStreamingSession(StreamingSession):
    """A streaming session gated by a live edge.

    Args:
        encoder_delay: seconds between a segment's content happening and
            the coded segment (plus manifest update) being available.
        Everything else as :class:`StreamingSession`; buffers of 1-2
        segments are the sensible range here.
    """

    def __init__(self, *args, encoder_delay: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if encoder_delay < 0:
            raise ValueError("encoder delay cannot be negative")
        self.encoder_delay = encoder_delay
        self._latencies: List[float] = []
        # The broadcast starts when the session starts: segment i covers
        # media time [i*d, (i+1)*d) and is available at (i+1)*d + delay.
        self._broadcast_start = self.clock.now

    # ------------------------------------------------------------------
    def availability_time(self, index: int) -> float:
        """Wall-clock time segment ``index`` appears on the server."""
        d = self.segment_duration
        return self._broadcast_start + (index + 1) * d + self.encoder_delay

    def _before_segment(self, index: int):
        """Wait for the live edge: the segment must exist to be fetched."""
        wait = self.availability_time(index) - self.clock.now
        if wait > 0:
            yield from self._idle(wait)

    def _after_segment(self, index: int, record: SegmentRecord):
        """Record how far behind the live edge this segment will play.

        The segment starts playing once everything buffered ahead of it
        drains: ``clock.now + buffer_level - segment_duration`` (the
        segment itself was just pushed).  Latency is measured against the
        moment its *content happened* at the live source, i.e. the start
        of its media window.
        """
        play_start = (
            self.clock.now + self.buffer.level_s - self.segment_duration
        )
        media_start = self._broadcast_start + index * self.segment_duration
        self._latencies.append(play_start - media_start)
        return
        yield  # pragma: no cover - makes the hook a kernel process

    # ------------------------------------------------------------------
    def run_live(self) -> LiveMetrics:
        """Stream the live session and return latency + QoE metrics."""
        session_metrics = super().run()
        return LiveMetrics(
            session=session_metrics,
            encoder_delay=self.encoder_delay,
            segment_latencies=list(self._latencies),
        )


def stream_live(
    prepared,
    abr,
    trace,
    buffer_segments: int = 1,
    encoder_delay: float = 1.0,
    partially_reliable: bool = True,
    **config_kwargs,
) -> LiveMetrics:
    """Convenience wrapper: run one live session.

    Args:
        prepared: a :class:`~repro.prep.prepare.PreparedVideo` (the live
            encoder's output, analyzed on the fly segment by segment).
        abr: an ABR algorithm instance.
        trace: the network trace.
        buffer_segments: client buffer (1 = lowest latency).
        encoder_delay: production pipeline delay in seconds.
    """
    config = SessionConfig(
        buffer_segments=buffer_segments,
        partially_reliable=partially_reliable,
        **config_kwargs,
    )
    session = LiveStreamingSession(
        prepared, abr, trace, config, encoder_delay=encoder_delay
    )
    return session.run_live()
