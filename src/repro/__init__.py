"""repro — a from-scratch reproduction of VOXEL (CoNEXT 2021).

VOXEL is a cross-layer optimization system for video streaming over
imperfect (lossy) transmission.  It combines three pieces:

1. An **offline, server-side frame-importance analysis** that rank-orders
   the frames of every video segment by the QoE impact of their loss and
   enriches the DASH manifest with the resulting ordering, the byte ranges
   that must be delivered reliably, and an ``ssims`` map from
   bytes-downloaded to expected QoE (:mod:`repro.prep`).
2. **QUIC\\***, a partially reliable QUIC variant whose unreliable streams
   remain congestion- and flow-controlled (:mod:`repro.transport`), running
   over an emulated bottleneck network (:mod:`repro.network`).
3. **ABR\\***, a BOLA-derived adaptive-bitrate algorithm that optimizes a
   QoE metric directly, exploits *virtual quality levels* created by
   dropping low-importance frames, and keeps partial segments on
   abandonment (:mod:`repro.abr`).

The package also contains the substrates the paper depends on: a synthetic
H.264-like codec model and video library (:mod:`repro.video`), analytic
SSIM/VMAF/PSNR QoE models with reference-graph error propagation
(:mod:`repro.qoe`), a playback client (:mod:`repro.player`), and the full
experiment harness reproducing every table and figure of the paper
(:mod:`repro.experiments`).

Quickstart::

    from repro import core

    prepared = core.prepare_video("bbb")
    result = core.stream(prepared, abr="abr_star", trace="verizon",
                         buffer_segments=2, seed=7)
    print(result.metrics.buf_ratio, result.metrics.mean_ssim)
"""

__version__ = "1.0.0"

_API_NAMES = (
    "PreparedVideo",
    "StreamResult",
    "available_abrs",
    "available_backends",
    "available_link_models",
    "available_traces",
    "available_videos",
    "prepare_video",
    "stream",
    "stream_spec",
)

#: Scenario-spine names living in repro.core (not repro.core.api).
_CORE_NAMES = ("ScenarioSpec", "StackBuilder", "build_session",
               "reliability_mode")


def __getattr__(name):
    """Lazily expose the high-level API (PEP 562).

    Subpackages such as :mod:`repro.video` are importable without pulling
    in the whole stack; the convenience names resolve on first access.
    """
    if name in _API_NAMES:
        from repro.core import api

        return getattr(api, name)
    if name in _CORE_NAMES:
        import repro.core as core

        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = list(_API_NAMES) + list(_CORE_NAMES) + ["__version__"]
