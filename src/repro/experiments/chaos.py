"""Chaos sweep: named fault profiles against the streaming stack.

The resilience counterpart of :mod:`repro.experiments.sweep`: every cell
is one (fault profile x seed) combination streamed end to end with the
inline invariant auditor attached, so a chaos run simultaneously
measures *graceful degradation* (QoE, stalls, retries, degraded
segments under injected faults) and *correctness* (all trace invariants
— including retry accounting and shared-link conservation — hold on
every cell).

Profiles are plain :class:`~repro.faults.spec.FaultSpec` dicts; the
seeded placement machinery scatters each profile's windows differently
per scenario seed, so a handful of seeds covers faults hitting startup,
steady state, and the tail of the session.

CLI: ``repro faults --profiles blackouts,mixed --seeds 0,1,2
--check-invariants``.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.build import StackBuilder
from repro.core.spec import ScenarioSpec
from repro.experiments.execution import (
    CheckpointStore,
    ExecutionError,
    ExecutionPolicy,
    execute,
)
from repro.experiments.sweep import sweep_run_key
from repro.faults import FAULTS
from repro.obs import spans as _spans
from repro.obs.attribution import FleetAttributor
from repro.obs.invariants import TraceAuditor
from repro.obs.ledger import build_ledger
from repro.obs.metrics import scoped_registry
from repro.obs.profiling import enable_profiling, profiling_enabled
from repro.obs.rollup import TraceRollup
from repro.obs.tracer import Tracer
from repro.prep.prepare import PreparedVideo, get_prepared

#: Named fault schedules for chaos runs.  Each value is a FaultSpec
#: dict; counts/durations are sized for a few-minute session.
CHAOS_PROFILES: Dict[str, Dict] = {
    "blackouts": {"events": [
        {"kind": "blackout", "count": 2, "duration": 3.0},
    ]},
    "cliffs": {"events": [
        {"kind": "bandwidth_cliff", "count": 2, "factor": 0.1,
         "duration": 8.0},
    ]},
    "spikes": {"events": [
        {"kind": "rtt_spike", "count": 3, "extra": 0.25, "duration": 2.0},
    ]},
    "loss": {"events": [
        {"kind": "loss_burst", "count": 2, "rate": 0.25, "duration": 3.0},
    ]},
    "resets": {"events": [
        {"kind": "reset", "count": 3},
    ]},
    "stalls": {"events": [
        {"kind": "server_stall", "count": 2, "delay": 1.5,
         "duration": 4.0},
    ]},
    "mixed": {"events": [
        {"kind": "blackout", "count": 1, "duration": 3.0},
        {"kind": "reset", "count": 2},
        {"kind": "loss_burst", "count": 1, "rate": 0.2, "duration": 3.0},
        {"kind": "rtt_spike", "count": 1, "extra": 0.25, "duration": 2.0},
        {"kind": "server_stall", "count": 1, "delay": 1.5,
         "duration": 4.0},
    ]},
}

#: Spec fields every chaos cell starts from (overridable via ``base``).
DEFAULT_BASE: Dict = {
    "video": "bbb",
    "abr": "abr_star",
    "trace": "verizon",
    "request_timeout_s": 3.0,
    "retry_budget": 3,
}


def chaos_cells(
    profiles: Sequence[str],
    seeds: Sequence[int],
    base: Optional[Dict] = None,
) -> List[Tuple[str, ScenarioSpec]]:
    """Expand (profile x seed) into concrete scenario cells.

    Deterministic expansion order: profiles outermost, seeds inner —
    mirroring the sweep engine, so any worker count folds results
    identically.
    """
    fields = dict(DEFAULT_BASE)
    fields.update(base or {})
    cells: List[Tuple[str, ScenarioSpec]] = []
    for profile in profiles:
        if profile not in CHAOS_PROFILES:
            raise KeyError(
                f"unknown chaos profile {profile!r}; known: "
                f"{', '.join(sorted(CHAOS_PROFILES))}"
            )
        for seed in seeds:
            cell = dict(fields)
            cell["faults"] = CHAOS_PROFILES[profile]
            cell["seed"] = int(seed)
            cells.append((profile, ScenarioSpec.from_dict(cell)))
    return cells


# ---------------------------------------------------------------------------
#: Prepared videos for fork()ed chaos workers (same contract as the
#: sweep engine's module-global: inherited via the fork memory snapshot).
_CHAOS_PREPARED_MAP: Optional[Dict[str, PreparedVideo]] = None

#: ``(sample_rate, sample_seed)`` when chaos cells collect streaming
#: rollups (same fork-inheritance contract as the prepared map).
_CHAOS_ROLLUP: Optional[Tuple[float, int]] = None

#: ``(profile, timers)`` snapshot for workers — same contract as the
#: sweep engine's ``_SWEEP_PROFILE``: re-applied per cell so forked
#: workers honour ``--profile`` and the timer flag.
_CHAOS_PROFILE: Optional[Tuple[bool, bool]] = None


def _chaos_worker(item: Tuple[str, ScenarioSpec]) -> Dict:
    """Run one chaos cell: stream with the inline auditor attached."""
    profile, spec = item
    do_profile, timers = (
        _CHAOS_PROFILE
        if _CHAOS_PROFILE is not None
        else (False, profiling_enabled())
    )
    enable_profiling(timers)
    prepared = None
    if _CHAOS_PREPARED_MAP is not None:
        prepared = _CHAOS_PREPARED_MAP.get(spec.video)
    # Install the cell profiler before the tracer (and, inside
    # stream_spec, the rest of the stack) is built: spans capture
    # their profiler at construction time.
    prof = _spans.SpanProfiler() if do_profile else None
    prev = _spans.install(prof) if do_profile else None
    t0 = time.perf_counter()
    try:
        auditor = TraceAuditor()
        observers = [auditor.feed]
        rollup = fleet = None
        if _CHAOS_ROLLUP is not None:
            rate, sample_seed = _CHAOS_ROLLUP
            rollup = TraceRollup(sample_rate=rate, sample_seed=sample_seed)
            fleet = FleetAttributor()
            observers += [rollup.feed, fleet.feed]
        tracer = Tracer(observers=observers)
        with scoped_registry(merge=False):
            from repro.core.api import stream_spec

            result = stream_spec(spec, prepared=prepared, tracer=tracer)
    finally:
        if do_profile:
            prof.finalize()
            _spans.install(prev)
    wall_s = time.perf_counter() - t0
    report = auditor.finalize()
    summary = result.metrics.summary()
    row = {
        "spec_hash": spec.spec_hash(),
        "label": spec.label(),
        "profile": profile,
        "seed": spec.seed,
        "spec": spec.to_dict(),
        "summary": summary,
        "audit": {
            "ok": report.ok,
            "events": report.events,
            "violations": [str(v) for v in report.violations],
        },
    }
    if rollup is not None:
        row["rollup"] = rollup.to_dict()
        row["attribution"] = fleet.combined().to_dict()
    if do_profile:
        row["ledger"] = build_ledger(
            prof, wall_s, label=spec.label(),
            spec_hash=spec.spec_hash(), meta=False,
        )
    return row


def run_chaos(
    profiles: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    base: Optional[Dict] = None,
    workers: int = 1,
    prepared_map: Optional[Dict[str, PreparedVideo]] = None,
    rollup: bool = False,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
    profile: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint_dir: Optional[str] = None,
    strict: bool = True,
) -> List[Dict]:
    """Execute a chaos sweep; one audited result row per cell.

    Args:
        profiles: names from :data:`CHAOS_PROFILES` (default: all, in
            sorted order).
        seeds: scenario seeds — each scatters the profile's windows
            differently across the session.
        base: :class:`ScenarioSpec` field overrides layered over
            :data:`DEFAULT_BASE` (e.g. a different video or backend).
        workers: worker processes across cells; results fold in
            expansion order, so any worker count is byte-identical.
        prepared_map: ``video name -> PreparedVideo`` overriding the
            catalog (fixtures, benchmarks).
        rollup: attach a streaming rollup + causal attributor per cell;
            rows gain ``rollup`` and ``attribution`` keys (the default
            row content stays byte-identical).
        sample_rate: per-session head-sampling rate for the rollups.
        sample_seed: seed of the sampling hash.
        profile: run every cell under a span profiler; rows gain a
            ``ledger`` key (same shape as sweep ledgers).
        policy: supervision knobs (per-cell deadline, retry budget,
            backoff) for the resilient pool.
        checkpoint_dir: crash-safe spool directory; completed cell rows
            are spooled atomically and folded from disk on a re-run.
        strict: raise :class:`~repro.experiments.execution.ExecutionError`
            when a cell exhausts its retry budget; ``strict=False``
            yields ``degraded`` rows (profile, seed, attempts, causes)
            for the failed cells instead.

    Returns:
        One row per cell with the spec, its summary (including the
        resilience counters), and the invariant audit verdict.
    """
    if profiles is None:
        profiles = sorted(CHAOS_PROFILES)
    cells = chaos_cells(profiles, seeds, base)
    for _, spec in cells:
        StackBuilder(spec, prepared_map=prepared_map).validate()
    for video in dict.fromkeys(spec.video for _, spec in cells):
        if prepared_map is None or video not in prepared_map:
            get_prepared(video)
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = CheckpointStore(
            checkpoint_dir,
            run_key=sweep_run_key(
                [spec for _, spec in cells], rollup=rollup,
                sample_rate=sample_rate, sample_seed=sample_seed,
                profile=profile, kind="chaos",
            ),
            tasks=len(cells),
        )
    global _CHAOS_PREPARED_MAP, _CHAOS_ROLLUP, _CHAOS_PROFILE
    _CHAOS_PREPARED_MAP = prepared_map
    _CHAOS_ROLLUP = (
        (float(sample_rate), int(sample_seed)) if rollup else None
    )
    _CHAOS_PROFILE = (bool(profile), profiling_enabled())
    try:
        outcome = execute(
            _chaos_worker,
            cells,
            workers=workers,
            policy=policy,
            labels=[
                f"cell {name}/seed{spec.seed}" for name, spec in cells
            ],
            checkpoint=checkpoint,
        )
    finally:
        _CHAOS_PREPARED_MAP = None
        _CHAOS_ROLLUP = None
        _CHAOS_PROFILE = None
    if strict and outcome.failures:
        raise ExecutionError(outcome.failures, total=len(cells))
    failures = {failure.index: failure for failure in outcome.failures}
    rows = []
    for i, ((name, spec), row) in enumerate(zip(cells, outcome.results)):
        if i in failures:
            rows.append({
                "spec_hash": spec.spec_hash(),
                "label": spec.label(),
                "profile": name,
                "seed": spec.seed,
                "spec": spec.to_dict(),
                "degraded": {
                    "attempts": failures[i].attempts,
                    "causes": list(failures[i].causes),
                },
            })
        else:
            rows.append(row)
    return rows


def chaos_rows_to_jsonl(rows: Sequence[Dict]) -> str:
    """Serialize chaos rows as canonical JSONL."""
    return "\n".join(
        json.dumps(row, sort_keys=True, separators=(",", ":"))
        for row in rows
    ) + ("\n" if rows else "")


def format_chaos_report(rows: Sequence[Dict]) -> str:
    """Human-readable chaos outcome: one line per cell plus a verdict."""
    lines = []
    bad = 0
    missing = 0
    for row in rows:
        if "degraded" in row:
            missing += 1
            block = row["degraded"]
            lines.append(
                f"{row['profile']:<10} seed {row['seed']:<3} "
                f"MISSING after {block['attempts']} attempt(s): "
                f"{', '.join(block['causes'])}"
            )
            continue
        s = row["summary"]
        audit = row["audit"]
        status = "ok" if audit["ok"] else "AUDIT-FAIL"
        if not audit["ok"]:
            bad += 1
        lines.append(
            f"{row['profile']:<10} seed {row['seed']:<3} "
            f"ssim {s['mean_ssim']:.3f}  bufRatio {s['buf_ratio']:.3f}  "
            f"timeouts {int(s.get('request_timeouts', 0))}  "
            f"resets {int(s.get('connection_resets', 0))}  "
            f"retries {int(s.get('retries', 0))}  "
            f"degraded {int(s.get('degraded_segments', 0))}  [{status}]"
        )
        for violation in audit["violations"]:
            lines.append(f"    {violation}")
    verdict = (
        f"{len(rows)} cells, {len(rows) - bad - missing} audits clean"
        + (f", {bad} FAILED" if bad else "")
        + (f", {missing} MISSING (degraded run)" if missing else "")
    )
    lines.append(verdict)
    return "\n".join(lines)


__all__ = [
    "CHAOS_PROFILES",
    "DEFAULT_BASE",
    "chaos_cells",
    "chaos_rows_to_jsonl",
    "format_chaos_report",
    "run_chaos",
    "FAULTS",
]
