"""Multi-client experiment: N full ABR sessions on one bottleneck.

The paper's testbed streams one client against cross traffic; this
module runs *several complete streaming sessions* — mixed ABR
algorithms, mixed transport flavours (QUIC vs QUIC*), even mixed videos
— concurrently on one shared bottleneck, interleaved by the discrete-
event kernel.  Each session is the ordinary
:class:`~repro.player.session.StreamingSession` state machine
(:meth:`~repro.player.session.StreamingSession.steps`) spawned as a
kernel process; contention emerges from the shared link's continuous-
service accounting (round backend) or the shared droptail router
(packet backend), not from any bespoke multi-client code path.

Reported per client: QoE (SSIM, bitrate), stalls, startup delay, and
realized throughput; across clients: Jain's fairness index.  With a
tracer attached, all sessions record into one globally ordered stream
(events tagged ``session_id``) and the run ends with a ``link_stats``
event carrying the shared link's lifetime counters, so
``repro trace --check`` can verify cross-session byte conservation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.build import StackBuilder
from repro.core.spec import ScenarioSpec, reliability_mode
from repro.network.events import SimKernel
from repro.network.linkmodels import LINK_MODELS
from repro.network.traces import NetworkTrace, get_trace
from repro.obs import events as ev
from repro.player.metrics import SessionMetrics
from repro.player.session import StreamingSession
from repro.prep.prepare import PreparedVideo


@dataclass
class ClientSpec:
    """One client of a multi-client run."""

    abr: str = "bola"
    video: str = "bbb"
    partially_reliable: bool = True  # QUIC* (True) vs plain QUIC (False)
    buffer_segments: int = 3
    abr_kwargs: Dict = field(default_factory=dict)

    def label(self, index: Optional[int] = None) -> str:
        """Human-readable tag; pass the client index to disambiguate
        clients that share an ABR and transport flavour (table rows
        would otherwise collide — session ids stay unchanged)."""
        flavour = "Q*" if self.partially_reliable else "Q"
        base = f"{self.abr}/{flavour}"
        return base if index is None else f"{base}#{index}"


@dataclass
class ClientOutcome:
    """One client's results."""

    session_id: str
    spec: ClientSpec
    metrics: SessionMetrics

    @property
    def delivered_bytes(self) -> int:
        return sum(r.bytes_delivered for r in self.metrics.records)

    @property
    def throughput_mbps(self) -> float:
        wall = self.metrics.wall_duration
        if wall <= 0:
            return 0.0
        return self.delivered_bytes * 8.0 / wall / 1e6


@dataclass
class MulticlientResult:
    """Aggregate of one multi-client run."""

    clients: List[ClientOutcome]
    trace_name: str
    backend: str

    @property
    def jain_index(self) -> float:
        """Jain's fairness index over per-client throughput."""
        rates = np.array([c.throughput_mbps for c in self.clients])
        if not len(rates) or rates.sum() == 0:
            return 1.0
        return float(rates.sum() ** 2 / (len(rates) * (rates**2).sum()))

    def rows(self) -> List[Dict[str, float]]:
        out = []
        for i, client in enumerate(self.clients):
            m = client.metrics
            out.append({
                "session_id": client.session_id,
                "label": client.spec.label(i),
                "video": client.spec.video,
                "mean_ssim": m.mean_ssim,
                "bitrate_kbps": m.avg_bitrate_kbps,
                "buf_ratio": m.buf_ratio,
                "total_stall_s": m.total_stall,
                "startup_delay_s": m.startup_delay,
                "throughput_mbps": client.throughput_mbps,
            })
        return out


#: The mixed 4-client default: both ABRs, both transport flavours.
DEFAULT_SPECS = (
    ClientSpec(abr="abr_star", partially_reliable=True),
    ClientSpec(abr="bola", partially_reliable=True),
    ClientSpec(abr="abr_star", partially_reliable=False),
    ClientSpec(abr="bola", partially_reliable=False),
)


def default_session_ids(specs: Sequence[ClientSpec]) -> List[str]:
    """The historical per-client session ids: index, ABR, flavour."""
    return [
        f"c{i}-{spec.abr}-{'Qstar' if spec.partially_reliable else 'Q'}"
        for i, spec in enumerate(specs)
    ]


@dataclass
class Shard:
    """One assembled simulation cell, ready to run.

    A shard is a kernel, one shared bottleneck (fluid link or packet
    router), and N client sessions built against it — the unit a fleet
    executor hands to a worker process.  :meth:`run` drives every
    session to completion and returns their metrics in client order.
    """

    kernel: SimKernel
    sessions: List[StreamingSession]
    session_ids: List[str]
    specs: List[ClientSpec]
    trace_name: str
    backend: str
    link: Optional[object] = None
    router: Optional[object] = None
    tracer: Optional[object] = None

    @property
    def bottleneck(self):
        """The shared contention point, whichever backend built it."""
        return self.link if self.link is not None else self.router

    def run(self) -> List[SessionMetrics]:
        """Drive all sessions concurrently; metrics in client order.

        Spawn order is the determinism anchor: simultaneous events
        tie-break by spawn sequence, so a fixed spec list fixes the
        interleave.  Spawning and the completion wait are batched
        (``spawn_many`` / ``run_until_all``) so a shard with hundreds
        of sessions costs O(1) bookkeeping per event, byte-identical
        to the unbatched loop.
        """
        waiters = self.kernel.spawn_many(
            session.steps() for session in self.sessions
        )
        self.kernel.run_until_all(waiters)
        if self.tracer is not None and self.tracer.enabled:
            source = self.bottleneck
            self.tracer.emit(
                ev.LINK_STATS,
                offered_packets=source.offered_packets,
                dropped_packets=source.dropped_packets,
                delivered_packets=source.delivered_packets,
                flows=len(self.sessions),
            )
        return [w.value for w in waiters]


def _run_fault_plan(specs, trace, seed, faults, prepared_map):
    """Run-level fault plan over the longest client's playback window
    (mirrors StackBuilder.fault_plan); None when no faults configured."""
    if not faults:
        return None
    from repro.faults import FaultSpec, build_plan
    from repro.prep.prepare import get_prepared

    def _duration(video: str) -> float:
        if prepared_map is not None and video in prepared_map:
            return prepared_map[video].video.duration
        return get_prepared(video).video.duration

    horizon = min(
        trace.duration, max(_duration(s.video) for s in specs)
    )
    return build_plan(
        FaultSpec.from_dict(faults), horizon=horizon, scenario_seed=seed
    )


def build_shard(
    specs: Sequence[ClientSpec],
    trace: NetworkTrace,
    *,
    trace_name: str = "custom",
    seed: int = 0,
    queue_packets: int = 32,
    base_rtt: float = 0.060,
    backend: str = "round",
    tracer=None,
    prepared_map: Optional[Dict[str, PreparedVideo]] = None,
    faults: Optional[Dict] = None,
    request_timeout_s: Optional[float] = None,
    retry_budget: int = 3,
    retry_backoff_s: float = 0.5,
    session_ids: Optional[Sequence[str]] = None,
) -> Shard:
    """Assemble one shared-substrate cell: kernel, bottleneck, sessions.

    This is the substrate assembly historically inlined in
    :func:`run_multiclient`, extracted so the fleet executor can build
    many cells — each with its own kernel, trace weather, and fault
    plan — from one code path.  ``session_ids`` overrides the default
    ``c{i}-...`` ids (fleet shards need globally unique ids so the
    hash-keyed rollup sampling stays a pure function of the id).
    """
    if not specs:
        raise ValueError("a multi-client run needs at least one client")
    run_plan = _run_fault_plan(specs, trace, seed, faults, prepared_map)
    if run_plan is not None:
        from repro.faults import FaultedTrace

        trace = FaultedTrace(trace, run_plan)

    kernel = SimKernel()
    shared_link = None
    shared_router = None
    # The shared bottleneck all clients contend for, from the link-model
    # registry: the round backend shares one fluid BottleneckLink, the
    # packet backend one droptail router on the kernel's event loop.
    if backend == "round":
        shared_link = LINK_MODELS.get("droptail")(
            trace,
            queue_packets=queue_packets,
            base_rtt=base_rtt,
        )
        if run_plan is not None:
            shared_link.fault_plan = run_plan
    elif backend == "packet":
        shared_router = LINK_MODELS.get("packet-router")(
            kernel, trace, queue_packets=queue_packets,
            propagation_s=base_rtt / 2.0,
        )
        if run_plan is not None:
            shared_router.fault_plan = run_plan
    else:
        raise ValueError(f"unknown multiclient backend {backend!r}")

    if session_ids is None:
        session_ids = default_session_ids(specs)
    elif len(session_ids) != len(specs):
        raise ValueError(
            f"{len(session_ids)} session ids for {len(specs)} clients"
        )

    sessions: List[StreamingSession] = []
    for spec, session_id in zip(specs, session_ids):
        scenario = ScenarioSpec(
            video=spec.video,
            abr=spec.abr,
            abr_kwargs=dict(spec.abr_kwargs),
            trace=trace_name,
            seed=seed,
            reliability=reliability_mode(spec.partially_reliable),
            buffer_segments=spec.buffer_segments,
            queue_packets=queue_packets,
            base_rtt=base_rtt,
            backend=backend,
            faults=faults,
            request_timeout_s=request_timeout_s,
            retry_budget=retry_budget,
            retry_backoff_s=retry_backoff_s,
        )
        sessions.append(
            StackBuilder(scenario, prepared_map=prepared_map).build(
                network_trace=trace,
                link=shared_link,
                tracer=tracer,
                clock=kernel.clock,
                session_id=session_id,
                scheduler=kernel if backend == "packet" else None,
                router=shared_router,
            )
        )
    return Shard(
        kernel=kernel,
        sessions=sessions,
        session_ids=list(session_ids),
        specs=list(specs),
        trace_name=trace_name,
        backend=backend,
        link=shared_link,
        router=shared_router,
        tracer=tracer,
    )


def run_multiclient(
    specs: Sequence[ClientSpec] = DEFAULT_SPECS,
    trace: Union[str, NetworkTrace] = "verizon",
    seed: int = 0,
    queue_packets: int = 32,
    base_rtt: float = 0.060,
    backend: str = "round",
    tracer=None,
    prepared_map: Optional[Dict[str, PreparedVideo]] = None,
    faults: Optional[Dict] = None,
    request_timeout_s: Optional[float] = None,
    retry_budget: int = 3,
    retry_backoff_s: float = 0.5,
    observers: Optional[Sequence] = None,
    session_ids: Optional[Sequence[str]] = None,
) -> MulticlientResult:
    """Run N concurrent streaming sessions on one shared bottleneck.

    Args:
        specs: one :class:`ClientSpec` per client (>= 1).
        trace: bottleneck capacity trace (name or instance).  All
            clients contend for this one link.
        seed: trace seed; the whole run is a pure function of
            (specs, trace, seed) — same inputs, byte-identical traces.
        queue_packets: shared droptail queue size.
        base_rtt: propagation RTT of the shared path.
        backend: ``"round"`` (shared :class:`BottleneckLink`) or
            ``"packet"`` (shared :class:`PacketRouter`, much slower).
        tracer: optional shared tracer; events are tagged per session.
        prepared_map: video name -> PreparedVideo, for videos outside
            the catalog (fixtures, benchmarks).
        faults: run-level :class:`~repro.faults.spec.FaultSpec` dict;
            substrate faults (blackouts, loss, latency) hit the shared
            bottleneck once — every client feels the same weather —
            while resets/deadlines act per connection.
        request_timeout_s / retry_budget / retry_backoff_s: every
            client's resilience policy (see
            :class:`~repro.player.session.SessionConfig`).
        observers: trace-event callbacks (fleet rollups, attributors,
            auditors).  Attached to ``tracer`` when one is given;
            otherwise a buffer-less
            :class:`~repro.obs.tracer.StreamingTracer` is created, so
            fleet aggregation never retains per-event history.
        session_ids: override the default ``c{i}-...`` per-client ids
            (fleet shards pass globally unique ids).

    Returns:
        Per-client metrics plus Jain's fairness index.
    """
    if observers:
        if tracer is None:
            from repro.obs.tracer import StreamingTracer

            tracer = StreamingTracer()
        for observer in observers:
            tracer.add_observer(observer)
    if isinstance(trace, str):
        trace_name = trace
        trace = get_trace(trace, seed=seed)
    else:
        trace_name = getattr(trace, "name", "custom")

    shard = build_shard(
        specs,
        trace,
        trace_name=trace_name,
        seed=seed,
        queue_packets=queue_packets,
        base_rtt=base_rtt,
        backend=backend,
        tracer=tracer,
        prepared_map=prepared_map,
        faults=faults,
        request_timeout_s=request_timeout_s,
        retry_budget=retry_budget,
        retry_backoff_s=retry_backoff_s,
        session_ids=session_ids,
    )
    metrics = shard.run()
    clients = [
        ClientOutcome(session_id=sid, spec=spec, metrics=m)
        for sid, spec, m in zip(shard.session_ids, specs, metrics)
    ]
    return MulticlientResult(
        clients=clients, trace_name=trace_name, backend=backend
    )
