"""User-survey model (§5.3, Fig. 14).

The paper surveyed 54 participants watching one-minute clips recorded
from in-lab experiments under challenging network conditions, asking for
mean-opinion scores (MOS, 1-5) along four dimensions — clarity (visual
quality), glitches (noticeable artifacts), fluidity (rebuffering), and
overall experience — plus a pairwise preference between VOXEL and BOLA
streams of the same content.

We cannot survey humans here; instead each simulated participant maps
the objective session metrics to opinion scores through standard QoE
psychometrics (logistic mapping from stall ratio to fluidity, from mean
SSIM to clarity, from artifact rate to glitches) with seeded per-user
bias and noise.  The *deltas* the paper reports — fluidity strongly up
for VOXEL, clarity slightly down, overall up, and a large preference
majority — emerge from the objective gaps measured in §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.player.metrics import SessionMetrics


@dataclass
class SurveyResult:
    """Aggregate outcome of one simulated survey."""

    participants: int
    mos: Dict[str, Dict[str, float]]  # system -> dimension -> mean score
    preference_voxel: float  # fraction preferring the VOXEL clip
    would_stop: Dict[str, float]  # system -> fraction who would stop

    def mos_delta(self, dimension: str) -> float:
        """VOXEL minus BOLA MOS along a dimension."""
        return self.mos["VOXEL"][dimension] - self.mos["BOLA"][dimension]


def _logistic(x: float, midpoint: float, steepness: float) -> float:
    return 1.0 / (1.0 + np.exp(-steepness * (x - midpoint)))


def _clip_mos(value: float) -> float:
    return float(np.clip(value, 1.0, 5.0))


def _session_opinion(session: SessionMetrics) -> Dict[str, float]:
    """Deterministic (pre-noise) opinion along the four dimensions."""
    stall_pct = session.buf_ratio * 100.0

    # Fluidity: stall-free playback is a 4.8; opinion collapses quickly
    # as stalls accumulate (rebuffering is "the most frustrating").
    fluidity = 1.0 + 3.8 * (1.0 - _logistic(stall_pct, 4.0, 0.55))

    # Clarity: driven by the mean quality score.
    clarity = 1.0 + 4.0 * _logistic(session.mean_ssim, 0.87, 8.0)

    # Glitches: *visible* artifacts from dropped/corrupted frames lower
    # the score (5 = no noticeable artifacts); imperceptible virtual-
    # quality drops do not count, per the §3 premise.
    artifact_rate = session.perceptible_artifact_rate
    residual = session.residual_loss_fraction
    glitches = 5.0 - 1.2 * artifact_rate - 30.0 * residual

    # Overall: fluidity dominates, clarity and glitches follow (§5.3:
    # users prefer trading buffering for quality).
    overall = 0.55 * fluidity + 0.25 * clarity + 0.20 * glitches
    return {
        "clarity": _clip_mos(clarity),
        "glitches": _clip_mos(glitches),
        "fluidity": _clip_mos(fluidity),
        "experience": _clip_mos(overall),
    }


DIMENSIONS = ("clarity", "glitches", "fluidity", "experience")


def run_survey(
    voxel_sessions: Sequence[SessionMetrics],
    bola_sessions: Sequence[SessionMetrics],
    participants: int = 54,
    seed: int = 0,
) -> SurveyResult:
    """Simulate the §5.3 user study.

    Each participant watches one randomly chosen clip pair (a VOXEL and
    a BOLA session of the same scenario), forms noisy opinions along the
    four dimensions, prefers the clip with the higher overall opinion,
    and reports whether they would have stopped watching.
    """
    if not voxel_sessions or not bola_sessions:
        raise ValueError("need at least one session per system")
    rng = np.random.default_rng(seed)

    totals = {
        "VOXEL": {dim: 0.0 for dim in DIMENSIONS},
        "BOLA": {dim: 0.0 for dim in DIMENSIONS},
    }
    prefer_voxel = 0
    would_stop = {"VOXEL": 0, "BOLA": 0}

    pair_count = min(len(voxel_sessions), len(bola_sessions))
    for _ in range(participants):
        pair = int(rng.integers(0, pair_count))
        base = {
            "VOXEL": _session_opinion(voxel_sessions[pair]),
            "BOLA": _session_opinion(bola_sessions[pair]),
        }
        # Per-user bias (some users are harsher) and per-judgment noise.
        bias = float(rng.normal(0.0, 0.3))
        scores = {}
        for system in ("VOXEL", "BOLA"):
            scores[system] = {
                dim: _clip_mos(
                    base[system][dim] + bias + float(rng.normal(0.0, 0.35))
                )
                for dim in DIMENSIONS
            }
            for dim in DIMENSIONS:
                totals[system][dim] += scores[system][dim]
        if scores["VOXEL"]["experience"] >= scores["BOLA"]["experience"]:
            prefer_voxel += 1
        for system in ("VOXEL", "BOLA"):
            # Users threaten to stop when the experience is poor.
            stop_prob = _logistic(scores[system]["experience"], 2.4, -1.8)
            if rng.random() < stop_prob:
                would_stop[system] += 1

    mos = {
        system: {dim: totals[system][dim] / participants for dim in DIMENSIONS}
        for system in ("VOXEL", "BOLA")
    }
    return SurveyResult(
        participants=participants,
        mos=mos,
        preference_voxel=prefer_voxel / participants,
        would_stop={
            system: count / participants
            for system, count in would_stop.items()
        },
    )


def fig14_survey(
    video: str = "bbb",
    buffer_segments: int = 1,
    clips: int = 8,
    participants: int = 54,
    seed: int = 0,
) -> SurveyResult:
    """Fig. 14: MOS along four dimensions from simulated participants.

    The clips come from challenging low-bandwidth 3G sessions ("network
    throughput as low as 0.3 Mbps", §5.3), streamed once with VOXEL and
    once with BOLA over plain QUIC.
    """
    from repro.experiments.runner import ExperimentConfig, run_single
    from repro.network.traces import riiser_3g_corpus
    from repro.prep.prepare import get_prepared

    prepared = get_prepared(video)
    traces = riiser_3g_corpus(count=clips, seed=seed)
    voxel_sessions = [
        run_single(
            ExperimentConfig(
                video=video, abr="abr_star",
                buffer_segments=buffer_segments, repetitions=1,
            ),
            prepared=prepared, trace=trace,
        )
        for trace in traces
    ]
    bola_sessions = [
        run_single(
            ExperimentConfig(
                video=video, abr="bola", partially_reliable=False,
                buffer_segments=buffer_segments, repetitions=1,
            ),
            prepared=prepared, trace=trace,
        )
        for trace in traces
    ]
    return run_survey(
        voxel_sessions, bola_sessions, participants=participants, seed=seed
    )
