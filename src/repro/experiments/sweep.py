"""Sweep engine: a declarative grid becomes scenarios becomes results.

The paper's evaluation is a cartesian grid — {videos} x {ABRs} x
{traces} x {buffers} x {QUIC, QUIC*} (§5).  A :class:`SweepSpec`
describes such a grid declaratively (base field overrides, per-field
value lists, plus explicit extra scenarios), :meth:`SweepSpec.expand`
turns it into concrete :class:`~repro.core.spec.ScenarioSpec` cells
(deduplicated by content hash), and :func:`run_sweep` executes every
cell through the experiment runner — fanned out over fork() workers by
the same machinery :func:`~repro.experiments.runner.run_trials` uses,
with results folded in grid order so any worker count produces
byte-identical output.

Each scenario yields one JSONL row keyed by the spec's stable content
hash — the same hash the session stamps into its trace header
(``session_start.spec_hash``) — so sweep outputs, recorded traces, and
the grid file cross-reference each other::

    {"spec_hash": "6b1f...", "label": "bbb/bola/Q/verizon/buf3/round",
     "spec": {...}, "summary": {"buf_ratio_p90": ..., "ssim": ...}}

CLI: ``repro sweep --spec grid.json --workers 4 --out results.jsonl``
(or grid flags like ``--abrs bola,abr_star --buffers 1,3``);
``--dry-run`` prints the expansion without simulating.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.build import StackBuilder
from repro.core.spec import ScenarioSpec
from repro.experiments.execution import (
    CheckpointStore,
    ExecutionError,
    ExecutionPolicy,
    execute,
)
from repro.experiments.runner import TrialSummary, run_trials
from repro.obs import spans as _spans
from repro.obs.attribution import FleetAttributor
from repro.obs.ledger import build_ledger
from repro.obs.metrics import scoped_registry
from repro.obs.profiling import enable_profiling, profiling_enabled
from repro.obs.rollup import TraceRollup
from repro.prep.prepare import PreparedVideo, get_prepared

#: Keys a result row may carry.  ``summary`` is absent in --dry-run
#: rows; ``rollup`` and ``attribution`` appear only when the sweep ran
#: with streaming rollups enabled (``run_sweep(rollup=True)``), and
#: ``ledger`` only under ``run_sweep(profile=True)``.  A cell that
#: exhausted its retry budget in a non-strict run yields a ``degraded``
#: row instead: same identity keys, a ``degraded`` block (attempts,
#: causes) in place of ``summary``.
ROW_KEYS = ("spec_hash", "label", "spec", "summary", "rollup",
            "attribution", "ledger", "degraded")

#: Keys every row's ``summary`` object carries (superset allowed).
SUMMARY_KEYS = (
    "buf_ratio_p90", "buf_ratio_mean", "buf_ratio_stderr",
    "bitrate_kbps", "ssim", "data_skipped", "repetitions",
)


@dataclass
class SweepSpec:
    """A declarative sweep: base overrides + grid axes + extras.

    ``base`` maps :class:`ScenarioSpec` fields to values applied to
    every cell; ``grid`` maps fields to value *lists* expanded
    cartesianly (in key insertion order, first key outermost);
    ``scenarios`` lists explicit extra cells (each a partial field
    mapping layered over ``base``).  Unknown field names are rejected
    when cells are instantiated.
    """

    name: str = "sweep"
    base: Dict = field(default_factory=dict)
    grid: Dict = field(default_factory=dict)
    scenarios: List[Dict] = field(default_factory=list)

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ValueError(
                f"sweep spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {"name", "base", "grid", "scenarios"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown SweepSpec field(s) {unknown}; known fields: "
                f"{', '.join(sorted(known))}"
            )
        spec = cls(**data)
        for axis, values in spec.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"sweep grid axis {axis!r} must be a non-empty list"
                )
        return spec

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    def expand(self) -> List[ScenarioSpec]:
        """All concrete cells, deduplicated by content hash.

        Expansion order is deterministic: the cartesian product of the
        grid axes (first axis outermost), then the explicit scenarios.
        """
        cells: List[Dict] = []
        axes = list(self.grid)
        if axes:
            for combo in itertools.product(
                *(self.grid[axis] for axis in axes)
            ):
                fields = dict(self.base)
                fields.update(zip(axes, combo))
                cells.append(fields)
        elif self.base and not self.scenarios:
            cells.append(dict(self.base))
        for extra in self.scenarios:
            fields = dict(self.base)
            fields.update(extra)
            cells.append(fields)

        specs: List[ScenarioSpec] = []
        seen = set()
        for fields in cells:
            spec = ScenarioSpec.from_dict(fields)
            key = spec.spec_hash()
            if key not in seen:
                seen.add(key)
                specs.append(spec)
        return specs


# ---------------------------------------------------------------------------
#: Prepared videos for fork()ed sweep workers, inherited via the fork
#: memory snapshot: non-catalog videos (test fixtures) cannot be
#: re-prepared by name in a child process.
_SWEEP_PREPARED_MAP: Optional[Dict[str, PreparedVideo]] = None

#: ``(sample_rate, sample_seed)`` when the sweep collects streaming
#: rollups; inherited by fork()ed workers like the prepared map.  The
#: sampling decision is a pure hash of the session identity, so any
#: worker partitioning rolls up the same sessions.
_SWEEP_ROLLUP: Optional[Tuple[float, int]] = None

#: ``(profile, timers)`` snapshot for workers.  fork() freezes module
#: globals at pool creation, so each worker re-applies the timer flag
#: explicitly and decides from ``profile`` whether to build a per-cell
#: span profiler (satellite: ``--profile`` must not be a silent no-op
#: at ``workers>1``).
_SWEEP_PROFILE: Optional[Tuple[bool, bool]] = None


def _scenario_row(spec: ScenarioSpec, summary: TrialSummary) -> Dict:
    """One JSONL result row, keyed by the spec's content hash."""
    return {
        "spec_hash": spec.spec_hash(),
        "label": spec.label(),
        "spec": spec.to_dict(),
        "summary": dict(
            summary.row(), repetitions=len(summary.sessions)
        ),
    }


def _sweep_worker(spec: ScenarioSpec) -> Dict:
    """Run one cell: all its repetitions, in an isolated metrics scope.

    Both the serial and the forked path run exactly this function, so
    any worker count computes identical rows (the scope also keeps
    sweep cells from polluting the process-wide metrics registry, just
    as a fork()ed child's registry dies with the child).
    """
    profile, timers = (
        _SWEEP_PROFILE
        if _SWEEP_PROFILE is not None
        else (False, profiling_enabled())
    )
    enable_profiling(timers)
    prepared = None
    if _SWEEP_PREPARED_MAP is not None:
        prepared = _SWEEP_PREPARED_MAP.get(spec.video)
    rollup = fleet = observers = None
    if _SWEEP_ROLLUP is not None:
        rate, seed = _SWEEP_ROLLUP
        rollup = TraceRollup(sample_rate=rate, sample_seed=seed)
        fleet = FleetAttributor()
        observers = [rollup.feed, fleet.feed]
    # Install the cell profiler before any component is built: spans
    # capture their profiler at construction time.
    prof = _spans.SpanProfiler() if profile else None
    prev = _spans.install(prof) if profile else None
    t0 = time.perf_counter()
    try:
        with scoped_registry(merge=False):
            summary = run_trials(
                spec, prepared=prepared, workers=1, observers=observers
            )
    finally:
        if profile:
            prof.finalize()
            _spans.install(prev)
    wall_s = time.perf_counter() - t0
    row = _scenario_row(spec, summary)
    if rollup is not None:
        row["rollup"] = rollup.to_dict()
        row["attribution"] = fleet.combined().to_dict()
    if profile:
        row["ledger"] = build_ledger(
            prof, wall_s, label=spec.label(),
            spec_hash=spec.spec_hash(), meta=False,
        )
    return row


def sweep_run_key(
    specs: Sequence[ScenarioSpec],
    rollup: bool = False,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
    profile: bool = False,
    kind: str = "sweep",
) -> str:
    """Checkpoint-spool identity of one cell list + row shape.

    Covers every input that determines the task list or the shape of a
    row: the ordered cell hashes plus the rollup/sampling/profile
    knobs.  A spool written under one key cannot be resumed under
    another — that would fold rows from a different run.
    """
    digest = hashlib.sha256()
    digest.update(
        f"{kind}:rollup={int(rollup)}:rate={float(sample_rate)!r}:"
        f"seed={int(sample_seed)}:profile={int(profile)}".encode()
    )
    for spec in specs:
        digest.update(b"|")
        digest.update(spec.spec_hash().encode())
    return f"{kind}:{digest.hexdigest()[:16]}"


def _degraded_row(spec: ScenarioSpec, failure) -> Dict:
    """The row of a cell that exhausted its retry budget."""
    return {
        "spec_hash": spec.spec_hash(),
        "label": spec.label(),
        "spec": spec.to_dict(),
        "degraded": {
            "attempts": failure.attempts,
            "causes": list(failure.causes),
        },
    }


def run_sweep(
    sweep: Union[SweepSpec, Sequence[ScenarioSpec]],
    workers: int = 1,
    prepared_map: Optional[Dict[str, PreparedVideo]] = None,
    rollup: bool = False,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
    profile: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint_dir: Optional[str] = None,
    strict: bool = True,
) -> List[Dict]:
    """Execute every cell of a sweep; one result row per scenario.

    Args:
        sweep: a :class:`SweepSpec` (expanded here) or an explicit
            scenario list.
        workers: worker processes across cells; any K produces rows
            byte-identical to ``workers=1`` (cells are independent and
            results are folded in expansion order).
        prepared_map: ``video name -> PreparedVideo`` overriding the
            catalog (fixtures, benchmarks).
        rollup: attach a streaming :class:`TraceRollup` and causal
            attributor to every cell; rows gain serialized ``rollup``
            and ``attribution`` keys (``summary`` stays byte-identical
            to a plain run).
        sample_rate: per-session head-sampling rate for the rollups
            (hash-keyed, so the sampled set is worker-count invariant).
        sample_seed: seed of the sampling hash.
        profile: run every cell under a span profiler; rows gain a
            ``ledger`` key (per-subsystem attribution, hotspots, span
            tree — ``summary`` stays byte-identical to a plain run,
            and the ledger's ``deterministic`` block is worker-count
            invariant).
        policy: supervision knobs (per-cell deadline, retry budget,
            backoff) for the resilient pool.
        checkpoint_dir: crash-safe spool directory; completed cell rows
            are written atomically as they land (keyed by
            :func:`sweep_run_key`) and already-spooled cells are folded
            from disk on a re-run instead of re-simulating.
        strict: raise :class:`~repro.experiments.execution.ExecutionError`
            when a cell exhausts its retry budget.  With
            ``strict=False`` failed cells yield ``degraded`` rows
            (identity keys plus attempts/causes, no ``summary``) and
            the remaining rows stay valid.

    Returns:
        One row per scenario, in expansion order, each keyed by the
        spec's stable content hash.
    """
    specs = sweep.expand() if isinstance(sweep, SweepSpec) else list(sweep)
    for spec in specs:
        StackBuilder(spec, prepared_map=prepared_map).validate()
    # Pre-warm the catalog cache so fork()ed workers inherit every
    # prepared video by memory snapshot instead of re-preparing.
    for video in dict.fromkeys(spec.video for spec in specs):
        if prepared_map is None or video not in prepared_map:
            get_prepared(video)
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = CheckpointStore(
            checkpoint_dir,
            run_key=sweep_run_key(
                specs, rollup=rollup, sample_rate=sample_rate,
                sample_seed=sample_seed, profile=profile,
            ),
            tasks=len(specs),
        )
    global _SWEEP_PREPARED_MAP, _SWEEP_ROLLUP, _SWEEP_PROFILE
    _SWEEP_PREPARED_MAP = prepared_map
    _SWEEP_ROLLUP = (
        (float(sample_rate), int(sample_seed)) if rollup else None
    )
    _SWEEP_PROFILE = (bool(profile), profiling_enabled())
    try:
        outcome = execute(
            _sweep_worker,
            specs,
            workers=workers,
            policy=policy,
            labels=[f"cell {spec.label()}" for spec in specs],
            checkpoint=checkpoint,
        )
    finally:
        _SWEEP_PREPARED_MAP = None
        _SWEEP_ROLLUP = None
        _SWEEP_PROFILE = None
    if strict and outcome.failures:
        raise ExecutionError(outcome.failures, total=len(specs))
    failures = {failure.index: failure for failure in outcome.failures}
    return [
        _degraded_row(spec, failures[i]) if i in failures else row
        for i, (spec, row) in enumerate(zip(specs, outcome.results))
    ]


def dry_run_rows(
    sweep: Union[SweepSpec, Sequence[ScenarioSpec]],
    prepared_map: Optional[Dict[str, PreparedVideo]] = None,
) -> List[Dict]:
    """Expand and validate without simulating: rows minus ``summary``.

    Every component name is resolved against the registries, so a typo
    in a grid file fails here rather than mid-sweep.
    """
    specs = sweep.expand() if isinstance(sweep, SweepSpec) else list(sweep)
    rows = []
    for spec in specs:
        StackBuilder(spec, prepared_map=prepared_map).validate()
        rows.append({
            "spec_hash": spec.spec_hash(),
            "label": spec.label(),
            "spec": spec.to_dict(),
        })
    return rows


# ---------------------------------------------------------------------------
def rows_to_jsonl(rows: Sequence[Dict]) -> str:
    """Serialize rows as canonical JSONL (one compact object per line)."""
    return "\n".join(
        json.dumps(row, sort_keys=True, separators=(",", ":"))
        for row in rows
    ) + ("\n" if rows else "")


def parse_rows_jsonl(lines: Iterable[str]) -> List[Dict]:
    """Parse a sweep JSONL output (no validation; see validate_rows)."""
    rows = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"unparseable sweep row on line {i + 1}: {exc}"
            ) from None
    return rows


def validate_rows(rows: Sequence[Dict], require_summary: bool = True) -> int:
    """Validate sweep rows against the output schema; returns the count.

    Checks per row: the key set, that ``spec`` round-trips through
    :class:`ScenarioSpec` to exactly ``spec_hash`` (so the hash keying
    the row is honest), that ``label`` matches the spec, and that the
    summary carries numeric values for every expected aggregate.
    Raises ``ValueError`` on the first violation.
    """
    seen_hashes = set()
    for i, row in enumerate(rows):
        where = f"sweep row {i}"
        if not isinstance(row, dict):
            raise ValueError(f"{where}: not a JSON object")
        required = {"spec_hash", "label", "spec"}
        if require_summary and "degraded" not in row:
            required.add("summary")
        missing = sorted(required - set(row))
        if missing:
            raise ValueError(f"{where}: missing key(s) {missing}")
        extra = sorted(set(row) - set(ROW_KEYS))
        if extra:
            raise ValueError(f"{where}: unknown key(s) {extra}")
        if "degraded" in row:
            block = row["degraded"]
            if "summary" in row:
                raise ValueError(
                    f"{where}: carries both summary and degraded"
                )
            if (
                not isinstance(block, dict)
                or not isinstance(block.get("attempts"), int)
                or not isinstance(block.get("causes"), list)
            ):
                raise ValueError(
                    f"{where}: degraded block must carry attempts "
                    f"(int) and causes (list)"
                )
        spec = ScenarioSpec.from_dict(row["spec"])
        if spec.spec_hash() != row["spec_hash"]:
            raise ValueError(
                f"{where}: spec_hash {row['spec_hash']!r} does not match "
                f"the spec's content hash {spec.spec_hash()!r}"
            )
        if row["label"] != spec.label():
            raise ValueError(
                f"{where}: label {row['label']!r} does not match the "
                f"spec's label {spec.label()!r}"
            )
        if row["spec_hash"] in seen_hashes:
            raise ValueError(
                f"{where}: duplicate spec_hash {row['spec_hash']!r}"
            )
        seen_hashes.add(row["spec_hash"])
        if "summary" in row:
            summary = row["summary"]
            if not isinstance(summary, dict):
                raise ValueError(f"{where}: summary is not an object")
            for key in SUMMARY_KEYS:
                if key not in summary:
                    raise ValueError(
                        f"{where}: summary missing {key!r}"
                    )
                if not isinstance(summary[key], (int, float)):
                    raise ValueError(
                        f"{where}: summary[{key!r}] is not numeric"
                    )
    return len(rows)


__all__ = [
    "ROW_KEYS",
    "SUMMARY_KEYS",
    "SweepSpec",
    "run_sweep",
    "sweep_run_key",
    "dry_run_rows",
    "rows_to_jsonl",
    "parse_rows_jsonl",
    "validate_rows",
]
