"""Text rendering of experiment outputs.

The figure functions in :mod:`repro.experiments.figures` return plain
data (row lists, CDF dicts, numpy series).  This module renders any of
those shapes as aligned text tables and compact ASCII CDF summaries — the
same artifact the benchmarks print, reusable from the CLI and scripts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def format_table(rows: Sequence[Dict], columns: Sequence[str],
                 title: str = "") -> str:
    """Align a list of row dictionaries into a text table."""
    lines: List[str] = []
    if title:
        lines.append(f"=== {title} ===")
    header = " | ".join(f"{c:>14s}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:14.4g}")
            else:
                cells.append(f"{str(value):>14s}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def summarize_cdf(cdf: Dict[str, np.ndarray]) -> str:
    """One-line percentile summary of a CDF dict ({"x": ..., "y": ...})."""
    x = np.asarray(cdf["x"], dtype=float)
    if len(x) == 0:
        return "(empty)"
    p = np.percentile
    return (
        f"p10={p(x, 10):.4g} p50={p(x, 50):.4g} "
        f"p90={p(x, 90):.4g} max={x.max():.4g} (n={len(x)})"
    )


def ascii_cdf(cdf: Dict[str, np.ndarray], width: int = 50,
              label: str = "") -> str:
    """Render a CDF as a crude ASCII plot (one row per decile)."""
    x = np.asarray(cdf["x"], dtype=float)
    if len(x) == 0:
        return f"{label}: (empty)"
    lines = [f"{label}"] if label else []
    lo, hi = float(x.min()), float(x.max())
    span = max(hi - lo, 1e-12)
    for decile in range(0, 101, 10):
        value = float(np.percentile(x, decile))
        bar = int((value - lo) / span * width)
        lines.append(f"  {decile:3d}% |{'#' * bar:<{width}s}| {value:.4g}")
    return "\n".join(lines)


def _is_cdf(value) -> bool:
    return isinstance(value, dict) and set(value) == {"x", "y"}


def render(name: str, result) -> str:
    """Render any figure-function output by structural dispatch."""
    lines: List[str] = [f"### {name} ###"]

    if isinstance(result, list) and result and isinstance(result[0], dict):
        columns = list(result[0].keys())
        lines.append(format_table(result, columns))
        return "\n".join(lines)

    if isinstance(result, dict):
        # {"rows": [...], "cdfs": {...}} composites.
        if "rows" in result:
            rows = result["rows"]
            if rows:
                lines.append(format_table(rows, list(rows[0].keys())))
            for label, cdf in result.get("cdfs", {}).items():
                lines.append(f"{label}: {summarize_cdf(cdf)}")
            return "\n".join(lines)
        # Nested dicts of CDFs / scalars / arrays.
        for key, value in result.items():
            if _is_cdf(value):
                lines.append(f"{key}: {summarize_cdf(value)}")
            elif isinstance(value, dict):
                parts = []
                for sub_key, sub_value in value.items():
                    if _is_cdf(sub_value):
                        parts.append(
                            f"    {sub_key}: {summarize_cdf(sub_value)}"
                        )
                    elif isinstance(sub_value, (int, float)):
                        parts.append(f"    {sub_key}: {sub_value:.4g}")
                    elif isinstance(sub_value, np.ndarray):
                        parts.append(
                            f"    {sub_key}: mean={sub_value.mean():.4g} "
                            f"(n={len(sub_value)})"
                        )
                lines.append(f"{key}:")
                lines.extend(parts)
            elif isinstance(value, np.ndarray):
                lines.append(
                    f"{key}: mean={value.mean():.4g} "
                    f"min={value.min():.4g} max={value.max():.4g}"
                )
            else:
                lines.append(f"{key}: {value}")
        return "\n".join(lines)

    # Survey results and other dataclasses with a usable repr.
    return "\n".join(lines + [repr(result)])
