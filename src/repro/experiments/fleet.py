"""Fleet-scale sharded simulation: thousands of clients across cells.

VOXEL's testbed streams one client at a time, but the cross-layer
claims only matter at scale — fleets of heterogeneous clients
contending in many cells, where the stall *tails* (p99/p99.9) dominate
user experience.  This module generalizes the multiclient substrate
into a sharded fleet engine:

* :class:`FleetSpec` — a frozen, hashable description of a fleet: a
  weighted population of :class:`ClientGroup` slices expanded
  deterministically from the seed, partitioned round-robin into
  ``shards`` cells, each cell with its own bottleneck trace weather
  (``seed + shard``) and fault plan.
* :func:`run_fleet` — the per-shard executor.  Each worker builds one
  cell with :func:`~repro.experiments.multiclient.build_shard`, runs
  every session on its own :class:`~repro.network.events.SimKernel`,
  and returns **mergeable artifacts only**: a serialized
  :class:`~repro.obs.rollup.TraceRollup`, a serialized
  :class:`~repro.obs.attribution.FleetAttributor`, Jain sufficient
  statistics, per-group aggregate sums, and (under a profiler) a span
  tree.  The parent folds them in shard order — never raw traces or
  per-event history — so peak memory is O(shards), and the fold is
  byte-identical at any worker count (``workers=1`` runs the exact
  same worker function serially).
* :meth:`FleetResult.report` / :meth:`FleetResult.fleet_hash` — the
  deterministic fleet report (QoE distribution percentiles, stall
  tails from reservoir histograms, per-shard and fleet-wide Jain's
  index, causal attribution partition) and its canonical-JSON content
  hash, the anchor the worker-count byte-identity claim is pinned to.

Determinism by construction: the population expansion hashes
``(seed, client index)``, shard membership is a pure function of the
client index, session ids are globally unique (so hash-keyed rollup
sampling is worker-partition invariant), and every per-shard artifact
is folded in shard order.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.experiments.execution import (
    CheckpointStore,
    ExecutionError,
    ExecutionPolicy,
    execute,
)
from repro.experiments.multiclient import ClientSpec, run_multiclient
from repro.network.traces import get_trace
from repro.obs import spans
from repro.obs.attribution import FleetAttributor, format_attribution
from repro.obs.metrics import scoped_registry
from repro.obs.rollup import TraceRollup, format_rollup
from repro.prep.prepare import PreparedVideo, get_prepared

FLEET_REPORT_VERSION = 1


@dataclass(frozen=True)
class ClientGroup:
    """One weighted slice of a fleet population.

    A group is the declarative form of a
    :class:`~repro.experiments.multiclient.ClientSpec` plus a sampling
    ``weight``: client *i* of the fleet draws its group from the
    weight distribution at the point ``sha256(seed, i)`` lands, so the
    realized mix approximates the weights and is a pure function of
    the spec.
    """

    abr: str = "bola"
    video: str = "bbb"
    partially_reliable: bool = True
    buffer_segments: int = 3
    weight: float = 1.0

    def __post_init__(self):
        if not self.weight > 0:
            raise ValueError(
                f"group weight must be > 0, got {self.weight}"
            )
        if self.buffer_segments < 1:
            raise ValueError("buffer_segments must be >= 1")

    def label(self) -> str:
        flavour = "Q*" if self.partially_reliable else "Q"
        return f"{self.abr}/{flavour}/{self.video}/buf{self.buffer_segments}"

    def to_client_spec(self) -> ClientSpec:
        return ClientSpec(
            abr=self.abr,
            video=self.video,
            partially_reliable=self.partially_reliable,
            buffer_segments=self.buffer_segments,
        )

    def to_dict(self) -> Dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict) -> "ClientGroup":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ClientGroup field(s) {unknown}; known fields: "
                f"{', '.join(sorted(known))}"
            )
        return cls(**data)


#: The default mixed fleet: both ABRs, both transport flavours, equal
#: weight (the multiclient default cycle, expressed as a population).
DEFAULT_GROUPS = (
    ClientGroup(abr="abr_star", partially_reliable=True),
    ClientGroup(abr="bola", partially_reliable=True),
    ClientGroup(abr="abr_star", partially_reliable=False),
    ClientGroup(abr="bola", partially_reliable=False),
)


@dataclass(frozen=True)
class FleetSpec:
    """One frozen, hashable fleet configuration.

    Mirrors the :class:`~repro.core.spec.ScenarioSpec` contract:
    frozen, JSON-round-trippable (:meth:`to_dict`/:meth:`from_dict`
    with unknown keys rejected), and carrying a stable canonical-JSON
    content hash (:meth:`spec_hash`) independent of process, platform,
    and ``PYTHONHASHSEED``.
    """

    clients: int = 1000
    shards: int = 8
    groups: Tuple[ClientGroup, ...] = DEFAULT_GROUPS
    trace: str = "verizon"
    seed: int = 0
    backend: str = "round"
    queue_packets: int = 32
    base_rtt: float = 0.060
    faults: Optional[Dict] = None
    request_timeout_s: Optional[float] = None
    retry_budget: int = 3
    retry_backoff_s: float = 0.5
    sample_rate: float = 1.0
    sample_seed: int = 0

    def __post_init__(self):
        if isinstance(self.groups, list):
            object.__setattr__(self, "groups", tuple(self.groups))
        if self.clients < 1:
            raise ValueError("a fleet needs at least one client")
        if self.shards < 1:
            raise ValueError("a fleet needs at least one shard")
        if self.shards > self.clients:
            raise ValueError(
                f"{self.shards} shards for {self.clients} clients: "
                "every shard must hold at least one client"
            )
        if not self.groups:
            raise ValueError("a fleet needs at least one client group")
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample rate {self.sample_rate} out of [0, 1]"
            )

    # ------------------------------------------------------------------
    #: Fields omitted from the canonical JSON (and the hash) at their
    #: defaults, so fleets that don't use them keep stable hashes as
    #: new knobs are added.
    _HASH_NEUTRAL_DEFAULTS = {
        "faults": None,
        "request_timeout_s": None,
        "retry_budget": 3,
        "retry_backoff_s": 0.5,
    }

    def to_dict(self) -> Dict:
        """Plain JSON-ready dict (groups serialized as objects)."""
        data: Dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in self._HASH_NEUTRAL_DEFAULTS:
                if value == self._HASH_NEUTRAL_DEFAULTS[f.name]:
                    continue
            if f.name == "groups":
                value = [group.to_dict() for group in value]
            data[f.name] = value
        return data

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "FleetSpec":
        """Build a spec from a mapping, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ValueError(
                f"fleet spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown FleetSpec field(s) {unknown}; known fields: "
                f"{', '.join(sorted(known))}"
            )
        kwargs = dict(data)
        if "groups" in kwargs:
            kwargs["groups"] = tuple(
                ClientGroup.from_dict(group) for group in kwargs["groups"]
            )
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        return cls.from_dict(json.loads(text))

    def spec_hash(self) -> str:
        """Stable 12-hex-digit content hash of the canonical JSON."""
        digest = hashlib.sha256(self.to_json().encode("utf-8"))
        return digest.hexdigest()[:12]

    def __hash__(self) -> int:  # faults is a dict; hash by content
        return hash(self.spec_hash())

    def with_(self, **overrides) -> "FleetSpec":
        """A copy with fields replaced (frozen-dataclass convenience)."""
        return replace(self, **overrides)


# ---------------------------------------------------------------------------
# Deterministic population expansion and shard assignment.
# ---------------------------------------------------------------------------
def _client_point(seed: int, index: int) -> float:
    """Client *i*'s draw in [0, 1): a pure function of (seed, index).

    Same construction as the rollup's hash-keyed session sampling —
    sha256, never Python's randomized ``hash()`` — so the population
    is identical across processes, platforms, and worker counts.
    """
    digest = hashlib.sha256(f"{seed}:client:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def group_assignment(spec: FleetSpec) -> List[int]:
    """Group index for every client, expanded from the seed.

    Client *i* picks the group whose cumulative-weight interval
    contains ``_client_point(seed, i) * total_weight``.  A single
    group (or one carrying all the weight) degenerates to a
    homogeneous fleet.
    """
    cumulative: List[float] = []
    total = 0.0
    for group in spec.groups:
        total += group.weight
        cumulative.append(total)
    out = []
    last = len(spec.groups) - 1
    for index in range(spec.clients):
        point = _client_point(spec.seed, index) * total
        out.append(min(bisect_right(cumulative, point), last))
    return out


def expand_population(spec: FleetSpec) -> List[ClientSpec]:
    """The full fleet population as concrete per-client specs."""
    return [
        spec.groups[g].to_client_spec() for g in group_assignment(spec)
    ]


def shard_clients(spec: FleetSpec, shard: int) -> List[int]:
    """Global client indices assigned to one shard (round-robin).

    Round-robin on the global index spreads every group across every
    shard and keeps membership a pure function of the index — no
    shard ever depends on another shard's contents.
    """
    if not 0 <= shard < spec.shards:
        raise ValueError(f"shard {shard} out of range [0, {spec.shards})")
    return list(range(shard, spec.clients, spec.shards))


def fleet_session_id(spec: FleetSpec, index: int, group: ClientGroup) -> str:
    """Globally unique session id for client ``index``.

    Uniqueness across shards matters: the rollup's head-sampling is a
    hash of ``(sample_seed, session_id)``, so reused per-shard ids
    would correlate sampling decisions between cells.
    """
    shard = index % spec.shards
    flavour = "Qstar" if group.partially_reliable else "Q"
    return f"s{shard}-f{index}-{group.abr}-{flavour}"


# ---------------------------------------------------------------------------
# The per-shard executor.
# ---------------------------------------------------------------------------
#: Fork-inherited worker inputs (the runner's _PARALLEL_* pattern):
#: children snapshot these at pool creation, so a worker's inputs are
#: identical to an in-process call.
_FLEET_SPEC: Optional[FleetSpec] = None
_FLEET_PREPARED: Optional[Dict[str, PreparedVideo]] = None
_FLEET_PROFILE: bool = False
_FLEET_ROWS: bool = False


def _run_shard(
    spec: FleetSpec,
    shard: int,
    prepared_map: Optional[Dict[str, PreparedVideo]],
    keep_rows: bool,
) -> Dict:
    """Run one cell; return mergeable artifacts only (never traces)."""
    indices = shard_clients(spec, shard)
    assignment = group_assignment(spec)
    groups = [spec.groups[assignment[i]] for i in indices]
    client_specs = [group.to_client_spec() for group in groups]
    session_ids = [
        fleet_session_id(spec, i, group)
        for i, group in zip(indices, groups)
    ]
    rollup = TraceRollup(
        sample_rate=spec.sample_rate, sample_seed=spec.sample_seed
    )
    attributor = FleetAttributor()
    result = run_multiclient(
        client_specs,
        trace=get_trace(spec.trace, seed=spec.seed + shard),
        seed=spec.seed + shard,
        queue_packets=spec.queue_packets,
        base_rtt=spec.base_rtt,
        backend=spec.backend,
        prepared_map=prepared_map,
        faults=spec.faults,
        request_timeout_s=spec.request_timeout_s,
        retry_budget=spec.retry_budget,
        retry_backoff_s=spec.retry_backoff_s,
        observers=[rollup.feed, attributor.feed],
        session_ids=session_ids,
    )
    rates = [client.throughput_mbps for client in result.clients]
    group_stats: Dict[str, Dict[str, float]] = {}
    for group, client in zip(groups, result.clients):
        stats = group_stats.setdefault(group.label(), {
            "clients": 0.0,
            "ssim_sum": 0.0,
            "bitrate_sum": 0.0,
            "stall_sum": 0.0,
            "rate_sum": 0.0,
        })
        metrics = client.metrics
        stats["clients"] += 1.0
        stats["ssim_sum"] += metrics.mean_ssim
        stats["bitrate_sum"] += metrics.avg_bitrate_kbps
        stats["stall_sum"] += metrics.total_stall
        stats["rate_sum"] += client.throughput_mbps
    out = {
        "shard": shard,
        "clients": len(client_specs),
        "trace_seed": spec.seed + shard,
        "jain": result.jain_index,
        # Jain sufficient statistics: (n, sum r, sum r^2) merge across
        # shards without retaining per-client rates in the parent.
        "rates": [
            float(len(rates)),
            float(sum(rates)),
            float(sum(r * r for r in rates)),
        ],
        "groups": group_stats,
        "rollup": rollup.to_dict(),
        "attribution": attributor.to_dict(),
    }
    if keep_rows:
        out["rows"] = result.rows()
    return out


def _shard_worker(shard: int) -> Dict:
    """Process-pool entry point for one shard.

    Runs inside a throwaway metrics scope so serial and forked
    execution leave the parent's process-wide registry in the same
    state; under ``--profile`` the shard records its own span tree,
    returned for the parent's in-order fold.
    """
    spec = _FLEET_SPEC
    profile = _FLEET_PROFILE
    prof = spans.SpanProfiler() if profile else None
    prev = spans.install(prof) if profile else None
    try:
        with scoped_registry(merge=False):
            out = _run_shard(spec, shard, _FLEET_PREPARED, _FLEET_ROWS)
    finally:
        if profile:
            prof.finalize()
            spans.install(prev)
    if profile:
        out["spans"] = prof.to_dict()
    return out


@dataclass
class FleetResult:
    """The merged outcome of a fleet run (O(shards) state)."""

    spec: FleetSpec
    shards: List[Dict]                  # per-shard summary rows
    rollup: TraceRollup                 # fleet-wide distributions
    attribution: FleetAttributor        # fleet-wide causal partition
    groups: Dict[str, Dict[str, float]]  # per-group aggregate sums
    clients: int
    jain_index: float                   # fleet-wide, from merged stats
    rows: Optional[List[Dict]] = None   # per-client rows (keep_rows)
    #: Degraded-run block (missing shards, attempts, causes) when any
    #: shard exhausted its retry budget; None on whole runs.
    degraded: Optional[Dict] = None
    #: Shards folded from a checkpoint spool instead of re-run.
    resumed: int = 0

    def report(self) -> Dict:
        """The deterministic fleet report (wall-clock free).

        Everything here is a pure function of the spec: QoE and stall
        distributions (reservoir percentiles), per-shard and
        fleet-wide Jain's index, the attribution partition, and
        per-group means.  :meth:`fleet_hash` hashes this dict, so any
        nondeterminism anywhere in the stack shows up as a hash
        mismatch between worker counts.

        The ``degraded`` block appears *only* when shards are missing:
        whole runs — including interrupted-then-resumed ones — keep the
        exact report (and hash) of the pre-supervision era, which is
        what lets CI gate resume on byte-identity.
        """
        group_rows = {}
        for label in sorted(self.groups):
            stats = self.groups[label]
            count = stats["clients"] or 1.0
            group_rows[label] = {
                "clients": int(stats["clients"]),
                "mean_ssim": stats["ssim_sum"] / count,
                "mean_bitrate_kbps": stats["bitrate_sum"] / count,
                "mean_stall_s": stats["stall_sum"] / count,
                "mean_throughput_mbps": stats["rate_sum"] / count,
            }
        report = {
            "fleet_version": FLEET_REPORT_VERSION,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec.spec_hash(),
            "clients": self.clients,
            "shards": self.shards,
            "jain": {
                "fleet": self.jain_index,
                "per_shard": [row["jain"] for row in self.shards],
            },
            "rollup": self.rollup.summary(),
            "attribution": self.attribution.combined().to_dict(),
            "groups": group_rows,
        }
        if self.degraded is not None:
            report["degraded"] = self.degraded
        return report

    def fleet_hash(self) -> str:
        """16-hex content hash of the canonical report JSON."""
        payload = json.dumps(
            self.report(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def run_fleet(
    spec: FleetSpec,
    workers: int = 1,
    prepared_map: Optional[Dict[str, PreparedVideo]] = None,
    keep_rows: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint_dir: Optional[str] = None,
    strict: bool = True,
) -> FleetResult:
    """Run a fleet: shards fan out over workers, artifacts fold back.

    Args:
        spec: the frozen fleet description.
        workers: worker processes; shards are the unit of work.  Any K
            produces a byte-identical :meth:`FleetResult.report` (and
            therefore :meth:`~FleetResult.fleet_hash`) to ``workers=1``
            — the serial path runs the exact same shard worker, and
            artifacts fold in shard order either way.
        prepared_map: video name -> PreparedVideo for non-catalog
            videos (fixtures, benchmarks); catalog videos are
            pre-warmed into the process cache before forking so
            children inherit them by memory snapshot.
        keep_rows: retain per-client result rows on the result.  Off
            by default: rows are O(clients), and the fleet report
            doesn't need them.
        policy: supervision knobs (per-shard deadline, retry budget,
            backoff) for the resilient pool; default
            :data:`~repro.experiments.execution.DEFAULT_POLICY`.
        checkpoint_dir: crash-safe spool directory.  Completed shard
            artifacts are written atomically as they land, keyed by the
            fleet's ``spec_hash``; re-running with the same directory
            folds spooled shards from disk instead of re-running them
            (:attr:`FleetResult.resumed` counts them), and the resumed
            report is byte-identical to an uninterrupted run.
        strict: raise :class:`~repro.experiments.execution.ExecutionError`
            when any shard exhausts its retry budget (library default).
            With ``strict=False`` the run degrades gracefully instead:
            missing shards are dropped from the fold and documented in
            :attr:`FleetResult.degraded`, and the partial statistics
            remain valid for the shards that completed.

    An ambient span profiler (``spans.install``) means "profile every
    shard": each shard records its own tree and the parent folds them
    in shard order, byte-identical at any worker count.
    """
    global _FLEET_SPEC, _FLEET_PREPARED, _FLEET_PROFILE, _FLEET_ROWS
    parent_prof = spans.current()
    profile = parent_prof is not None
    # Pre-warm every catalog video the population needs: forked workers
    # inherit the cache, and the serial path skips repeated prepares.
    names = {group.video for group in spec.groups}
    if prepared_map:
        names -= set(prepared_map)
    for name in sorted(names):
        get_prepared(name)

    checkpoint = None
    if checkpoint_dir is not None:
        # keep_rows/profile change the artifact shape, so they are part
        # of the spool identity: resuming a --profile run from a plain
        # spool would silently fold span-less shards.
        checkpoint = CheckpointStore(
            checkpoint_dir,
            run_key=(
                f"fleet:{spec.spec_hash()}:rows={int(keep_rows)}:"
                f"profile={int(profile)}"
            ),
            tasks=spec.shards,
        )

    _FLEET_SPEC = spec
    _FLEET_PREPARED = prepared_map
    _FLEET_PROFILE = profile
    _FLEET_ROWS = keep_rows
    try:
        outcome = execute(
            _shard_worker,
            list(range(spec.shards)),
            workers=workers,
            policy=policy,
            labels=[f"shard {i}" for i in range(spec.shards)],
            checkpoint=checkpoint,
        )
    finally:
        _FLEET_SPEC = None
        _FLEET_PREPARED = None
        _FLEET_PROFILE = False
        _FLEET_ROWS = False
    if strict and outcome.failures:
        raise ExecutionError(outcome.failures, total=spec.shards)

    # Fold in shard order — the other half of the determinism anchor.
    # Quarantined shards are None slots; the fold skips them (their
    # absence is documented in the degraded block).
    rollup: Optional[TraceRollup] = None
    attribution = FleetAttributor()
    shard_rows: List[Dict] = []
    groups: Dict[str, Dict[str, float]] = {}
    rate_n = 0.0
    rate_sum = 0.0
    rate_sq = 0.0
    total_clients = 0
    rows: Optional[List[Dict]] = [] if keep_rows else None
    failed = {failure.index for failure in outcome.failures}
    for shard_index, result in enumerate(outcome.results):
        if shard_index in failed:
            continue
        if rollup is None:
            rollup = TraceRollup.from_dict(result["rollup"])
        else:
            rollup.merge(TraceRollup.from_dict(result["rollup"]))
        attribution.merge(FleetAttributor.from_dict(result["attribution"]))
        if parent_prof is not None and "spans" in result:
            parent_prof.merge_dict(result["spans"])
        shard_rows.append({
            "shard": result["shard"],
            "clients": result["clients"],
            "trace_seed": result["trace_seed"],
            "jain": result["jain"],
        })
        n, total, square = result["rates"]
        rate_n += n
        rate_sum += total
        rate_sq += square
        total_clients += result["clients"]
        for label, stats in result["groups"].items():
            merged = groups.setdefault(
                label, {key: 0.0 for key in stats}
            )
            for key, value in stats.items():
                merged[key] += value
        if rows is not None:
            rows.extend(result["rows"])
    if rate_n and rate_sq:
        jain = rate_sum * rate_sum / (rate_n * rate_sq)
    else:
        jain = 1.0
    return FleetResult(
        spec=spec,
        shards=shard_rows,
        rollup=rollup if rollup is not None else TraceRollup(
            sample_rate=spec.sample_rate, sample_seed=spec.sample_seed
        ),
        attribution=attribution,
        groups=groups,
        clients=total_clients,
        jain_index=jain,
        rows=rows,
        degraded=outcome.degraded(),
        resumed=outcome.resumed,
    )


def format_fleet_report(result: FleetResult) -> str:
    """Human-readable fleet report."""
    report = result.report()
    spec = result.spec
    lines = [
        f"=== fleet: {report['clients']} clients / "
        f"{len(report['shards'])} shards "
        f"(spec {report['spec_hash']}) ===",
        f"trace {spec.trace} seed {spec.seed} backend {spec.backend} "
        f"sample {spec.sample_rate:g}",
        f"{'shard':>5s} {'clients':>8s} {'seed':>6s} {'jain':>7s}",
    ]
    for row in report["shards"]:
        lines.append(
            f"{row['shard']:5d} {row['clients']:8d} "
            f"{row['trace_seed']:6d} {row['jain']:7.4f}"
        )
    lines.append(f"fleet Jain's index: {report['jain']['fleet']:.4f}")
    if "degraded" in report:
        block = report["degraded"]
        lines.append(
            f"DEGRADED: {block['completed']}/{block['total']} shards "
            f"completed; partial statistics below"
        )
        for missing in block["missing"]:
            lines.append(
                f"  missing {missing['label']} after "
                f"{missing['attempts']} attempt(s): "
                f"{', '.join(missing['causes'])}"
            )
    lines.append("")
    for label, stats in report["groups"].items():
        lines.append(
            f"group {label:28s} n={stats['clients']:<5d} "
            f"ssim={stats['mean_ssim']:.3f} "
            f"kbps={stats['mean_bitrate_kbps']:.0f} "
            f"stall={stats['mean_stall_s']:.2f}s "
            f"mbps={stats['mean_throughput_mbps']:.2f}"
        )
    lines.append("")
    lines.append(format_rollup(report["rollup"]))
    lines.append(format_attribution(result.attribution.combined()))
    lines.append(f"fleet hash {result.fleet_hash()}")
    return "\n".join(lines)
