"""Experiment harness: runner, per-figure reproductions, user survey."""

from repro.experiments.runner import (
    ExperimentConfig,
    TrialSummary,
    compare,
    run_single,
    run_trials,
)
from repro.experiments.survey import (
    DIMENSIONS,
    SurveyResult,
    fig14_survey,
    run_survey,
)
from repro.experiments import figures

__all__ = [
    "ExperimentConfig",
    "TrialSummary",
    "compare",
    "run_single",
    "run_trials",
    "DIMENSIONS",
    "SurveyResult",
    "fig14_survey",
    "run_survey",
    "figures",
]
