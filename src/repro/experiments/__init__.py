"""Experiment harness: runner, per-figure reproductions, user survey."""

from repro.experiments.execution import (
    EXIT_DEGRADED,
    CheckpointError,
    CheckpointStore,
    ExecutionError,
    ExecutionInterrupted,
    ExecutionPolicy,
    MapOutcome,
    TaskFailure,
    WorkerFaultInjector,
    execute,
    install_worker_fault,
    supervised_map,
)
from repro.experiments.fleet import (
    ClientGroup,
    FleetResult,
    FleetSpec,
    expand_population,
    format_fleet_report,
    run_fleet,
)
from repro.experiments.multiclient import (
    ClientSpec,
    MulticlientResult,
    Shard,
    build_shard,
    run_multiclient,
)
from repro.experiments.runner import (
    ExperimentConfig,
    TrialSummary,
    compare,
    fork_map,
    run_single,
    run_trials,
)
from repro.experiments.survey import (
    DIMENSIONS,
    SurveyResult,
    fig14_survey,
    run_survey,
)
from repro.experiments.sweep import (
    SweepSpec,
    dry_run_rows,
    run_sweep,
    validate_rows,
)
from repro.experiments import figures

__all__ = [
    "EXIT_DEGRADED",
    "CheckpointError",
    "CheckpointStore",
    "ClientGroup",
    "ClientSpec",
    "ExecutionError",
    "ExecutionInterrupted",
    "ExecutionPolicy",
    "MapOutcome",
    "TaskFailure",
    "WorkerFaultInjector",
    "execute",
    "install_worker_fault",
    "supervised_map",
    "ExperimentConfig",
    "FleetResult",
    "FleetSpec",
    "MulticlientResult",
    "Shard",
    "TrialSummary",
    "build_shard",
    "compare",
    "expand_population",
    "fork_map",
    "format_fleet_report",
    "run_fleet",
    "run_multiclient",
    "run_single",
    "run_trials",
    "SweepSpec",
    "dry_run_rows",
    "run_sweep",
    "validate_rows",
    "DIMENSIONS",
    "SurveyResult",
    "fig14_survey",
    "run_survey",
    "figures",
]
