"""Experiment harness: runner, per-figure reproductions, user survey."""

from repro.experiments.runner import (
    ExperimentConfig,
    TrialSummary,
    compare,
    run_single,
    run_trials,
)
from repro.experiments.survey import (
    DIMENSIONS,
    SurveyResult,
    fig14_survey,
    run_survey,
)
from repro.experiments.sweep import (
    SweepSpec,
    dry_run_rows,
    run_sweep,
    validate_rows,
)
from repro.experiments import figures

__all__ = [
    "ExperimentConfig",
    "TrialSummary",
    "compare",
    "run_single",
    "run_trials",
    "SweepSpec",
    "dry_run_rows",
    "run_sweep",
    "validate_rows",
    "DIMENSIONS",
    "SurveyResult",
    "fig14_survey",
    "run_survey",
    "figures",
]
