"""Per-figure/table reproduction functions.

Every table and figure of the paper's evaluation has a function here that
regenerates its data: the same workloads, parameter sweeps, baselines and
aggregation, returning the rows/series the paper plots.  Benchmarks in
``benchmarks/`` call these with reduced repetition counts; passing
``repetitions=30`` reproduces the paper's full protocol.

The functions return plain dictionaries (series name -> numbers) so they
are equally usable from tests, benchmarks, and the examples.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import ExperimentConfig, TrialSummary, run_trials
from repro.network.traces import (
    constant_trace,
    riiser_3g_corpus,
    step_trace,
)
from repro.player.session import SessionConfig, StreamingSession
from repro.prep.analysis import compute_drop_curve, droppable_positions
from repro.prep.prepare import get_prepared
from repro.prep.ranking import Ordering
from repro.qoe.metrics import PSNR, SSIM, VMAF
from repro.qoe.model import pristine_score
from repro.video.library import get_video
from repro.abr import make_abr

# The four canonical videos of Tab. 1 and the showcased YouTube videos.
CANONICAL = ("bbb", "ed", "sintel", "tos")
SHOWCASED_YOUTUBE = ("p2", "p4")
ALL_YOUTUBE = tuple(f"p{i}" for i in range(1, 11))


def _cdf(values: Sequence[float]) -> Dict[str, np.ndarray]:
    array = np.sort(np.asarray(values, dtype=float))
    return {
        "x": array,
        "y": np.arange(1, len(array) + 1) / max(len(array), 1),
    }


# ----------------------------------------------------------------------
# Tables 1-3: video characterization.
# ----------------------------------------------------------------------

def table1_videos(videos: Sequence[str] = CANONICAL) -> List[Dict]:
    """Tab. 1: per-video genre and segment-bitrate standard deviation."""
    rows = []
    for name in videos:
        video = get_video(name)
        rows.append(
            {
                "video": name,
                "title": video.profile.title,
                "genre": video.profile.genre,
                "std_mbps": video.size_std_mbps(12),
                "segments": video.num_segments,
            }
        )
    return rows


def table2_ladder(video: str = "bbb") -> List[Dict]:
    """Tab. 2: quality levels with realized average sizes."""
    encoded = get_video(video)
    rows = []
    for level in encoded.ladder:
        total_mb = encoded.total_size_bytes(level.index) / 1e6
        rows.append(
            {
                "quality": level.name,
                "resolution": f"{level.height}p",
                "avg_bitrate_mbps": level.avg_bitrate_mbps,
                "total_size_mb": total_mb,
            }
        )
    return rows


def table3_youtube() -> List[Dict]:
    """Tab. 3: the ten public YouTube videos."""
    return table1_videos(ALL_YOUTUBE)


# ----------------------------------------------------------------------
# Fig. 1: frame-drop tolerance and low-quality SSIM.
# ----------------------------------------------------------------------

def fig1_drop_tolerance(
    videos: Sequence[str] = CANONICAL + SHOWCASED_YOUTUBE,
    cases: Sequence[Tuple[int, float]] = ((12, 0.99), (9, 0.99), (9, 0.95)),
    segment_stride: int = 1,
    ordering: Ordering = Ordering.QOE_RANK,
) -> Dict[str, Dict[str, Dict]]:
    """Fig. 1a-c: CDFs of tolerable frame-drop percentage per segment.

    Returns ``{f"Q{q}/{target}": {video: cdf}}``.
    """
    out: Dict[str, Dict[str, Dict]] = {}
    for quality, target in cases:
        key = f"Q{quality}/{target}"
        out[key] = {}
        for name in videos:
            video = get_video(name)
            tolerances = []
            for index in range(0, video.num_segments, segment_stride):
                curve = compute_drop_curve(
                    video.segment(quality, index), ordering
                )
                tolerances.append(curve.tolerance(target) * 100.0)
            out[key][name] = _cdf(tolerances)
    return out


def fig1d_low_quality_ssim(
    videos: Sequence[str] = ("tos", "bbb"),
    qualities: Sequence[int] = (6, 9),
) -> Dict[str, Dict]:
    """Fig. 1d: CDF of pristine segment SSIM at low quality levels."""
    out = {}
    for name in videos:
        video = get_video(name)
        for quality in qualities:
            scores = [
                pristine_score(video.segment(quality, index))
                for index in range(video.num_segments)
            ]
            out[f"{name}/Q{quality}"] = _cdf(scores)
    return out


# ----------------------------------------------------------------------
# Fig. 2: frame positions, orderings, virtual quality levels.
# ----------------------------------------------------------------------

def fig2a_droppable_positions(
    videos: Sequence[str] = ("bbb", "tos"),
    quality: int = 12,
    target: float = 0.99,
    segment_stride: int = 1,
) -> Dict[str, np.ndarray]:
    """Fig. 2a: per-position fraction of segments allowing that drop."""
    out = {}
    for name in videos:
        video = get_video(name)
        n_frames = len(video.segment(quality, 0).frames)
        counts = np.zeros(n_frames)
        total = 0
        for index in range(0, video.num_segments, segment_stride):
            positions = droppable_positions(
                video.segment(quality, index), target
            )
            for pos in positions:
                counts[pos] += 1
            total += 1
        out[name] = counts / max(total, 1)
    return out


def fig2b_ordering_comparison(
    videos: Sequence[str] = ("bbb", "tos"),
    quality: int = 12,
    target: float = 0.99,
    segment_stride: int = 1,
) -> Dict[str, Dict]:
    """Fig. 2b: rank ordering vs naive tail-only drops.

    Returns per video the tolerance CDF under the QoE ranking and under
    the original (temporal tail) order, plus the fraction of dropped
    frames that are referenced under each.
    """
    out: Dict[str, Dict] = {}
    for name in videos:
        video = get_video(name)
        ranked, tail = [], []
        ranked_ref, tail_ref = [], []
        for index in range(0, video.num_segments, segment_stride):
            segment = video.segment(quality, index)
            referenced = set(segment.frames.referenced_indices())
            for ordering, sink, ref_sink in (
                (Ordering.QOE_RANK, ranked, ranked_ref),
                (Ordering.ORIGINAL, tail, tail_ref),
            ):
                curve = compute_drop_curve(segment, ordering)
                sink.append(curve.tolerance(target) * 100.0)
                k = curve.max_drops(target)
                if k:
                    dropped = curve.order[len(curve.order) - k:]
                    ref_sink.append(
                        sum(1 for f in dropped if f in referenced) / k
                    )
        out[name] = {
            "ranked": _cdf(ranked),
            "tail": _cdf(tail),
            "ranked_referenced_fraction": float(np.mean(ranked_ref))
            if ranked_ref else 0.0,
            "tail_referenced_fraction": float(np.mean(tail_ref))
            if tail_ref else 0.0,
        }
    return out


def fig2cd_virtual_levels(
    videos: Sequence[str] = ("bbb", "tos"),
    quality: int = 12,
    targets: Sequence[float] = (0.99, 0.95),
) -> Dict[str, Dict[str, Dict]]:
    """Fig. 2c/d: bitrate CDFs of virtual quality levels Q12/<target>.

    For each segment the smallest byte count achieving the target SSIM
    (under the QoE ranking) defines the virtual level's bitrate; the
    pristine Q12/Q11/Q10 distributions frame the comparison.
    """
    out: Dict[str, Dict[str, Dict]] = {}
    for name in videos:
        video = get_video(name)
        series: Dict[str, Dict] = {}
        for q in (quality, quality - 1, quality - 2):
            series[f"Q{q}"] = _cdf(
                [seg.bitrate_mbps for seg in video.segments[q]]
            )
        for target in targets:
            rates = []
            for index in range(video.num_segments):
                segment = video.segment(quality, index)
                curve = compute_drop_curve(segment, Ordering.QOE_RANK)
                needed = curve.bytes_for_score(target)
                if needed is None:
                    needed = curve.points[0].bytes_needed
                rates.append(needed * 8.0 / segment.duration / 1e6)
            series[f"Q{quality}/{target}"] = _cdf(rates)
        out[name] = series
    return out


# ----------------------------------------------------------------------
# Fig. 3/4/5: vanilla ABR algorithms over QUIC vs QUIC*.
# ----------------------------------------------------------------------

def fig3_fig4_vanilla_quicstar(
    videos: Sequence[str] = CANONICAL,
    abrs: Sequence[str] = ("mpc", "bola"),
    traces: Sequence[str] = ("tmobile", "verizon"),
    buffers: Sequence[int] = (5, 6, 7),
    repetitions: int = 30,
) -> List[Dict]:
    """Fig. 3 (bufRatio) and Fig. 4 (bitrate): ABRs on QUIC vs QUIC*."""
    rows = []
    for video in videos:
        prepared = get_prepared(video)
        for abr in abrs:
            for trace in traces:
                for buffer_segments in buffers:
                    for partially_reliable in (False, True):
                        config = ExperimentConfig(
                            video=video, abr=abr, trace=trace,
                            buffer_segments=buffer_segments,
                            partially_reliable=partially_reliable,
                            repetitions=repetitions,
                        )
                        summary = run_trials(config, prepared=prepared)
                        rows.append(
                            {
                                "video": video,
                                "abr": abr,
                                "trace": trace,
                                "buffer": buffer_segments,
                                "transport": "Q*" if partially_reliable else "Q",
                                **summary.row(),
                            }
                        )
    return rows


def fig5_cross_traffic_vanilla(
    videos: Sequence[str] = CANONICAL,
    abrs: Sequence[str] = ("bola", "mpc"),
    cross_mbps: float = 20.0,
    buffers: Sequence[int] = (5, 6, 7),
    repetitions: int = 5,
) -> List[Dict]:
    """Fig. 5: vanilla ABRs with QUIC* under Harpoon-style cross traffic."""
    rows = []
    for video in videos:
        prepared = get_prepared(video)
        for abr in abrs:
            for buffer_segments in buffers:
                for partially_reliable in (False, True):
                    config = ExperimentConfig(
                        video=video, abr=abr, trace="constant:20",
                        buffer_segments=buffer_segments,
                        partially_reliable=partially_reliable,
                        repetitions=repetitions,
                        cross_traffic_mbps=cross_mbps,
                    )
                    summary = run_trials(config, prepared=prepared)
                    rows.append(
                        {
                            "video": video,
                            "abr": abr,
                            "buffer": buffer_segments,
                            "cross_mbps": cross_mbps,
                            "transport": "Q*" if partially_reliable else "Q",
                            **summary.row(),
                        }
                    )
    return rows


# ----------------------------------------------------------------------
# Fig. 6-9 and 17/18: VOXEL vs BOLA vs BETA across traces.
# ----------------------------------------------------------------------

_VOXEL_TUNED_TRACES = {"tmobile"}  # Fig. 6d: safety factor tuned to 0.9


def _abr_variants(trace: str, tuned_voxel: bool = True) -> Dict[str, Dict]:
    voxel_kwargs = (
        {"bandwidth_safety": 0.9}
        if tuned_voxel and trace in _VOXEL_TUNED_TRACES
        else {}
    )
    return {
        "BOLA": {"abr": "bola", "partially_reliable": False},
        "BETA": {"abr": "beta", "partially_reliable": False},
        "VOXEL": {
            "abr": "abr_star",
            "partially_reliable": True,
            "abr_kwargs": voxel_kwargs,
        },
    }


def fig6_bufratio(
    videos: Sequence[str] = CANONICAL,
    traces: Sequence[str] = ("att", "3g", "verizon", "tmobile"),
    buffers: Sequence[int] = (1, 2, 3, 7),
    repetitions: int = 30,
    tuned_voxel: bool = True,
) -> List[Dict]:
    """Fig. 6 (and 18a, 17c): 90th-pct bufRatio of BOLA/BETA/VOXEL."""
    rows = []
    for trace in traces:
        variants = _abr_variants(trace, tuned_voxel=tuned_voxel)
        for video in videos:
            prepared = get_prepared(video)
            for buffer_segments in buffers:
                for label, overrides in variants.items():
                    config = ExperimentConfig(
                        video=video, trace=trace,
                        buffer_segments=buffer_segments,
                        repetitions=repetitions,
                        **{k: v for k, v in overrides.items()},
                    )
                    summary = run_trials(config, prepared=prepared)
                    rows.append(
                        {
                            "video": video,
                            "trace": trace,
                            "buffer": buffer_segments,
                            "system": label,
                            **summary.row(),
                        }
                    )
    return rows


def fig7_metric_agnostic(
    video: str = "bbb",
    trace: str = "verizon",
    buffers: Sequence[int] = (1, 2, 3, 7),
    repetitions: int = 10,
) -> Dict[str, object]:
    """Fig. 7a-c: VOXEL optimizing SSIM, VMAF and PSNR vs BOLA.

    Returns bufRatio rows per metric plus the SSIM and VMAF CDFs of the
    BOLA and VOXEL(SSIM) runs.
    """
    prepared = get_prepared(video)
    rows = []
    cdfs: Dict[str, Dict] = {}
    metric_objects = {"ssim": SSIM, "vmaf": VMAF, "psnr": PSNR}
    for buffer_segments in buffers:
        bola = run_trials(
            ExperimentConfig(
                video=video, abr="bola", trace=trace,
                buffer_segments=buffer_segments,
                partially_reliable=False, repetitions=repetitions,
            ),
            prepared=prepared,
        )
        rows.append(
            {"system": "BOLA", "buffer": buffer_segments, **bola.row()}
        )
        for metric_name, metric in metric_objects.items():
            summary = run_trials(
                ExperimentConfig(
                    video=video, abr="abr_star", trace=trace,
                    buffer_segments=buffer_segments, repetitions=repetitions,
                    abr_kwargs={"metric": metric},
                ),
                prepared=prepared,
            )
            rows.append(
                {
                    "system": f"VOXEL/{metric_name.upper()}",
                    "buffer": buffer_segments,
                    **summary.row(),
                }
            )
            if buffer_segments == buffers[0]:
                ssims = summary.ssim_samples()
                if metric_name == "ssim":
                    cdfs["VOXEL/ssim"] = _cdf(ssims)
                    cdfs["VOXEL/vmaf"] = _cdf(
                        [VMAF.from_ssim(s) for s in ssims]
                    )
        if buffer_segments == buffers[0]:
            ssims = bola.ssim_samples()
            cdfs["BOLA/ssim"] = _cdf(ssims)
            cdfs["BOLA/vmaf"] = _cdf([VMAF.from_ssim(s) for s in ssims])
    return {"rows": rows, "cdfs": cdfs}


def fig7d_data_skipped(
    videos: Sequence[str] = CANONICAL,
    trace: str = "verizon",
    buffers: Sequence[int] = (1, 2, 3, 7),
    repetitions: int = 10,
) -> List[Dict]:
    """Fig. 7d: percent of segment data skipped by VOXEL vs buffer size."""
    rows = []
    for video in videos:
        prepared = get_prepared(video)
        for buffer_segments in buffers:
            summary = run_trials(
                ExperimentConfig(
                    video=video, abr="abr_star", trace=trace,
                    buffer_segments=buffer_segments, repetitions=repetitions,
                ),
                prepared=prepared,
            )
            rows.append(
                {
                    "video": video,
                    "buffer": buffer_segments,
                    "data_skipped_pct": summary.mean_data_skipped * 100.0,
                }
            )
    return rows


def fig8_bitrates(
    videos: Sequence[str] = CANONICAL,
    traces: Sequence[str] = ("tmobile", "verizon"),
    buffers: Sequence[int] = (1, 2, 3, 7),
    repetitions: int = 30,
) -> List[Dict]:
    """Fig. 8 (and 17a/b, 18b): average bitrates, VOXEL vs BOLA."""
    rows = []
    for trace in traces:
        for video in videos:
            prepared = get_prepared(video)
            for buffer_segments in buffers:
                for label, overrides in _abr_variants(trace).items():
                    if label == "BETA":
                        continue
                    config = ExperimentConfig(
                        video=video, trace=trace,
                        buffer_segments=buffer_segments,
                        repetitions=repetitions, **overrides,
                    )
                    summary = run_trials(config, prepared=prepared)
                    rows.append(
                        {
                            "video": video,
                            "trace": trace,
                            "buffer": buffer_segments,
                            "system": label,
                            **summary.row(),
                        }
                    )
    return rows


def fig9_ssim_cdfs(
    combos: Sequence[Tuple[str, str, int]] = (
        ("tos", "att", 2),
        ("sintel", "3g", 1),
        ("ed", "verizon", 1),
        ("bbb", "tmobile", 1),
    ),
    repetitions: int = 10,
    tuned_voxel: bool = True,
) -> Dict[str, Dict[str, Dict]]:
    """Fig. 9 (and 17d): per-segment SSIM CDFs of BOLA/BETA/VOXEL."""
    out: Dict[str, Dict[str, Dict]] = {}
    for video, trace, buffer_segments in combos:
        prepared = get_prepared(video)
        series = {}
        for label, overrides in _abr_variants(
            trace, tuned_voxel=tuned_voxel
        ).items():
            summary = run_trials(
                ExperimentConfig(
                    video=video, trace=trace,
                    buffer_segments=buffer_segments,
                    repetitions=repetitions, **overrides,
                ),
                prepared=prepared,
            )
            series[label] = _cdf(summary.ssim_samples())
        out[f"{video}-{trace}"] = series
    return out


# ----------------------------------------------------------------------
# Fig. 10: component isolation over the 86-trace 3G corpus.
# ----------------------------------------------------------------------

def fig10_components(
    video: str = "bbb",
    buffer_segments: int = 1,
    trace_count: int = 86,
) -> Dict[str, Dict]:
    """Fig. 10: BOLA vs BOLA-SSIM vs VOXEL over the 3G commute corpus."""
    prepared = get_prepared(video)
    corpus = riiser_3g_corpus(count=trace_count)
    systems = {
        "BOLA": ("bola", False, {}),
        "BOLA-SSIM": ("bola_ssim", True, {}),
        "VOXEL": ("abr_star", True, {}),
    }
    out: Dict[str, Dict] = {}
    for label, (abr, partially_reliable, kwargs) in systems.items():
        sessions = []
        for trace in corpus:
            config = ExperimentConfig(
                video=video, abr=abr,
                buffer_segments=buffer_segments,
                partially_reliable=partially_reliable,
                repetitions=1, abr_kwargs=kwargs,
            )
            from repro.experiments.runner import run_single

            sessions.append(
                run_single(config, prepared=prepared, trace=trace)
            )
        buf_ratios = [s.buf_ratio for s in sessions]
        ssims = [s.mean_ssim for s in sessions]
        out[label] = {
            "buf_ratio_cdf": _cdf(np.asarray(buf_ratios) * 100.0),
            "ssim_cdf": _cdf(ssims),
            "mean_buf_ratio": float(np.mean(buf_ratios)),
            "mean_ssim": float(np.mean(ssims)),
        }
    return out


# ----------------------------------------------------------------------
# Fig. 11: synthetic constant/step traces.
# ----------------------------------------------------------------------

def fig11_synthetic(
    video: str = "bbb",
    buffer_segments: int = 7,
    repetitions: int = 3,
) -> Dict[str, Dict]:
    """Fig. 11a-c: SSIM progression and distribution on synthetic traces."""
    prepared = get_prepared(video)
    out: Dict[str, Dict] = {}
    for trace_label, trace in (
        ("const", constant_trace(10.5)),
        ("step", step_trace()),
    ):
        for system, (abr, partially_reliable) in {
            "BOLA": ("bola", False),
            "VOXEL": ("abr_star", True),
        }.items():
            config = ExperimentConfig(
                video=video, abr=abr, buffer_segments=buffer_segments,
                partially_reliable=partially_reliable,
                repetitions=repetitions,
            )
            from repro.experiments.runner import run_single

            sessions = [
                run_single(config, shift_s=i * 7.0, prepared=prepared,
                           trace=trace)
                for i in range(repetitions)
            ]
            scores = sessions[0].scores
            # Accumulated average SSIM over playback (Fig. 11a).
            progression = np.cumsum(scores) / np.arange(1, len(scores) + 1)
            all_scores = np.concatenate([s.scores for s in sessions])
            out[f"{system}/{trace_label}"] = {
                "progression": progression,
                "cdf": _cdf(all_scores),
                "perfect_fraction": float(np.mean(all_scores >= 0.9999)),
            }
    return out


# ----------------------------------------------------------------------
# Fig. 11d/13: in-the-wild trials.
# ----------------------------------------------------------------------

def fig11d_fig13_wild(
    videos: Sequence[str] = CANONICAL,
    buffers: Sequence[int] = (1, 7),
    repetitions: int = 10,
) -> Dict[str, object]:
    """Fig. 11d and Fig. 13: in-the-wild-like trials (WiFi path)."""
    rows = []
    cdfs: Dict[str, Dict] = {}
    for video in videos:
        prepared = get_prepared(video)
        for buffer_segments in buffers:
            for label, overrides in {
                "BOLA": {"abr": "bola", "partially_reliable": False},
                "VOXEL": {"abr": "abr_star", "partially_reliable": True},
            }.items():
                summary = run_trials(
                    ExperimentConfig(
                        video=video, trace="wild",
                        buffer_segments=buffer_segments,
                        repetitions=repetitions, **overrides,
                    ),
                    prepared=prepared,
                )
                rows.append(
                    {
                        "video": video,
                        "buffer": buffer_segments,
                        "system": label,
                        **summary.row(),
                    }
                )
                if buffer_segments == 1 and video in ("bbb", "tos"):
                    cdfs[f"{video}/{label}"] = _cdf(summary.ssim_samples())
    return {"rows": rows, "cdfs": cdfs}


# ----------------------------------------------------------------------
# Fig. 12: VOXEL vs BOLA under cross traffic.
# ----------------------------------------------------------------------

def fig12_cross_traffic(
    videos: Sequence[str] = CANONICAL,
    buffers: Sequence[int] = (1, 2, 3, 7),
    cross_mbps: float = 20.0,
    repetitions: int = 5,
) -> List[Dict]:
    """Fig. 12: bufRatio and bitrate with 20 Mbps competing traffic."""
    rows = []
    for video in videos:
        prepared = get_prepared(video)
        for buffer_segments in buffers:
            for label, overrides in {
                "BOLA": {"abr": "bola", "partially_reliable": False},
                "VOXEL": {"abr": "abr_star", "partially_reliable": True},
            }.items():
                summary = run_trials(
                    ExperimentConfig(
                        video=video, trace="constant:20",
                        buffer_segments=buffer_segments,
                        repetitions=repetitions,
                        cross_traffic_mbps=cross_mbps,
                        **overrides,
                    ),
                    prepared=prepared,
                )
                rows.append(
                    {
                        "video": video,
                        "buffer": buffer_segments,
                        "system": label,
                        **summary.row(),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Fig. 16: long (750-packet) network queues.
# ----------------------------------------------------------------------

def fig16_long_queue(
    videos: Sequence[str] = CANONICAL,
    traces: Sequence[str] = ("tmobile", "verizon"),
    buffers: Sequence[int] = (1, 2, 3, 7),
    queue_packets: int = 750,
    repetitions: int = 10,
) -> List[Dict]:
    """Fig. 16: BOLA vs VOXEL behind a 750-packet droptail queue."""
    rows = []
    for trace in traces:
        for video in videos:
            prepared = get_prepared(video)
            for buffer_segments in buffers:
                for label, overrides in {
                    "BOLA": {"abr": "bola", "partially_reliable": False},
                    "VOXEL": {"abr": "abr_star", "partially_reliable": True},
                }.items():
                    summary = run_trials(
                        ExperimentConfig(
                            video=video, trace=trace,
                            buffer_segments=buffer_segments,
                            queue_packets=queue_packets,
                            repetitions=repetitions, **overrides,
                        ),
                        prepared=prepared,
                    )
                    rows.append(
                        {
                            "video": video,
                            "trace": trace,
                            "buffer": buffer_segments,
                            "system": label,
                            **summary.row(),
                        }
                    )
    return rows


# ----------------------------------------------------------------------
# Fig. 18c/d: partial-reliability ablation ("VOXEL rel").
# ----------------------------------------------------------------------

def fig18cd_reliability_ablation(
    videos: Sequence[str] = CANONICAL,
    traces: Sequence[str] = ("tmobile", "verizon"),
    buffers: Sequence[int] = (1, 2, 3, 7),
    repetitions: int = 10,
) -> List[Dict]:
    """Fig. 18c/d: VOXEL with unreliable streams disabled ("VOXEL rel")."""
    rows = []
    for trace in traces:
        for video in videos:
            prepared = get_prepared(video)
            for buffer_segments in buffers:
                for label, force_reliable in (
                    ("VOXEL", False),
                    ("VOXEL rel", True),
                ):
                    summary = run_trials(
                        ExperimentConfig(
                            video=video, abr="abr_star", trace=trace,
                            buffer_segments=buffer_segments,
                            partially_reliable=True,
                            force_reliable_payload=force_reliable,
                            repetitions=repetitions,
                        ),
                        prepared=prepared,
                    )
                    rows.append(
                        {
                            "video": video,
                            "trace": trace,
                            "buffer": buffer_segments,
                            "system": label,
                            **summary.row(),
                        }
                    )
    return rows


# ----------------------------------------------------------------------
# §4.2: residual loss after selective retransmission.
# ----------------------------------------------------------------------

def selective_retransmission_residual(
    video: str = "bbb",
    trace: str = "verizon",
    buffers: Sequence[int] = (2, 3, 7),
    repetitions: int = 10,
) -> List[Dict]:
    """§4.2: remaining loss per buffer size after selective retx."""
    prepared = get_prepared(video)
    rows = []
    for buffer_segments in buffers:
        summary = run_trials(
            ExperimentConfig(
                video=video, abr="abr_star", trace=trace,
                buffer_segments=buffer_segments, repetitions=repetitions,
            ),
            prepared=prepared,
        )
        rows.append(
            {
                "buffer": buffer_segments,
                "residual_loss_pct": summary.mean_residual_loss * 100.0,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 19: YouTube-video drop tolerance.
# ----------------------------------------------------------------------

def fig19_youtube_tolerance(
    videos: Sequence[str] = ("p1", "p5", "p6", "p7", "p9", "p10"),
    segment_stride: int = 1,
) -> Dict[str, Dict[str, Dict]]:
    """Fig. 19: the §3 insights on the public YouTube videos."""
    return fig1_drop_tolerance(videos=videos, segment_stride=segment_stride)


# ----------------------------------------------------------------------
# Fig. 15: VBR segment-size variation.
# ----------------------------------------------------------------------

def fig15_vbr_variation(
    videos: Sequence[str] = ("ed", "sintel"),
    qualities: Sequence[int] = (12, 11, 10, 8, 6, 4),
) -> Dict[str, Dict[str, np.ndarray]]:
    """Fig. 15: per-segment bitrate by quality level."""
    out = {}
    for name in videos:
        video = get_video(name)
        out[name] = {
            f"Q{q}": np.asarray(video.segment_bitrates_mbps(q))
            for q in qualities
        }
    return out
