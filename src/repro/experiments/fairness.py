"""Flow-fairness study (§5.2 mentions fairness results were omitted).

"As all streams in VOXEL are congestion-controlled, we have no
flow-fairness concerns."  This module substantiates that claim with the
packet-level backend: several flows — any mix of reliable and
QUIC*-unreliable bulk transfers — share one bottleneck router, and we
measure each flow's realized throughput plus Jain's fairness index.

The key property: QUIC*'s unreliable streams still run CUBIC, so an
unreliable flow claims no more than its fair share even though it never
retransmits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.network.events import EventScheduler
from repro.network.packetlink import PacketRouter
from repro.network.traces import NetworkTrace, constant_trace
from repro.transport.packet_connection import PacketLevelConnection


@dataclass
class FlowResult:
    """Outcome of one flow in a fairness run."""

    label: str
    reliable: bool
    delivered_bytes: int
    elapsed: float

    @property
    def throughput_mbps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.delivered_bytes * 8.0 / self.elapsed / 1e6


@dataclass
class FairnessResult:
    """Aggregate of a fairness run."""

    flows: List[FlowResult]
    link_mbps: float

    @property
    def jain_index(self) -> float:
        """Jain's fairness index over flow throughputs (1.0 = perfect)."""
        rates = np.array([flow.throughput_mbps for flow in self.flows])
        if not len(rates) or rates.sum() == 0:
            return 1.0
        return float(rates.sum() ** 2 / (len(rates) * (rates**2).sum()))

    @property
    def utilization(self) -> float:
        rates = sum(flow.throughput_mbps for flow in self.flows)
        return rates / self.link_mbps


class _BulkFlow:
    """A long-lived transfer that keeps its pipe full until `total` sent.

    Implemented as a thin driver around :class:`PacketLevelConnection`:
    the connection's ``download`` is blocking, so concurrent flows are
    realized by giving every flow its own connection on the *shared*
    router and interleaving them through the shared event scheduler —
    each flow's sender callbacks fire from the same loop.
    """

    def __init__(self, label: str, connection: PacketLevelConnection,
                 total_bytes: int, reliable: bool):
        self.label = label
        self.connection = connection
        self.total_bytes = total_bytes
        self.reliable = reliable
        self.started = False
        self.result = None

    def start(self, scheduler: EventScheduler) -> None:
        """Arm the flow's sender state without blocking."""
        conn = self.connection
        conn._reliable = self.reliable or not conn.partially_reliable
        conn._limit = self.total_bytes
        conn._next_offset = 0
        conn._inflight = {}
        conn._delivered_bytes = 0
        conn._lost = []
        conn._retx_queue = []
        conn._progress = None
        conn._done = False
        conn._start_time = scheduler.now
        latency = 2 * conn.router.propagation_s
        scheduler.schedule(latency, conn._pump)
        scheduler.schedule(latency, conn._check_done)
        self.started = True

    @property
    def done(self) -> bool:
        return self.started and self.connection._done

    def finish(self, scheduler: EventScheduler) -> FlowResult:
        conn = self.connection
        end = conn._done_time if conn._done else scheduler.now
        return FlowResult(
            label=self.label,
            reliable=self.reliable,
            delivered_bytes=conn._delivered_bytes,
            elapsed=end - conn._start_time,
        )


def run_fairness(
    link_mbps: float = 20.0,
    flow_specs: Sequence[tuple] = (
        ("reliable-1", True),
        ("reliable-2", True),
        ("unreliable-voxel", False),
    ),
    transfer_mb: float = 10.0,
    queue_packets: int = 64,
    trace: NetworkTrace = None,
) -> FairnessResult:
    """Run concurrent bulk flows over one bottleneck.

    Args:
        link_mbps: bottleneck capacity (constant unless ``trace`` given).
        flow_specs: (label, reliable) per flow; unreliable flows model
            QUIC*'s non-retransmitting streams.
        transfer_mb: bytes each flow pushes.
        queue_packets: shared droptail queue size.
        trace: optional explicit capacity trace.

    Returns:
        Per-flow throughputs and Jain's index, measured over each flow's
        own completion time.
    """
    scheduler = EventScheduler()
    the_trace = trace if trace is not None else constant_trace(
        link_mbps, duration=3600
    )
    router = PacketRouter(scheduler, the_trace, queue_packets=queue_packets)

    flows = []
    for label, reliable in flow_specs:
        connection = PacketLevelConnection(
            router, scheduler, partially_reliable=True
        )
        flows.append(
            _BulkFlow(
                label, connection, int(transfer_mb * 1e6), reliable
            )
        )
    for flow in flows:
        flow.start(scheduler)

    scheduler.run_until(lambda: all(flow.done for flow in flows))
    results = [flow.finish(scheduler) for flow in flows]
    return FairnessResult(flows=results, link_mbps=link_mbps)
