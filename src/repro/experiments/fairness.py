"""Flow-fairness study (§5.2 mentions fairness results were omitted).

"As all streams in VOXEL are congestion-controlled, we have no
flow-fairness concerns."  This module substantiates that claim with the
packet-level backend: several flows — any mix of reliable and
QUIC*-unreliable bulk transfers — share one bottleneck router, and we
measure each flow's realized throughput plus Jain's fairness index.

The key property: QUIC*'s unreliable streams still run CUBIC, so an
unreliable flow claims no more than its fair share even though it never
retransmits.

Each flow is an ordinary kernel process (``download_iter`` spawned on a
:class:`~repro.network.events.SimKernel`) — the same execution model
full multi-client sessions use, with no private scheduler wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.network.events import SimKernel
from repro.network.linkmodels import LINK_MODELS
from repro.network.traces import NetworkTrace, constant_trace
from repro.transport.packet_connection import PacketLevelConnection


@dataclass
class FlowResult:
    """Outcome of one flow in a fairness run."""

    label: str
    reliable: bool
    delivered_bytes: int
    elapsed: float

    @property
    def throughput_mbps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.delivered_bytes * 8.0 / self.elapsed / 1e6


@dataclass
class FairnessResult:
    """Aggregate of a fairness run."""

    flows: List[FlowResult]
    link_mbps: float

    @property
    def jain_index(self) -> float:
        """Jain's fairness index over flow throughputs (1.0 = perfect)."""
        rates = np.array([flow.throughput_mbps for flow in self.flows])
        if not len(rates) or rates.sum() == 0:
            return 1.0
        return float(rates.sum() ** 2 / (len(rates) * (rates**2).sum()))

    @property
    def utilization(self) -> float:
        rates = sum(flow.throughput_mbps for flow in self.flows)
        return rates / self.link_mbps


def _bulk_flow(
    label: str,
    connection: PacketLevelConnection,
    total_bytes: int,
    reliable: bool,
):
    """One long-lived transfer as a kernel process; returns FlowResult."""
    result = yield from connection.download_iter(
        total_bytes, reliable=reliable
    )
    return FlowResult(
        label=label,
        reliable=reliable,
        delivered_bytes=result.delivered,
        elapsed=result.elapsed,
    )


def run_fairness(
    link_mbps: float = 20.0,
    flow_specs: Sequence[tuple] = (
        ("reliable-1", True),
        ("reliable-2", True),
        ("unreliable-voxel", False),
    ),
    transfer_mb: float = 10.0,
    queue_packets: int = 64,
    trace: NetworkTrace = None,
) -> FairnessResult:
    """Run concurrent bulk flows over one bottleneck.

    Args:
        link_mbps: bottleneck capacity (constant unless ``trace`` given).
        flow_specs: (label, reliable) per flow; unreliable flows model
            QUIC*'s non-retransmitting streams.
        transfer_mb: bytes each flow pushes.
        queue_packets: shared droptail queue size.
        trace: optional explicit capacity trace.

    Returns:
        Per-flow throughputs and Jain's index, measured over each flow's
        own completion time.
    """
    kernel = SimKernel()
    the_trace = trace if trace is not None else constant_trace(
        link_mbps, duration=3600
    )
    router = LINK_MODELS.get("packet-router")(
        kernel, the_trace, queue_packets=queue_packets
    )

    waiters = []
    for label, reliable in flow_specs:
        connection = PacketLevelConnection(
            router, kernel, partially_reliable=True
        )
        waiters.append(
            kernel.spawn(
                _bulk_flow(
                    label, connection, int(transfer_mb * 1e6), reliable
                )
            )
        )

    kernel.run_until(lambda: all(w.fired for w in waiters))
    results = [w.value for w in waiters]
    return FairnessResult(flows=results, link_mbps=link_mbps)
