"""Experiment runner (§5, "Experiments").

An *experiment* streams one video under a fixed configuration — ABR
algorithm, buffer size, video, network trace, transport flavour — and is
repeated (30 times in the paper) with the trace linearly shifted by
``d/reps`` seconds per repetition to probe the interaction between
throughput variations and VBR segment-size variations.  Aggregates follow
the paper: 90th percentile and standard error of bufRatio, means of
average bitrates, CDFs of per-segment scores.

Repetitions are independent simulations, so :func:`run_trials` can fan
them out over worker processes (``workers=K``).  Parallel execution is
*deterministic*: each repetition runs inside its own metrics scope (in
both modes) and the parent folds the per-repetition registries back in
repetition order, so aggregates, metrics dumps, and traces are
byte-identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import copy

import numpy as np

from repro.core.build import StackBuilder
from repro.experiments.execution import (
    ExecutionError,
    execute,
    validate_workers,
)
from repro.core.spec import ScenarioSpec, reliability_mode
from repro.network.traces import NetworkTrace, get_trace
from repro.obs import spans
from repro.obs.metrics import MetricsRegistry, get_registry, scoped_registry
from repro.obs.profiling import enable_profiling, profiling_enabled, timed
from repro.obs.tracer import StreamingTracer, Tracer
from repro.player.metrics import SessionMetrics, percentile_across, stderr_across
from repro.prep.prepare import PreparedVideo, get_prepared


@dataclass
class ExperimentConfig:
    """One cell of the paper's evaluation matrix.

    The historical imperative twin of :class:`ScenarioSpec`;
    :meth:`to_scenario` converts losslessly, and every runner entry
    point accepts either form.
    """

    video: str = "bbb"
    abr: str = "bola"
    trace: str = "verizon"
    buffer_segments: int = 3
    partially_reliable: bool = True
    repetitions: int = 30
    seed: int = 0
    cross_traffic_mbps: Optional[float] = None
    link_mbps_under_cross: float = 20.0
    queue_packets: Optional[int] = 32
    force_reliable_payload: bool = False
    selective_retransmission: bool = True
    abr_kwargs: Dict = field(default_factory=dict)

    def label(self) -> str:
        pr = "Q*" if self.partially_reliable else "Q"
        return f"{self.video}/{self.abr}/{pr}/{self.trace}/buf{self.buffer_segments}"

    def to_scenario(self, shift_s: float = 0.0) -> ScenarioSpec:
        """The equivalent declarative spec (``shift_s`` = trace shift)."""
        return ScenarioSpec(
            video=self.video,
            abr=self.abr,
            abr_kwargs=dict(self.abr_kwargs),
            trace=self.trace,
            seed=self.seed,
            trace_shift_s=shift_s,
            cross_traffic_mbps=self.cross_traffic_mbps,
            link_mbps_under_cross=self.link_mbps_under_cross,
            reliability=reliability_mode(
                self.partially_reliable, self.force_reliable_payload
            ),
            buffer_segments=self.buffer_segments,
            queue_packets=self.queue_packets,
            selective_retransmission=self.selective_retransmission,
            repetitions=self.repetitions,
        )


def _as_scenario(config, shift_s: float = 0.0) -> ScenarioSpec:
    """Normalize an ExperimentConfig or ScenarioSpec to a shifted spec."""
    if isinstance(config, ScenarioSpec):
        if shift_s:
            return config.with_(
                trace_shift_s=config.trace_shift_s + shift_s
            )
        return config
    return config.to_scenario(shift_s=shift_s)


@dataclass
class TrialSummary:
    """Aggregate of the repetitions of one experiment."""

    config: ExperimentConfig
    sessions: List[SessionMetrics]
    # Metrics-registry dump scoped to this trial's sessions only (no
    # bleed-over from earlier trials in the process); None when the
    # trial was built by hand.
    metrics: Optional[Dict] = None
    # Per-repetition JSONL traces when run_trials(collect_traces=True).
    traces: Optional[List[str]] = None

    @property
    def buf_ratio_p90(self) -> float:
        return percentile_across(self.sessions, "buf_ratio", 90)

    @property
    def buf_ratio_mean(self) -> float:
        return float(np.mean([s.buf_ratio for s in self.sessions]))

    @property
    def buf_ratio_stderr(self) -> float:
        return stderr_across(self.sessions, "buf_ratio")

    @property
    def mean_bitrate_kbps(self) -> float:
        return float(np.mean([s.avg_bitrate_kbps for s in self.sessions]))

    @property
    def mean_ssim(self) -> float:
        return float(np.mean([s.mean_ssim for s in self.sessions]))

    @property
    def mean_data_skipped(self) -> float:
        return float(np.mean([s.data_skipped_fraction for s in self.sessions]))

    @property
    def mean_residual_loss(self) -> float:
        return float(np.mean([s.residual_loss_fraction for s in self.sessions]))

    def ssim_samples(self) -> np.ndarray:
        """All per-segment scores across repetitions (CDF material)."""
        return np.concatenate([s.scores for s in self.sessions])

    def row(self) -> Dict[str, float]:
        return {
            "buf_ratio_p90": self.buf_ratio_p90,
            "buf_ratio_mean": self.buf_ratio_mean,
            "buf_ratio_stderr": self.buf_ratio_stderr,
            "bitrate_kbps": self.mean_bitrate_kbps,
            "ssim": self.mean_ssim,
            "data_skipped": self.mean_data_skipped,
        }


def _resolve_trace(config) -> NetworkTrace:
    """The unshifted capacity trace of a config or spec (duck-typed)."""
    if config.cross_traffic_mbps is not None:
        return get_trace(f"constant:{config.link_mbps_under_cross}")
    return get_trace(config.trace, seed=config.seed)


def run_single(
    config,
    shift_s: float = 0.0,
    prepared: Optional[PreparedVideo] = None,
    trace: Optional[NetworkTrace] = None,
    tracer=None,
) -> SessionMetrics:
    """Run one streaming session for the configuration.

    ``config`` is an :class:`ExperimentConfig` or a
    :class:`~repro.core.spec.ScenarioSpec`; either way the stack is
    assembled by the :class:`~repro.core.build.StackBuilder`.
    """
    spec = _as_scenario(config, shift_s=shift_s)
    get_registry().counter(
        "experiments.sessions", abr=spec.abr, trace=spec.trace
    ).inc()
    if trace is not None:
        trace = trace.shifted(shift_s)
    session = StackBuilder(spec, prepared=prepared).build(
        network_trace=trace, tracer=tracer
    )
    with timed("experiment.run_single"):
        return session.run()


def _rep_session(
    config,
    shift_s: float,
    prepared: PreparedVideo,
    trace: NetworkTrace,
    collect_trace: bool,
    observers: Optional[Sequence] = None,
    profile: bool = False,
) -> Tuple[SessionMetrics, MetricsRegistry, Optional[str], Optional[Dict]]:
    """Run one repetition in its own metrics scope.

    Returns the session metrics, the repetition's registry (for the
    parent to merge in repetition order — the key to serial/parallel
    metric identity), the JSONL trace if requested, and the
    repetition's serialized span tree when ``profile`` is set (folded
    by the parent in repetition order too, so span trees — like
    metrics — are identical at any worker count).  ``observers`` see
    every trace event; without ``collect_trace`` they are served by a
    buffer-less :class:`StreamingTracer`, so fleet rollups cost no
    per-event history.
    """
    prof = spans.SpanProfiler() if profile else None
    prev = spans.install(prof) if profile else None
    try:
        # Install the profiler before building tracer + stack: hot
        # components capture it at construction.
        if collect_trace:
            tracer = Tracer(observers=observers)
        elif observers:
            tracer = StreamingTracer(observers=observers)
        else:
            tracer = None
        with scoped_registry(merge=False) as registry:
            metrics = run_single(
                config, shift_s=shift_s, prepared=prepared, trace=trace,
                tracer=tracer,
            )
    finally:
        if profile:
            prof.finalize()
            spans.install(prev)
    jsonl = tracer.to_jsonl() if collect_trace else None
    return metrics, registry, jsonl, (prof.to_dict() if profile else None)


#: Prepared video handed to fork()ed workers via inheritance: non-catalog
#: videos (test fixtures, benchmarks) cannot be re-prepared by name in
#: the child, and pickling a PreparedVideo per task would dwarf the
#: simulation itself.
_PARALLEL_PREPARED: Optional[PreparedVideo] = None

#: Mergeable observer algebra handed to fork()ed workers the same way:
#: ``(state_object, bound_method_name_or_None)`` per observer.  Workers
#: deep-copy the objects (fork-snapshot state), feed their repetition,
#: and ship ``to_dict()`` states back for the parent to fold.
_PARALLEL_OBSERVERS: Optional[List[Tuple[object, Optional[str]]]] = None


def _observer_algebra(
    observer,
) -> Optional[Tuple[object, Optional[str]]]:
    """The mergeable state object behind a trace observer, or None.

    Bound-method observers (``rollup.feed``) resolve to their instance;
    callable objects resolve to themselves.  "Mergeable" means the
    object carries the fold algebra — ``merge``, ``to_dict``, and
    ``from_dict`` — so per-repetition state can cross a fork boundary
    as plain data and fold back in repetition order.  Returns the
    object plus the bound method's name (to rebuild the callback on a
    copy), or None for observers without the algebra.
    """
    obj = getattr(observer, "__self__", observer)
    if all(
        callable(getattr(obj, name, None))
        for name in ("merge", "to_dict", "from_dict")
    ):
        attr = observer.__name__ if obj is not observer else None
        return obj, attr
    return None


def _trial_worker(
    task: Tuple[ExperimentConfig, float, bool, bool, bool],
) -> Tuple[SessionMetrics, MetricsRegistry, Optional[str], Optional[Dict],
           Optional[List[Dict]]]:
    """Process-pool entry point for one repetition.

    The task tuple carries the parent's profiling state explicitly:
    fork() snapshots module globals at *pool creation*, so a flag
    flipped after the pool warmed up (or a ``forkserver``/``spawn``
    context someday) would silently strip ``--profile`` from every
    worker.  Re-applying it per task makes propagation unconditional.

    Mergeable observers ride the ``_PARALLEL_OBSERVERS`` global: the
    worker deep-copies each state object (isolating this repetition
    from its siblings), rebuilds the bound callback on the copy, and
    returns the serialized states for the parent's in-order fold.
    """
    config, shift_s, collect_trace, timers, profile = task
    enable_profiling(timers)
    prepared = _PARALLEL_PREPARED
    if prepared is None or prepared.video.name != config.video:
        prepared = get_prepared(config.video)
    trace = _resolve_trace(config)
    observers = None
    algebra = None
    if _PARALLEL_OBSERVERS:
        algebra = [copy.deepcopy(obj) for obj, _ in _PARALLEL_OBSERVERS]
        observers = [
            obj if attr is None else getattr(obj, attr)
            for obj, (_, attr) in zip(algebra, _PARALLEL_OBSERVERS)
        ]
    metrics, registry, jsonl, prof_state = _rep_session(
        config, shift_s, prepared, trace, collect_trace, observers,
        profile=profile,
    )
    states = (
        [obj.to_dict() for obj in algebra] if algebra is not None else None
    )
    return metrics, registry, jsonl, prof_state, states


def fork_map(
    worker,
    tasks: Sequence,
    workers: int,
    labels: Optional[Sequence[str]] = None,
) -> List:
    """Fan ``tasks`` out over fork()ed workers, results in task order.

    fork() children inherit the parent's memory snapshot (prepared-video
    caches, module globals), so inputs are identical to an in-process
    run; mapping preserves order, so folding results is deterministic.
    With ``workers=1`` the tasks run serially in-process through the
    same worker function — the degenerate case every caller's
    byte-identity claim is anchored to.  ``workers`` must be a positive
    integer; the effective pool size is capped at ``len(tasks)`` (extra
    workers would only idle — the cap is visible in
    :attr:`~repro.experiments.execution.MapOutcome.effective_workers`
    for callers that go through :func:`execute` directly).

    Execution is supervised (see :mod:`repro.experiments.execution`):
    crashed, hung, or corrupted workers are retried and, if they keep
    failing, the error names the failing task by label instead of
    raising ``BrokenProcessPool``.  Shared machinery of
    :func:`run_trials`, the sweep/chaos engines, and the fleet
    executor; engines that need checkpoints or graceful degradation
    call :func:`~repro.experiments.execution.execute` themselves.
    """
    outcome = execute(worker, tasks, workers=workers, labels=labels)
    if outcome.failures:
        raise ExecutionError(outcome.failures, total=len(outcome.results))
    return outcome.results


#: Back-compat alias (pre-fleet name).
_fork_map = fork_map


def run_trials(
    config,
    prepared: Optional[PreparedVideo] = None,
    workers: int = 1,
    collect_traces: bool = False,
    observers: Optional[Sequence] = None,
) -> TrialSummary:
    """Run all repetitions with per-repetition trace shifting.

    Args:
        config: the experiment cell (:class:`ExperimentConfig` or
            :class:`~repro.core.spec.ScenarioSpec`).
        prepared: pre-analyzed video (looked up by name if omitted).
        workers: worker processes; ``1`` runs serially in-process.  Any
            K produces byte-identical summaries (sessions, metrics dump,
            traces) to the serial run — repetitions are independent and
            results are folded in repetition order.
        collect_traces: record a JSONL trace per repetition on the
            summary's ``traces``.
        observers: trace-event callbacks attached to every repetition's
            tracer (streaming rollups, attributors).  With
            ``workers > 1`` each observer must expose the merge algebra
            (``merge``/``to_dict``/``from_dict`` on the observer or the
            instance behind a bound method): workers feed an isolated
            copy per repetition and the parent folds the serialized
            states back in repetition order — byte-identical to serial
            when the observers start empty (fresh instances; pre-seeded
            state would be double-counted) and per-repetition
            distributions stay under the histogram reservoir threshold.
            Plain callables without the algebra still require
            ``workers=1``.
    """
    global _PARALLEL_PREPARED, _PARALLEL_OBSERVERS
    workers = validate_workers(workers)
    parallel_algebra: Optional[List[Tuple[object, Optional[str]]]] = None
    if observers and workers > 1:
        resolved = [_observer_algebra(observer) for observer in observers]
        if any(entry is None for entry in resolved):
            bad = [
                repr(observer)
                for observer, entry in zip(observers, resolved)
                if entry is None
            ]
            raise ValueError(
                "trace observers without a merge algebra require "
                "workers=1 (observer state lives in this process; "
                "forked repetitions cannot feed it).  Expose "
                "merge/to_dict/from_dict to fold across workers; "
                f"non-mergeable: {', '.join(bad)}"
            )
        parallel_algebra = resolved
    if prepared is None:
        prepared = get_prepared(config.video)
    trace = _resolve_trace(config)
    reps = max(config.repetitions, 1)
    shift_step = trace.duration / reps
    shifts = [i * shift_step for i in range(reps)]

    # An ambient span profiler means "profile every repetition": each
    # rep records into its own profiler (serial and parallel alike) and
    # the trees fold back into the ambient one in repetition order, so
    # the merged tree is byte-identical at any worker count.
    parent_prof = spans.current()
    profile = parent_prof is not None

    # Each trial runs inside its own registry scope so its metrics dump
    # reflects only these sessions; the scope merges back into the
    # parent on exit, keeping process-wide totals intact.
    with scoped_registry() as registry:
        if workers == 1:
            outcomes = [
                (*_rep_session(config, shift, prepared, trace,
                               collect_traces, observers, profile=profile),
                 None)
                for shift in shifts
            ]
        else:
            # fork() workers inherit the prepared video (and any other
            # process state) by memory snapshot — cheap, and identical
            # inputs to the serial path.
            _PARALLEL_PREPARED = prepared
            _PARALLEL_OBSERVERS = parallel_algebra
            try:
                outcomes = fork_map(
                    _trial_worker,
                    [
                        (config, shift, collect_traces,
                         profiling_enabled(), profile)
                        for shift in shifts
                    ],
                    workers,
                    labels=[f"repetition {i}" for i in range(reps)],
                )
            finally:
                _PARALLEL_PREPARED = None
                _PARALLEL_OBSERVERS = None
        sessions = []
        traces: List[str] = []
        for metrics, rep_registry, jsonl, prof_state, states in outcomes:
            sessions.append(metrics)
            registry.merge(rep_registry)
            if jsonl is not None:
                traces.append(jsonl)
            if prof_state is not None and parent_prof is not None:
                parent_prof.merge_dict(prof_state)
            if states and parallel_algebra:
                # Fold each repetition's observer state into the
                # caller's live objects, in repetition order.
                for (obj, _attr), state in zip(parallel_algebra, states):
                    obj.merge(type(obj).from_dict(state))
        metrics_dump = registry.dump()
    return TrialSummary(
        config=config,
        sessions=sessions,
        metrics=metrics_dump,
        traces=traces if collect_traces else None,
    )


def compare(
    base: ExperimentConfig,
    variants: Dict[str, Dict],
    prepared: Optional[PreparedVideo] = None,
    workers: int = 1,
) -> Dict[str, TrialSummary]:
    """Run several variants of a base configuration.

    ``variants`` maps a label to field overrides of the base config.
    """
    out: Dict[str, TrialSummary] = {}
    for label, overrides in variants.items():
        config = replace(base, **overrides)
        out[label] = run_trials(config, prepared=prepared, workers=workers)
    return out
