"""Crash-tolerant task execution: supervised fork pool + checkpoints.

Every fan-out engine (``run_trials``, ``run_sweep``, ``run_chaos``,
``run_fleet``) fans independent tasks out over fork()ed workers and
folds the results back in task order.  A bare ``ProcessPoolExecutor``
makes that fragile: one segfaulted, OOM-killed, or hung worker aborts
the whole campaign with an opaque ``BrokenProcessPool``, and nothing
completed so far survives a Ctrl-C.  This module is the resilient
execution layer underneath all of them:

* :func:`execute` / :func:`supervised_map` — a supervised pool with
  one fork()ed process per task (at most ``workers`` concurrent):
  per-task wall-clock deadlines, detection of crashed and hung
  workers, bounded retry with exponential backoff, and poison-task
  quarantine once the attempt budget is exhausted.  Failures carry
  the task's *label* ("shard 3", "cell bbb/bola/…"), never a bare
  ``BrokenProcessPool``.  Results fold in task order, so ``workers=K``
  stays byte-identical to serial execution.
* :class:`CheckpointStore` — a crash-safe spool: each completed task's
  mergeable artifact is written atomically (temp file + ``os.replace``)
  under a content-derived ``run_key``, so an interrupted campaign
  resumes by skipping completed work — and the resumed fold is
  byte-identical to an uninterrupted run.
* :class:`WorkerFaultInjector` — a test-only chaos harness for the
  harness itself: deterministically kill, hang, corrupt, or fail a
  chosen task's first N attempts (installed programmatically or via
  the ``REPRO_EXEC_FAULT`` environment variable), so every recovery
  path above is exercised by ordinary tests and CI.

Determinism: workers are pure functions of their task, retries re-run
the identical task, checkpointed artifacts are JSON round-trips of the
in-process values, and the parent folds in task order regardless of
completion order — so supervision, retry, and resume are all invisible
in the output of a run that succeeds.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.ioutil import atomic_write_json

#: Exit code of a CLI run that completed with quarantined (degraded)
#: tasks: partial statistics were produced and reported, but the run
#: is not whole.  Distinct from 1 (audit/regression failure) and 2
#: (usage/input error).
EXIT_DEGRADED = 3

#: Environment variable carrying a JSON :class:`WorkerFaultInjector`
#: spec — the CLI-reachable form of the test-only fault harness.
FAULT_ENV = "REPRO_EXEC_FAULT"

#: How long an injected "hang" sleeps; far beyond any sane deadline.
_HANG_S = 3600.0

#: Grace period for reaping a child that already delivered its result.
_REAP_S = 5.0


# ---------------------------------------------------------------------------
# Policy, failures, outcome.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionPolicy:
    """Supervision knobs for one fan-out.

    ``task_timeout_s`` is a *wall-clock* deadline per attempt (None =
    no deadline; hung workers then only die with the run).
    ``max_attempts`` counts the first try plus retries; a task is
    quarantined after its last attempt fails.  Backoff before retry
    *k* (1-based) is ``backoff_base_s * 2**(k-1)`` capped at
    ``backoff_max_s``.
    """

    task_timeout_s: Optional[float] = None
    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_max_s: float = 30.0
    poll_interval_s: float = 0.05

    def __post_init__(self):
        if self.task_timeout_s is not None and not self.task_timeout_s > 0:
            raise ValueError(
                f"task_timeout_s must be > 0, got {self.task_timeout_s}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff must be >= 0")
        if not self.poll_interval_s > 0:
            raise ValueError("poll_interval_s must be > 0")

    def backoff_s(self, failures: int) -> float:
        """Sleep before the retry following the ``failures``-th failure."""
        return min(
            self.backoff_base_s * (2.0 ** max(failures - 1, 0)),
            self.backoff_max_s,
        )


DEFAULT_POLICY = ExecutionPolicy()


def validate_workers(workers) -> int:
    """The established worker-count contract: a positive integer."""
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(
            f"workers must be a positive integer, got {workers!r}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass
class TaskFailure:
    """One quarantined task: every attempt failed."""

    index: int
    label: str
    attempts: int
    causes: List[str] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"{self.label} failed after {self.attempts} attempt(s): "
            f"{', '.join(self.causes)}"
        )

    def to_dict(self) -> Dict:
        return {
            "task": self.index,
            "label": self.label,
            "attempts": self.attempts,
            "causes": list(self.causes),
        }


class ExecutionError(RuntimeError):
    """Raised in strict mode when tasks exhausted their retry budget.

    Unlike ``BrokenProcessPool`` the message names every failing task
    by label, with the per-attempt causes.
    """

    def __init__(self, failures: Sequence[TaskFailure], total: int):
        self.failures = list(failures)
        self.total = total
        detail = "; ".join(f.describe() for f in self.failures)
        super().__init__(
            f"{len(self.failures)}/{total} task(s) exhausted their "
            f"retry budget — {detail}"
        )


class ExecutionInterrupted(KeyboardInterrupt):
    """Ctrl-C during a supervised fan-out, after pool teardown.

    The pool kills every live worker and leaves the checkpoint spool
    flushed before raising, so ``resume_hint`` (when checkpointing was
    active) is honest: completed work is on disk.
    """

    def __init__(
        self,
        completed: int,
        total: int,
        checkpoint_dir: Optional[str] = None,
    ):
        self.completed = completed
        self.total = total
        self.checkpoint_dir = checkpoint_dir
        if checkpoint_dir is not None:
            self.resume_hint = (
                f"{completed}/{total} task(s) checkpointed; resume "
                f"with --resume {checkpoint_dir}"
            )
        else:
            self.resume_hint = (
                f"{completed}/{total} task(s) finished but not "
                f"checkpointed; use --resume DIR to make runs resumable"
            )
        super().__init__(self.resume_hint)


@dataclass
class MapOutcome:
    """The fold-ready outcome of one supervised fan-out.

    ``results`` is in task order with ``None`` in quarantined slots;
    callers that cannot tolerate holes should check :attr:`ok` (or run
    in strict mode upstream, which raises :class:`ExecutionError`).
    """

    results: List[Any]
    failures: List[TaskFailure]
    resumed: int = 0
    retries: int = 0
    requested_workers: int = 1
    effective_workers: int = 1

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> int:
        return len(self.results) - len(self.failures)

    def degraded(self) -> Optional[Dict]:
        """The report-ready ``degraded`` block, or None when whole.

        Absent on clean runs by design: reports (and their content
        hashes) of undisturbed campaigns stay byte-identical to the
        pre-supervision era.
        """
        if not self.failures:
            return None
        return {
            "missing": [f.to_dict() for f in self.failures],
            "completed": self.completed,
            "total": len(self.results),
        }


# ---------------------------------------------------------------------------
# Test-only worker fault injection (chaos for the harness itself).
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerFaultInjector:
    """Deterministically break chosen attempts of one task.

    ``mode``: ``kill`` (SIGKILL mid-task), ``hang`` (sleep past any
    deadline), ``corrupt`` (deliver an unpicklable result payload), or
    ``error`` (raise inside the worker).  The fault fires on task
    ``task`` for the first ``attempts`` attempts, so the retry path is
    exercised (``attempts`` < budget) or the quarantine path is
    (``attempts`` >= budget) — deterministically either way.
    """

    mode: str
    task: int = 0
    attempts: int = 1

    MODES = ("kill", "hang", "corrupt", "error")

    def __post_init__(self):
        if self.mode not in self.MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; known: "
                f"{', '.join(self.MODES)}"
            )

    def applies(self, index: int, attempt: int) -> bool:
        return index == self.task and attempt <= self.attempts

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkerFaultInjector":
        known = {"mode", "task", "attempts"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown fault injector field(s) {unknown}; known: "
                f"{', '.join(sorted(known))}"
            )
        return cls(**data)

    @classmethod
    def from_env(cls) -> Optional["WorkerFaultInjector"]:
        raw = os.environ.get(FAULT_ENV)
        if not raw:
            return None
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{FAULT_ENV}: unparseable JSON: {exc}")
        if not isinstance(data, dict):
            raise ValueError(f"{FAULT_ENV}: must be a JSON object")
        return cls.from_dict(data)


_INSTALLED_FAULT: Optional[WorkerFaultInjector] = None


def install_worker_fault(
    injector: Optional[WorkerFaultInjector],
) -> Optional[WorkerFaultInjector]:
    """Install (or clear, with None) the in-process fault injector.

    Returns the previously installed injector so tests can restore it.
    fork()ed workers inherit the installed injector by memory snapshot.
    """
    global _INSTALLED_FAULT
    previous = _INSTALLED_FAULT
    _INSTALLED_FAULT = injector
    return previous


def active_fault_injector() -> Optional[WorkerFaultInjector]:
    """The in-process injector, else the ``REPRO_EXEC_FAULT`` one."""
    if _INSTALLED_FAULT is not None:
        return _INSTALLED_FAULT
    return WorkerFaultInjector.from_env()


def fault_injection_active() -> bool:
    """True when supervised (forked) execution must be used even at
    ``workers=1`` so kill/hang faults hit a child, not the parent."""
    return active_fault_injector() is not None


# ---------------------------------------------------------------------------
# Crash-safe checkpoint spool.
# ---------------------------------------------------------------------------
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint directory that cannot serve this run (exit 2)."""


class CheckpointStore:
    """Atomic per-task artifact spool keyed by a run identity.

    Layout: ``<root>/manifest.json`` binds the directory to one
    ``run_key`` (a content hash of everything that determines the task
    list and row shape) and task count; ``<root>/task-<i>.json`` holds
    task *i*'s JSON-serializable result.  Every file is written via
    temp-file + ``os.replace``, so a file either exists whole or not
    at all — a crashed run leaves a valid spool.

    Opening an existing spool with a different ``run_key`` raises
    :class:`CheckpointError`: resuming folds stored artifacts into a
    new run, which is only sound when the runs are identical.
    """

    def __init__(self, root: str, run_key: str, tasks: int):
        self.root = os.path.abspath(root)
        self.run_key = run_key
        self.tasks = tasks
        os.makedirs(self.root, exist_ok=True)
        manifest_path = os.path.join(self.root, "manifest.json")
        if os.path.exists(manifest_path):
            try:
                with open(manifest_path, encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                raise CheckpointError(
                    f"checkpoint manifest {manifest_path!r} is "
                    f"unreadable: {exc}"
                ) from None
            stale = (
                manifest.get("checkpoint_version") != CHECKPOINT_VERSION
                or manifest.get("run_key") != run_key
                or manifest.get("tasks") != tasks
            )
            if stale:
                raise CheckpointError(
                    f"checkpoint dir {self.root!r} belongs to a "
                    f"different run (run_key "
                    f"{manifest.get('run_key')!r}, "
                    f"{manifest.get('tasks')!r} tasks; this run is "
                    f"{run_key!r}, {tasks} tasks) — use a fresh "
                    f"directory"
                )
        else:
            atomic_write_json(manifest_path, {
                "checkpoint_version": CHECKPOINT_VERSION,
                "run_key": run_key,
                "tasks": tasks,
            })

    def _task_path(self, index: int) -> str:
        return os.path.join(self.root, f"task-{index:05d}.json")

    def save(self, index: int, result) -> None:
        """Atomically spool one completed task's artifact.

        ``sort_keys`` is off: dict insertion order is part of some fold
        algebras (e.g. per-group aggregation), and JSON preserves it.
        """
        try:
            atomic_write_json(
                self._task_path(index),
                {"index": index, "run_key": self.run_key,
                 "result": result},
                indent=None,
                sort_keys=False,
            )
        except TypeError as exc:
            raise CheckpointError(
                f"task {index} result is not JSON-serializable "
                f"(checkpointing needs mergeable plain-data "
                f"artifacts): {exc}"
            ) from None

    def load_completed(self) -> Dict[int, Any]:
        """Every valid spooled artifact, keyed by task index.

        Entries that are unreadable or mismatched are skipped — an
        invalid spool entry is equivalent to incomplete work, and the
        deterministic recompute repairs it.
        """
        out: Dict[int, Any] = {}
        for index in range(self.tasks):
            path = self._task_path(index)
            if not os.path.exists(path):
                continue
            try:
                with open(path, encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if (
                isinstance(entry, dict)
                and entry.get("run_key") == self.run_key
                and entry.get("index") == index
            ):
                out[index] = entry.get("result")
        return out


# ---------------------------------------------------------------------------
# The supervised pool.
# ---------------------------------------------------------------------------
def _child_main(worker, task, index: int, attempt: int, conn) -> None:
    """Entry point of one fork()ed task attempt.

    Sends ``("ok", result)`` or ``("error", message)`` over the pipe
    and exits; crashes and kills surface to the parent as EOF plus the
    process exit code.  The test-only fault injector hooks in here —
    the only place it exists at runtime.
    """
    injector = active_fault_injector()
    inject = injector is not None and injector.applies(index, attempt)
    if inject and injector.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if inject and injector.mode == "hang":
        time.sleep(_HANG_S)
    try:
        if inject and injector.mode == "error":
            raise RuntimeError(
                f"injected worker fault (task {index}, "
                f"attempt {attempt})"
            )
        result = worker(task)
    except BaseException as exc:  # report, then die quietly
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            conn.close()
        finally:
            os._exit(1)
    if inject and injector.mode == "corrupt":
        # A payload the parent's unpickler rejects: torn/garbled IPC.
        conn.send_bytes(b"\x00not-a-pickle\x00")
    else:
        conn.send(("ok", result))
    conn.close()


class _Attempt:
    """Parent-side state of one running task attempt."""

    __slots__ = ("index", "attempt", "proc", "conn", "deadline")

    def __init__(self, index, attempt, proc, conn, deadline):
        self.index = index
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.deadline = deadline


def _spawn(ctx, worker, task, index, attempt, policy) -> _Attempt:
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_child_main,
        args=(worker, task, index, attempt, send_conn),
        daemon=True,
    )
    proc.start()
    # Close the parent's copy of the write end: the read end then sees
    # EOF the moment the child dies, delivering crash detection for
    # free through the same wait() that delivers results.
    send_conn.close()
    deadline = None
    if policy.task_timeout_s is not None:
        deadline = time.monotonic() + policy.task_timeout_s
    return _Attempt(index, attempt, proc, conn=recv_conn,
                    deadline=deadline)


def _reap(child: _Attempt, kill: bool = False) -> Optional[int]:
    """Tear one attempt down; returns the exit code if known."""
    if kill and child.proc.is_alive():
        child.proc.kill()
    child.proc.join(timeout=_REAP_S)
    if child.proc.is_alive():  # refused to die in time: force it
        child.proc.kill()
        child.proc.join(timeout=_REAP_S)
    exitcode = child.proc.exitcode
    try:
        child.proc.close()
    except ValueError:
        pass
    try:
        child.conn.close()
    except OSError:
        pass
    return exitcode


def supervised_map(
    worker: Callable,
    tasks: Sequence,
    *,
    workers: int = 1,
    policy: Optional[ExecutionPolicy] = None,
    labels: Optional[Sequence[str]] = None,
    checkpoint: Optional[CheckpointStore] = None,
) -> MapOutcome:
    """Fan ``tasks`` out over supervised fork()ed workers.

    One process per task attempt, at most ``min(workers, len(tasks))``
    concurrent.  Crashed workers (any death without a delivered
    result: segfault, OOM kill, ``os._exit``), hung workers (attempt
    deadline exceeded), corrupt result payloads, and in-worker
    exceptions are each retried with exponential backoff up to
    ``policy.max_attempts``, then quarantined as :class:`TaskFailure`
    — other tasks keep running either way.  Results return in task
    order, byte-identical at any worker count.

    With ``checkpoint``, completed artifacts are spooled atomically as
    they land and already-spooled tasks are folded from disk instead
    of re-running — the resume path.  Ctrl-C kills every live worker
    and raises :class:`ExecutionInterrupted` (the spool stays valid).
    """
    workers = validate_workers(workers)
    tasks = list(tasks)
    total = len(tasks)
    policy = policy or DEFAULT_POLICY
    if labels is None:
        labels = [f"task {i}" for i in range(total)]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != total:
            raise ValueError(
                f"{len(labels)} labels for {total} tasks"
            )
    effective = min(workers, total)
    results: List[Any] = [None] * total
    done = [False] * total
    causes: Dict[int, List[str]] = {}
    failures: Dict[int, TaskFailure] = {}
    resumed = 0
    retries = 0

    if checkpoint is not None:
        for index, value in checkpoint.load_completed().items():
            if 0 <= index < total:
                results[index] = value
                done[index] = True
                resumed += 1

    #: (index, attempt, not_before) — attempt is 1-based.
    pending = deque(
        (i, 1, 0.0) for i in range(total) if not done[i]
    )
    active: Dict[int, _Attempt] = {}
    ctx = multiprocessing.get_context("fork")

    def record_failure(child: _Attempt, cause: str) -> None:
        nonlocal retries
        causes.setdefault(child.index, []).append(cause)
        if child.attempt < policy.max_attempts:
            retries += 1
            not_before = (
                time.monotonic() + policy.backoff_s(child.attempt)
            )
            pending.append((child.index, child.attempt + 1, not_before))
        else:
            failures[child.index] = TaskFailure(
                index=child.index,
                label=labels[child.index],
                attempts=child.attempt,
                causes=causes.pop(child.index),
            )

    def finish(child: _Attempt) -> None:
        """Classify a readable pipe: result, error, corrupt, crash."""
        try:
            message = child.conn.recv()
        except EOFError:
            exitcode = _reap(child)
            if exitcode is not None and exitcode < 0:
                try:
                    name = signal.Signals(-exitcode).name
                except ValueError:
                    name = str(-exitcode)
                record_failure(child, f"crash(signal {name})")
            else:
                record_failure(child, f"crash(exit {exitcode})")
            return
        except Exception as exc:  # unpicklable / truncated payload
            _reap(child, kill=True)
            record_failure(
                child, f"corrupt-result({type(exc).__name__})"
            )
            return
        _reap(child, kill=True)
        if (
            isinstance(message, tuple)
            and len(message) == 2
            and message[0] == "ok"
        ):
            index = child.index
            results[index] = message[1]
            done[index] = True
            causes.pop(index, None)
            if checkpoint is not None:
                checkpoint.save(index, message[1])
        elif (
            isinstance(message, tuple)
            and len(message) == 2
            and message[0] == "error"
        ):
            record_failure(child, f"exception({message[1]})")
        else:
            record_failure(child, "corrupt-result(protocol)")

    try:
        while pending or active:
            now = time.monotonic()
            # Launch every ready pending attempt while capacity lasts.
            launched = True
            while launched and pending and len(active) < effective:
                launched = False
                for slot in range(len(pending)):
                    index, attempt, not_before = pending[slot]
                    if not_before <= now:
                        del pending[slot]
                        active[index] = _spawn(
                            ctx, worker, tasks[index], index, attempt,
                            policy,
                        )
                        launched = True
                        break

            # How long to wait: the nearest deadline, the nearest
            # backoff expiry (when a slot is free for it), or a poll
            # tick — whichever comes first.
            waits = [policy.poll_interval_s]
            deadlines = [
                child.deadline for child in active.values()
                if child.deadline is not None
            ]
            if deadlines:
                waits.append(max(min(deadlines) - now, 0.0))
            if pending and len(active) < effective:
                soonest = min(item[2] for item in pending)
                waits.append(max(soonest - now, 0.0))
            timeout = min(waits)

            if active:
                ready = mp_connection.wait(
                    [child.conn for child in active.values()], timeout
                )
                ready_set = set(ready)
                # Results and deaths first (a delivered result always
                # beats a deadline that expired during delivery) ...
                for child in list(active.values()):
                    if child.conn in ready_set:
                        del active[child.index]
                        finish(child)
                # ... then hung-worker deadlines.
                now = time.monotonic()
                for child in list(active.values()):
                    if child.deadline is not None and now >= child.deadline:
                        del active[child.index]
                        _reap(child, kill=True)
                        record_failure(
                            child,
                            f"timeout({policy.task_timeout_s:g}s)",
                        )
            elif timeout > 0:
                time.sleep(timeout)
    except KeyboardInterrupt:
        raise ExecutionInterrupted(
            completed=sum(done),
            total=total,
            checkpoint_dir=(
                checkpoint.root if checkpoint is not None else None
            ),
        )
    finally:
        for child in active.values():
            _reap(child, kill=True)
        active.clear()

    return MapOutcome(
        results=results,
        failures=[failures[i] for i in sorted(failures)],
        resumed=resumed,
        retries=retries,
        requested_workers=workers,
        effective_workers=effective,
    )


def execute(
    worker: Callable,
    tasks: Sequence,
    *,
    workers: int = 1,
    policy: Optional[ExecutionPolicy] = None,
    labels: Optional[Sequence[str]] = None,
    checkpoint: Optional[CheckpointStore] = None,
) -> MapOutcome:
    """The engines' single entry point: serial in-process or supervised.

    ``workers=1`` with no supervision request (no policy, no
    checkpoint, no fault injector) runs tasks serially in-process —
    the degenerate case every byte-identity claim is anchored to, and
    the only mode where non-mergeable in-process observers can be fed
    directly.  Anything else goes through :func:`supervised_map`.
    """
    workers = validate_workers(workers)
    if (
        workers == 1
        and policy is None
        and checkpoint is None
        and not fault_injection_active()
    ):
        tasks = list(tasks)
        results: List[Any] = []
        try:
            for task in tasks:
                results.append(worker(task))
        except KeyboardInterrupt:
            raise ExecutionInterrupted(
                completed=len(results), total=len(tasks)
            )
        return MapOutcome(
            results=results,
            failures=[],
            requested_workers=workers,
            effective_workers=min(workers, len(tasks)),
        )
    return supervised_map(
        worker, tasks, workers=workers, policy=policy, labels=labels,
        checkpoint=checkpoint,
    )


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "DEFAULT_POLICY",
    "EXIT_DEGRADED",
    "ExecutionError",
    "ExecutionInterrupted",
    "ExecutionPolicy",
    "FAULT_ENV",
    "MapOutcome",
    "TaskFailure",
    "WorkerFaultInjector",
    "active_fault_injector",
    "execute",
    "fault_injection_active",
    "install_worker_fault",
    "supervised_map",
    "validate_workers",
]
