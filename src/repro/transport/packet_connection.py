"""Packet-level QUIC(*) connection over the event-driven router.

Implements the same ``download()`` / ``download_iter()`` contract as
:class:`repro.transport.connection.QuicConnection`, but at per-packet
granularity: the sender keeps ``cwnd`` packets in flight, ACKs clock out
new packets, CUBIC reacts to individual drops, and unreliable streams
record the exact byte intervals of dropped packets.

This backend is ~2 orders of magnitude slower than the round-based one;
it exists to validate the fast model (``benchmarks/bench_backends.py``)
and to support per-packet experiments such as multi-flow fairness
(:mod:`repro.experiments.fairness`).  Several connections can share one
:class:`~repro.network.packetlink.PacketRouter` and one scheduler — each
keeps its own per-download sender state, so concurrent flows (or full
sessions on a :class:`~repro.network.events.SimKernel`) interleave at
packet granularity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.network.clock import Clock
from repro.network.events import EventScheduler, Waiter, drive
from repro.network.packetlink import MTU, Packet, PacketRouter
from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.spans import current as _current_profiler
from repro.obs.tracer import NULL_TRACER
from repro.transport.base import (
    ByteInterval,
    DownloadResult,
    PAYLOAD_FRACTION,
    ProgressFn,
    REQUEST_RTT_COST,
    TransportFault,
    merge_intervals,
)
from repro.transport.cubic import CubicController

# Backward-compatible alias (historically imported from connection.py).
_merge_intervals = merge_intervals


class PacketLevelConnection:
    """Event-driven, per-packet congestion-controlled connection.

    Args:
        router: shared bottleneck router (possibly carrying other flows).
        scheduler: the event loop (shared with the router).
        clock: session clock to keep in sync with event time.
        partially_reliable: QUIC* (True) or plain QUIC (False).
    """

    def __init__(
        self,
        router: PacketRouter,
        scheduler: EventScheduler,
        clock: Optional[Clock] = None,
        partially_reliable: bool = True,
        tracer=None,
    ):
        self.router = router
        self.scheduler = scheduler
        self.clock = clock if clock is not None else Clock(scheduler.now)
        self.partially_reliable = partially_reliable
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cc = CubicController()
        self._payload = max(int(MTU * PAYLOAD_FRACTION), 1)
        registry = get_registry()
        self._ctr_delivered = registry.counter("transport.bytes_delivered")
        self._ctr_lost = registry.counter("transport.bytes_lost")
        self._prof = _current_profiler()

        # Per-download state (reset in _arm()).
        self._reliable = True
        self._limit = 0
        self._next_offset = 0
        self._inflight: Dict[int, int] = {}  # sequence -> byte offset
        self._next_sequence = 0
        self._delivered_bytes = 0
        self._lost: List[ByteInterval] = []
        self._retx_queue: List[int] = []  # byte offsets to resend
        self._last_loss_time = -1.0
        self._progress: Optional[ProgressFn] = None
        self._start_time = 0.0
        self._done = False
        self._done_time = 0.0
        self._round = 0  # send-burst counter (reset per download)
        self._waiter: Optional[Waiter] = None  # wakes the download process
        self._latency = 0.0

        # Fault machinery.  ``_epoch`` tokens guard deadline/reset
        # callbacks scheduled for a download against firing into a later
        # one; ``_failed`` carries the fault across the waiter wake.
        self.fault_plan = None
        self._epoch = 0
        self._failed: Optional[TransportFault] = None

        # Lifetime counters.
        self.total_delivered = 0
        self.total_lost = 0

    # -- sender machinery ------------------------------------------------
    def _bytes_at(self, offset: int) -> int:
        return min(self._payload, self._limit - offset)

    def _outstanding(self) -> bool:
        return (
            self._next_offset < self._limit
            or bool(self._retx_queue)
            or bool(self._inflight)
        )

    def _pump(self) -> None:
        """Send packets while the window allows."""
        prof = self._prof
        frame = prof.push("transport.pump", "transport") \
            if prof is not None else None
        injected = 0
        while (
            len(self._inflight) < max(int(self.cc.cwnd), 1)
            and (self._retx_queue or self._next_offset < self._limit)
        ):
            if self._retx_queue:
                offset = self._retx_queue.pop(0)
            else:
                offset = self._next_offset
                self._next_offset += self._bytes_at(offset)
            sequence = self._next_sequence
            self._next_sequence += 1
            self._inflight[sequence] = offset
            self.router.enqueue(Packet(flow=self, sequence=sequence))
            injected += 1
        if injected and self.tracer.enabled:
            # One event per send burst: `offered` is what this pump put
            # on the wire (<= cwnd by the loop guard), `inflight` the
            # resulting outstanding total.  Drops surface separately as
            # packet_loss events when the sender detects them.
            self._round += 1
            self.tracer.emit_at(
                self.scheduler.now,
                ev.TRANSPORT_ROUND,
                round=self._round,
                rtt=2 * self.router.propagation_s + 0.002,
                offered=injected,
                dropped=0,
                cwnd=float(self.cc.cwnd),
                inflight=len(self._inflight),
            )
        if frame is not None:
            prof.pop(frame)

    # -- router callbacks --------------------------------------------------
    def on_delivered(self, packet: Packet) -> None:
        offset = self._inflight.pop(packet.sequence, None)
        if offset is None:
            return
        size = self._bytes_at(offset)
        self._delivered_bytes += size
        self.total_delivered += size
        self._ctr_delivered.inc(size)
        # ACK path: per-ACK window growth approximated by crediting a
        # fraction of a round per delivered packet.
        rtt = 2 * self.router.propagation_s + 0.002
        window = max(int(self.cc.cwnd), 1)
        queue_pressure = self.router.queue_occupancy / max(
            self.router.queue_packets, 1
        )
        if packet.sequence % window == 0:
            self.cc.on_round(rtt=rtt, lost=False,
                             queue_pressure=queue_pressure)
        self._pump()
        self._check_done()

    def on_dropped(self, packet: Packet) -> None:
        """Router tail-dropped a packet.

        Crucially, the *sender* only detects the loss one RTT later
        (duplicate ACKs / timeout), so the congestion-window slot stays
        occupied until then — freeing it synchronously would let the
        sender machine-gun a full queue in zero simulated time.
        """
        if packet.sequence not in self._inflight:
            return
        rtt = 2 * self.router.propagation_s
        self.scheduler.schedule(
            rtt, lambda: self._loss_detected(packet.sequence)
        )

    def _loss_detected(self, sequence: int) -> None:
        offset = self._inflight.pop(sequence, None)
        if offset is None:
            # Stale detection: the packet's download was killed by a
            # fault after the router counted the drop.  Still surface a
            # loss event so the shared-link conservation law (router
            # drops == sum of packet_loss events) stays auditable.
            if self.tracer.enabled:
                self.tracer.emit_at(
                    self.scheduler.now,
                    ev.PACKET_LOSS,
                    dropped_packets=1,
                    lost_bytes=0,
                    reliable=True,
                )
            return
        size = self._bytes_at(offset)
        if self._reliable:
            self._retx_queue.append(offset)
        else:
            self._lost.append((offset, offset + size))
            self.total_lost += size
            self._ctr_lost.inc(size)
        if self.tracer.enabled:
            self.tracer.emit_at(
                self.scheduler.now,
                ev.PACKET_LOSS,
                dropped_packets=1,
                lost_bytes=0 if self._reliable else size,
                reliable=self._reliable,
            )
        # One multiplicative decrease per RTT worth of losses.
        now = self.scheduler.now
        rtt = 2 * self.router.propagation_s
        if now - self._last_loss_time > rtt:
            self._last_loss_time = now
            self.cc.on_round(rtt=rtt + 0.002, lost=True)
        self._pump()
        self._check_done()

    def _check_done(self) -> None:
        if self._done:
            return
        if self._progress is not None:
            sent = min(self._next_offset, self._limit)
            new_limit = self._progress(
                self.scheduler.now - self._start_time, sent
            )
            if new_limit is not None:
                self._limit = max(min(new_limit, self._limit), sent)
        if not self._outstanding():
            self._done = True
            self._done_time = self.scheduler.now
            if self._waiter is not None:
                self._waiter.wake()

    # -- public API --------------------------------------------------------
    def _arm(
        self,
        nbytes: int,
        reliable: bool,
        progress: Optional[ProgressFn],
    ) -> float:
        """Reset per-download sender state and schedule the request.

        Returns the request latency; the first pump and completion check
        fire after it.
        """
        self._reliable = reliable
        self._limit = nbytes
        self._next_offset = 0
        self._inflight = {}
        self._delivered_bytes = 0
        self._lost = []
        self._retx_queue = []
        self._progress = progress
        self._done = False
        self._round = 0

        # Request latency: one RTT.
        latency = (2 * self.router.propagation_s) * REQUEST_RTT_COST
        self._latency = latency
        self._start_time = self.scheduler.now
        self.scheduler.schedule(latency, self._pump)
        self.scheduler.schedule(latency, self._check_done)
        return latency

    def _fault_fired(self, epoch: int, kind: str, at: Optional[float]) -> None:
        """Deadline/reset callback: kill the in-flight download.

        The epoch token (and the ``_done`` flag) make stale callbacks —
        fired after their download completed — harmless no-ops.
        """
        if epoch != self._epoch or self._done:
            return
        now = self.scheduler.now
        self._failed = TransportFault(
            kind,
            DownloadResult(
                requested=self._limit,
                delivered=self._delivered_bytes,
                lost=merge_intervals(self._lost),
                elapsed=now - self._start_time,
                truncated_at=None,
                rounds=self._round,
                request_latency=self._latency,
            ),
            at=at,
        )
        # Drop all in-flight tracking: router callbacks for packets still
        # in the queue pop nothing and no-op.
        self._inflight = {}
        self._retx_queue = []
        self._done = True
        self._done_time = now
        if self._waiter is not None:
            self._waiter.wake()

    def download(
        self,
        nbytes: int,
        reliable: bool = True,
        progress: Optional[ProgressFn] = None,
    ) -> DownloadResult:
        """Blocking fetch (legacy mode); same contract as the round backend."""
        return drive(
            self.download_iter(nbytes, reliable=reliable, progress=progress),
            self.clock,
            scheduler=self.scheduler,
        )

    def download_iter(
        self,
        nbytes: int,
        reliable: bool = True,
        progress: Optional[ProgressFn] = None,
        deadline_s: Optional[float] = None,
    ):
        """Fetch ``nbytes`` as a kernel process.

        Arms the sender state machine, then yields a
        :class:`~repro.network.events.Waiter` that fires when the last
        outstanding packet is accounted for — the driver (kernel or
        :func:`~repro.network.events.drive`) runs the event loop in the
        meantime, interleaving any other flows on the shared router.

        With ``deadline_s`` set (or a fault plan attached), the waiter
        can instead be woken by a deadline/reset callback, in which case
        a :class:`~repro.transport.base.TransportFault` carrying the
        partial byte accounting is raised.
        """
        if nbytes < 0:
            raise ValueError(f"cannot download {nbytes} bytes")
        if not self.partially_reliable:
            reliable = True
        if nbytes == 0:
            return DownloadResult(0, 0, [], 0.0)

        # Span covers the whole request (held across the waiter yield:
        # the pump/ACK/loss callbacks the event loop runs meanwhile nest
        # under it, and its sim plane is the request's duration).
        prof = self._prof
        dl_frame = prof.push("transport.download", "transport") \
            if prof is not None else None

        requested_limit = nbytes
        latency = self._arm(nbytes, reliable, progress)
        start = self._start_time
        self._epoch += 1
        epoch = self._epoch
        self._failed = None
        if deadline_s is not None:
            self.scheduler.schedule(
                deadline_s,
                lambda: self._fault_fired(epoch, "timeout", None),
            )
        if self.fault_plan is not None:
            reset_at = self.fault_plan.reset_between(start, float("inf"))
            if reset_at is not None:
                self.scheduler.schedule(
                    reset_at - start,
                    lambda: self._fault_fired(epoch, "reset", reset_at),
                )
        waiter = Waiter()
        self._waiter = waiter
        yield waiter
        self._waiter = None
        if dl_frame is not None:
            prof.pop(dl_frame)

        if self._failed is not None:
            fault = self._failed
            self._failed = None
            raise fault

        elapsed = self.scheduler.now - start
        lost = merge_intervals(self._lost)
        truncated = self._limit if self._limit < requested_limit else None
        return DownloadResult(
            requested=self._limit,
            delivered=self._delivered_bytes,
            lost=lost,
            elapsed=elapsed,
            truncated_at=truncated,
            request_latency=latency,
        )

    def reconnect(self) -> None:
        """Re-establish the connection after a :class:`TransportFault`.

        Fresh congestion state and loss-detection history; the shared
        router (and other flows' packets in its queue) is untouched.
        """
        self.cc = CubicController()
        self._last_loss_time = -1.0

    def idle(self, dt: float) -> None:
        """Advance event time while the application idles (blocking)."""
        if dt <= 0:
            return
        deadline = self.scheduler.now + dt
        self.scheduler.run_until(lambda: self.scheduler.now >= deadline)
        if self.scheduler.now < deadline:
            self.scheduler.now = deadline
        self.clock.now = self.scheduler.now

    def idle_iter(self, dt: float):
        """Kernel process form of :meth:`idle`.

        Unlike the blocking form (which may overshoot onto the first
        event past the deadline), this sleeps until *exactly* ``dt``
        later via a scheduled wake-up, letting other flows' events run
        in the meantime.
        """
        if dt <= 0:
            return None
        waiter = Waiter()
        self.scheduler.schedule(dt, waiter.wake)
        yield waiter
        return None
