"""Client-side resilience: deadlines, retry/backoff, partial-range resume.

:func:`resilient_download_iter` wraps either backend's ``download_iter``
in a retry chain that survives :class:`~repro.transport.base.TransportFault`
failures (expired deadlines, injected connection resets, server stalls):

* every attempt carries the per-request deadline from the
  :class:`RetryPolicy`;
* a failed attempt's *accounted* bytes — delivered plus deliberately
  lost on unreliable streams — are never re-requested: the next attempt
  issues a range request for exactly the remaining suffix, so bytes are
  conserved across the chain (the retry-accounting invariant audits
  this);
* retries back off exponentially and re-establish the connection
  (fresh congestion state) before resuming;
* the per-segment retry budget is shared across all requests of one
  segment via the :class:`RetryContext`; when it runs out,
  :class:`~repro.transport.base.RetryBudgetExhausted` escalates to the
  session's graceful-degradation policy.

With ``retry=None`` the wrapper is a byte-exact passthrough — sessions
without faults or timeouts configured take the legacy code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.transport.base import (
    DownloadResult,
    ProgressFn,
    RetryBudgetExhausted,
    TransportFault,
    merge_intervals,
)

#: Resilience event callback supplied by the session:
#: ``notify(kind, **fields)`` with kind in {"timeout", "reset", "retry"}.
NotifyFn = Callable[..., None]


@dataclass
class RetryPolicy:
    """Deadline/backoff/budget knobs for one session.

    Attributes:
        request_timeout_s: per-request deadline; None disables deadlines
            (injected resets can still fail a download).
        retry_budget: retries allowed per segment (shared across the
            segment's requests); 0 means any failure degrades at once.
        backoff_base_s: wait before the first retry.
        backoff_factor: multiplier per additional retry.
        backoff_max_s: backoff cap.
    """

    request_timeout_s: Optional[float] = None
    retry_budget: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_s: float = 8.0

    def backoff(self, failure_index: int) -> float:
        """Backoff before retry ``failure_index`` (1-based)."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(
            self.backoff_base_s
            * self.backoff_factor ** max(failure_index - 1, 0),
            self.backoff_max_s,
        )


@dataclass(slots=True)
class RetryContext:
    """Per-segment retry state threaded through a segment's requests.

    ``failures`` counts across the whole segment (prefix + payload
    downloads share one budget), so a segment cannot multiply its budget
    by splitting into more requests.
    """

    policy: RetryPolicy
    notify: NotifyFn
    failures: int = field(default=0)


def _sim_now(connection) -> float:
    scheduler = getattr(connection, "scheduler", None)
    if scheduler is not None:
        return scheduler.now
    return connection.clock.now


def resilient_download_iter(
    connection,
    nbytes: int,
    reliable: bool = True,
    progress: Optional[ProgressFn] = None,
    retry: Optional[RetryContext] = None,
):
    """Kernel process: ``download_iter`` with deadline/retry/resume.

    Returns one :class:`DownloadResult` describing the whole chain as if
    it were a single download: ``requested``/``delivered``/``lost`` in
    global request coordinates, ``elapsed`` including backoff waits and
    server stalls, ``rounds``/``request_latency`` summed over attempts.
    """
    if retry is None:
        result = yield from connection.download_iter(
            nbytes, reliable=reliable, progress=progress
        )
        return result

    policy = retry.policy
    plan = getattr(connection, "fault_plan", None)
    base = 0  # accounted bytes: delivered + deliberately lost, a prefix
    delivered_total = 0
    lost_all = []
    rounds = 0
    latency_total = 0.0
    chain_elapsed = 0.0
    chain_limit = nbytes  # global byte limit; progress may shrink it
    result = None

    while True:
        remaining = chain_limit - base
        if remaining <= 0:
            break

        deadline = policy.request_timeout_s
        fault: Optional[TransportFault] = None

        # Server-side stall fault: the server sits on the request for
        # ``delay`` seconds before the transfer starts.  A stall longer
        # than the deadline burns the whole deadline and fails without a
        # byte moved.
        if plan is not None:
            delay = plan.server_delay(_sim_now(connection))
            if delay > 0.0:
                if deadline is not None and delay >= deadline:
                    yield from connection.idle_iter(deadline)
                    fault = TransportFault(
                        "timeout",
                        DownloadResult(
                            requested=remaining, delivered=0, lost=[],
                            elapsed=deadline,
                        ),
                    )
                else:
                    yield from connection.idle_iter(delay)
                    chain_elapsed += delay
                    if deadline is not None:
                        deadline -= delay

        if fault is None:
            wrapped: Optional[ProgressFn] = None
            if progress is not None:
                attempt_base = base
                prev_elapsed = chain_elapsed

                def wrapped(elapsed_a, sent_a, _b=attempt_base,
                            _p=prev_elapsed):
                    nonlocal chain_limit
                    new_limit = progress(_p + elapsed_a, _b + sent_a)
                    if new_limit is None:
                        return None
                    chain_limit = max(
                        min(new_limit, chain_limit), _b + sent_a
                    )
                    return max(chain_limit - _b, sent_a)

            try:
                result = yield from connection.download_iter(
                    remaining, reliable=reliable, progress=wrapped,
                    deadline_s=deadline,
                )
            except TransportFault as exc:
                fault = exc
            else:
                delivered_total += result.delivered
                lost_all.extend(
                    (base + s, base + e) for s, e in result.lost
                )
                rounds += result.rounds
                latency_total += result.request_latency
                chain_elapsed += result.elapsed
                base += result.requested
                break

        # ---- failure path ---------------------------------------------
        partial = fault.partial
        delivered_total += partial.delivered
        lost_all.extend((base + s, base + e) for s, e in partial.lost)
        rounds += partial.rounds
        latency_total += partial.request_latency
        chain_elapsed += partial.elapsed
        base += fault.accounted_bytes

        retry.failures += 1
        n = retry.failures
        extra = {}
        if fault.kind == "timeout" and policy.request_timeout_s is not None:
            extra["deadline_s"] = policy.request_timeout_s
        if fault.kind == "reset" and fault.at is not None:
            extra["at"] = fault.at
        retry.notify(
            fault.kind,
            attempt=n - 1,
            elapsed=partial.elapsed,
            accounted_bytes=base,
            delivered_bytes=delivered_total,
            **extra,
        )
        if n > policy.retry_budget:
            raise RetryBudgetExhausted(
                fault, attempts=n, kept_bytes=base,
                delivered_bytes=delivered_total, elapsed=chain_elapsed,
            )
        backoff = policy.backoff(n)
        retry.notify(
            "retry",
            attempt=n,
            backoff_s=backoff,
            resume_bytes=base,
            remaining_bytes=chain_limit - base,
        )
        if backoff > 0:
            yield from connection.idle_iter(backoff)
            chain_elapsed += backoff
        reconnect = getattr(connection, "reconnect", None)
        if reconnect is not None:
            reconnect()

    requested_total = base  # == chain_limit unless nothing remained
    return DownloadResult(
        requested=requested_total,
        delivered=delivered_total,
        lost=merge_intervals(lost_all),
        elapsed=chain_elapsed,
        truncated_at=(
            requested_total if requested_total < nbytes else None
        ),
        rounds=rounds,
        request_latency=latency_total,
    )


__all__ = [
    "NotifyFn",
    "RetryContext",
    "RetryPolicy",
    "resilient_download_iter",
]
