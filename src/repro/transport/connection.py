"""QUIC* connection: reliable and unreliable streams over one CC context.

A :class:`QuicConnection` multiplexes downloads over a single congestion-
controlled context (CUBIC) across the emulated bottleneck link.  Two
stream flavours exist:

* **reliable** — lost packets are retransmitted until everything arrives
  (this is plain QUIC; also how QUIC* carries I-frames and headers),
* **unreliable** — lost packets are *not* retransmitted; the byte ranges
  that never arrived are reported to the application, which may later
  re-request them selectively (§4.2) via ordinary range requests.

Downloads run round-by-round: each round offers ``cwnd`` packets to the
link, learns what was tail-dropped, updates CUBIC, and yields the
experienced RTT to whatever is driving the simulation — either
:func:`~repro.network.events.drive` (the legacy blocking single-session
mode, via :meth:`QuicConnection.download`) or a
:class:`~repro.network.events.SimKernel` interleaving many sessions on
one shared link (via :meth:`QuicConnection.download_iter`).  An
application-supplied progress callback may truncate the request
mid-flight — the hook ABR* uses for mid-segment adjustments and smart
abandonment.
"""

from __future__ import annotations

from typing import List, Optional

from repro.network.clock import Clock
from repro.network.events import drive
from repro.network.link import BottleneckLink
from repro.obs import events as ev
from repro.obs.metrics import get_registry
from repro.obs.profiling import timed
from repro.obs.spans import current as _current_profiler
from repro.obs.tracer import NULL_TRACER
from repro.transport.base import (
    ByteInterval,
    DownloadResult,
    IDLE_TIMEOUT,
    PAYLOAD_FRACTION,
    ProgressFn,
    REQUEST_RTT_COST,
    TransportFault,
    merge_intervals,
)
from repro.transport.cubic import CubicController

# Backward-compatible aliases: these names historically lived here and
# are imported by tests and downstream code.
_merge_intervals = merge_intervals

__all__ = [
    "ByteInterval",
    "DownloadResult",
    "IDLE_TIMEOUT",
    "PAYLOAD_FRACTION",
    "ProgressFn",
    "QuicConnection",
    "REQUEST_RTT_COST",
    "merge_intervals",
]


class QuicConnection:
    """A congestion-controlled connection over a bottleneck link.

    Args:
        link: the emulated bottleneck (possibly shared with other
            connections; the link accounts contention once >= 2 attach).
        clock: shared simulation clock (advanced during downloads).
        partially_reliable: whether unreliable streams are available
            (QUIC* = True; plain QUIC = False, every download is
            reliable regardless of what the caller asks).
    """

    def __init__(
        self,
        link: BottleneckLink,
        clock: Optional[Clock] = None,
        partially_reliable: bool = True,
        tracer=None,
    ):
        self.link = link
        self.clock = clock if clock is not None else Clock()
        self.partially_reliable = partially_reliable
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cc = CubicController()
        self._last_active: Optional[float] = None
        # Optional FaultPlan (set by the backend factory): reset faults
        # are checked against it at round boundaries.
        self.fault_plan = None
        link.attach()
        # Lifetime counters for experiment accounting.
        self.total_delivered = 0
        self.total_lost = 0
        self.total_retransmitted = 0
        registry = get_registry()
        self._ctr_rounds = registry.counter("transport.rounds")
        self._ctr_delivered = registry.counter("transport.bytes_delivered")
        self._ctr_lost = registry.counter("transport.bytes_lost")
        self._ctr_retx = registry.counter("transport.bytes_retransmitted")
        self._prof = _current_profiler()

    # ------------------------------------------------------------------
    # record_span=False: download_iter (below) opens the
    # "transport.download" span itself; the blocking wrapper keeps only
    # the histogram so the two never double-nest.
    @timed("transport.download", record_span=False)
    def download(
        self,
        nbytes: int,
        reliable: bool = True,
        progress: Optional[ProgressFn] = None,
    ) -> DownloadResult:
        """Blocking fetch of ``nbytes`` over one stream (legacy mode)."""
        return drive(
            self.download_iter(nbytes, reliable=reliable, progress=progress),
            self.clock,
        )

    def download_iter(
        self,
        nbytes: int,
        reliable: bool = True,
        progress: Optional[ProgressFn] = None,
        deadline_s: Optional[float] = None,
    ):
        """Fetch ``nbytes`` over one stream, yielding time to the driver.

        On an unreliable stream the request's byte space ``[0, nbytes)``
        is sent exactly once in order; tail-dropped packets become lost
        intervals.  On a reliable stream losses are retransmitted (the
        retransmission consumes window like new data, so loss still slows
        the transfer).

        The progress callback runs after every round with the elapsed
        time and bytes sent so far; returning an integer truncates the
        request to that many bytes (never below what was already sent).

        With ``deadline_s`` set (or a fault plan attached), the download
        can die mid-flight: an expired deadline or an injected reset
        raises :class:`~repro.transport.base.TransportFault` carrying the
        partial byte accounting.  Faults are detected at round
        boundaries (the round model cannot interrupt a burst in flight).

        This is a kernel process: every ``yield dt`` suspends for ``dt``
        simulated seconds (one request round trip or one congestion
        round); the clock has advanced by ``dt`` when it resumes.
        """
        if nbytes < 0:
            raise ValueError(f"cannot download {nbytes} bytes")
        if not self.partially_reliable:
            reliable = True
        if nbytes == 0:
            return DownloadResult(0, 0, [], 0.0)

        self._maybe_idle_restart()

        # Span covers the whole request (held across yields: its sim
        # plane is the request's simulated duration).  Every exit path —
        # the final return and each raise inside _fail — pops it.
        prof = self._prof
        dl_frame = prof.push("transport.download", "transport") \
            if prof is not None else None

        # Hot-loop handles: all of these are stable for the lifetime of
        # one download (reconnect() only swaps the controller between
        # downloads), so the round loop skips the attribute traffic.
        link = self.link
        clock = self.clock
        cc = self.cc
        tracer = self.tracer
        tracing = tracer.enabled
        queue_limit = link.queue_packets * link.mtu

        # Application bytes carried per packet (headers cost the rest).
        payload = max(int(link.mtu * PAYLOAD_FRACTION), 1)
        start_time = clock.now
        # Request latency: one RTT for the HTTP request to reach the
        # server and the first byte to come back.
        first_rtt = link.current_rtt(clock.now)
        latency = first_rtt * REQUEST_RTT_COST

        limit = nbytes
        sent_new = 0  # first-transmission bytes sent so far (in order)
        delivered = 0
        lost_intervals: List[ByteInterval] = []
        retx_queue = 0  # reliable-mode bytes awaiting retransmission
        rounds = 0
        plan = self.fault_plan
        guarded = plan is not None or deadline_s is not None
        fault_from = start_time  # reset scan resumes where it left off

        def _fail(kind: str, at: Optional[float] = None) -> TransportFault:
            """Close the books on a failed download (partial accounting)."""
            intervals = merge_intervals(lost_intervals)
            lost_total = sum(e - s for s, e in intervals)
            self.total_delivered += delivered
            self.total_lost += lost_total
            self._ctr_rounds.inc(rounds)
            self._ctr_delivered.inc(delivered)
            self._ctr_lost.inc(lost_total)
            self._last_active = clock.now
            if dl_frame is not None:
                prof.pop(dl_frame)
            return TransportFault(
                kind,
                DownloadResult(
                    requested=limit,
                    delivered=delivered,
                    lost=intervals,
                    elapsed=clock.now - start_time,
                    truncated_at=None,
                    rounds=rounds,
                    request_latency=latency,
                ),
                at=at,
            )

        if deadline_s is not None and latency > deadline_s:
            # A congested queue can stretch the first-byte wait past the
            # deadline (blackouts drain at the rate floor); the client
            # gives up at the deadline with nothing transferred.
            yield deadline_s
            raise _fail("timeout")
        yield latency

        while sent_new < limit or retx_queue > 0:
            if guarded:
                now = clock.now
                reset_at = (
                    plan.reset_between(fault_from, now)
                    if plan is not None else None
                )
                fault_from = now
                if reset_at is not None:
                    raise _fail("reset", at=reset_at)
                if (
                    deadline_s is not None
                    and now - start_time >= deadline_s
                ):
                    raise _fail("timeout")
            cwnd_f = cc.cwnd
            cwnd_packets = int(cwnd_f)
            if cwnd_packets < 1:
                cwnd_packets = 1
            new_budget = limit - sent_new
            if retx_queue:
                retx_packets = (retx_queue + payload - 1) // payload
                if retx_packets > cwnd_packets:
                    retx_packets = cwnd_packets
            else:
                retx_packets = 0
            new_packets = (new_budget + payload - 1) // payload
            new_room = cwnd_packets - retx_packets
            if new_packets > new_room:
                new_packets = new_room
            burst = retx_packets + new_packets
            if burst == 0:
                burst = 1
                new_packets = 1 if new_budget > 0 else 0
                retx_packets = burst - new_packets

            rnd_frame = prof.push("transport.round", "transport") \
                if prof is not None else None
            outcome = link.offer_round(clock.now, burst)
            rtt = outcome.rtt
            rounds += 1
            if deadline_s is not None:
                elapsed_now = clock.now - start_time
                if elapsed_now + rtt > deadline_s:
                    # The round outlives the deadline (e.g. a blackout
                    # stretched it to minutes): the client stops waiting
                    # at the deadline.  The wire still carried the burst
                    # — the round event records it so link accounting
                    # balances — but its bytes never reach the
                    # application.
                    remaining = max(deadline_s - elapsed_now, 0.0)
                    if remaining > 0:
                        yield remaining
                    if tracing:
                        tracer.emit(
                            ev.TRANSPORT_ROUND,
                            round=rounds,
                            rtt=outcome.rtt,
                            offered=burst,
                            dropped=outcome.dropped_packets,
                            cwnd=float(cc.cwnd),
                            inflight=burst,
                        )
                        if outcome.dropped_packets:
                            tracer.emit(
                                ev.PACKET_LOSS,
                                dropped_packets=outcome.dropped_packets,
                                lost_bytes=0,
                                reliable=reliable,
                            )
                    raise _fail("timeout")
            yield rtt

            # Retransmissions ride at the front of the burst (they are
            # oldest data); tail drops therefore hit new data first.
            dropped = outcome.dropped_packets
            if dropped:
                new_dropped = dropped if dropped < new_packets else new_packets
                retx_dropped = dropped - new_dropped
            else:
                new_dropped = 0
                retx_dropped = 0

            # New-data accounting: the round sent bytes
            # [sent_new, sent_new + sent_bytes); the last new_dropped
            # packets of that range were tail-dropped.
            sent_bytes = new_packets * payload
            if sent_bytes > new_budget:
                sent_bytes = new_budget
            if new_dropped:
                ok_bytes = sent_bytes - new_dropped * payload
                if ok_bytes < 0:
                    ok_bytes = 0
            else:
                ok_bytes = sent_bytes
            if reliable:
                delivered += ok_bytes
                retx_queue += sent_bytes - ok_bytes
            else:
                delivered += ok_bytes
                if sent_bytes - ok_bytes > 0:
                    lost_intervals.append(
                        (sent_new + ok_bytes, sent_new + sent_bytes)
                    )
            sent_new += sent_bytes

            if tracing:
                # Direct fields-dict emission (no kwargs relay).  In the
                # round model everything offered is in flight for exactly
                # one RTT; recording it makes the congestion-compliance
                # invariant auditable.
                tracer.emit_fields(None, ev.TRANSPORT_ROUND, {
                    "round": rounds,
                    "rtt": rtt,
                    "offered": burst,
                    "dropped": dropped,
                    "cwnd": float(cwnd_f),
                    "inflight": burst,
                })
                if dropped:
                    tracer.emit_fields(None, ev.PACKET_LOSS, {
                        "dropped_packets": dropped,
                        "lost_bytes": 0 if reliable else sent_bytes - ok_bytes,
                        "reliable": reliable,
                    })

            # Retransmission accounting (reliable only).
            if retx_packets:
                retx_sent = min(retx_packets * payload, retx_queue)
                retx_ok = max(retx_sent - retx_dropped * payload, 0)
                delivered += retx_ok
                retx_queue -= retx_ok
                self.total_retransmitted += retx_ok
                self._ctr_retx.inc(retx_ok)

            pressure = (
                link.queue_bytes / queue_limit if queue_limit else 0.0
            )
            # Application-limited rounds (burst below the window) must
            # not grow the window: the round proves nothing about the
            # path, and unchecked doubling across request tails leads to
            # a catastrophic burst on the next full window.
            if burst >= cwnd_packets or dropped:
                cc.on_round(rtt, dropped > 0, pressure)

            if progress is not None:
                new_limit = progress(clock.now - start_time, sent_new)
                if new_limit is not None:
                    if new_limit < limit:
                        limit = new_limit
                    if limit < sent_new:
                        limit = sent_new
            if rnd_frame is not None:
                prof.pop(rnd_frame)

        self._last_active = clock.now
        lost_intervals = merge_intervals(lost_intervals)
        self.total_delivered += delivered
        self.total_lost += sum(end - start for start, end in lost_intervals)
        self._ctr_rounds.inc(rounds)
        self._ctr_delivered.inc(delivered)
        self._ctr_lost.inc(
            sum(end - start for start, end in lost_intervals)
        )
        truncated = limit if limit < nbytes else None
        if dl_frame is not None:
            prof.pop(dl_frame)
        return DownloadResult(
            requested=limit,
            delivered=delivered,
            lost=lost_intervals,
            elapsed=clock.now - start_time,
            truncated_at=truncated,
            rounds=rounds,
            request_latency=latency,
        )

    def reconnect(self) -> None:
        """Re-establish the connection after a :class:`TransportFault`.

        Congestion state restarts from scratch (a new connection has no
        path history); the shared link and its queue are untouched, so
        co-resident flows keep their state.
        """
        self.cc = CubicController()
        self._last_active = None

    def idle(self, dt: float) -> None:
        """Account an application idle period (player buffer full)."""
        drive(self.idle_iter(dt), self.clock)

    def idle_iter(self, dt: float):
        """Kernel process form of :meth:`idle` (yields the idle time)."""
        if dt <= 0:
            return None
        self.link.drain(self.clock.now, dt)
        yield dt
        return None

    # ------------------------------------------------------------------
    def _maybe_idle_restart(self) -> None:
        if (
            self._last_active is not None
            and self.clock.now - self._last_active > IDLE_TIMEOUT
        ):
            self.cc.after_idle()
            self.link.drain(self._last_active, self.clock.now - self._last_active)
