"""HTTP layer tying the application to QUIC* streams (§4.2).

The paper interfaces the layers with HTTP semantics: a VOXEL-aware client
sends an ``x-voxel-unreliable`` header on range requests it is willing to
receive over an unreliable stream; a VOXEL-aware server then opens one.
If either side is unaware, everything falls back to reliable streams and
the plain (decode-order) segment layout — full backward compatibility.

:class:`VoxelHttp` models a client endpoint talking to a server about one
video.  Its central operation is :meth:`VoxelHttp.fetch_segment`: fetch
the reliable part (I-frame + all frame headers) over a reliable stream,
then the prioritized frame payloads over an unreliable stream up to a
byte target, and report exactly which frames arrived, were damaged, or
were skipped — the bookkeeping the QoE model and the selective
retransmission machinery run on.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.events import drive
from repro.prep.manifest import SegmentEntry
from repro.transport.connection import (
    ByteInterval,
    DownloadResult,
    ProgressFn,
    QuicConnection,
)
from repro.transport.resilience import RetryContext, resilient_download_iter

UNRELIABLE_HEADER = "x-voxel-unreliable"

# Wire-stream layout per manifest entry: the payload sizes in priority
# order and their cumulative offsets.  Entries are immutable manifest
# rows fetched many times (initial fetch, refetch repairs, wait-loop
# re-decides), so the layout is derived once per entry.
_WIRE_LAYOUT_CACHE: Dict[int, Tuple[List[int], List[int]]] = {}


def _wire_layout(entry: SegmentEntry) -> Tuple[List[int], List[int]]:
    key = id(entry)
    cached = _WIRE_LAYOUT_CACHE.get(key)
    if cached is None:
        payload_sizes = [
            end - start for start, end in entry.unreliable_ranges
        ]
        cumulative = [0]
        for size in payload_sizes:
            cumulative.append(cumulative[-1] + size)
        if len(_WIRE_LAYOUT_CACHE) > 20000:
            _WIRE_LAYOUT_CACHE.clear()
        cached = (payload_sizes, cumulative)
        _WIRE_LAYOUT_CACHE[key] = cached
    return cached


@dataclass(slots=True)
class SegmentDelivery:
    """What actually arrived for one segment.

    The wire stream of the unreliable request is the concatenation of the
    frame payloads in manifest priority order; ``lost_intervals`` are
    offsets in that stream.

    Attributes:
        entry: the manifest entry that was fetched.
        bytes_requested: total bytes requested (reliable + unreliable).
        bytes_delivered: total bytes that arrived.
        skipped_frames: frames whose payload was never requested (the
            virtual-quality decision or a truncation cut them off).
        corruption: frame index -> fraction of its payload lost in
            transit (1.0 = payload fully lost).
        elapsed: seconds spent downloading.
        unreliable: whether the payload used an unreliable stream.
        lost_intervals: residual lost intervals in wire-stream space
            (shrinks as selective retransmissions repair them).
    """

    entry: SegmentEntry
    bytes_requested: int
    bytes_delivered: int
    skipped_frames: List[int]
    corruption: Dict[int, float]
    elapsed: float
    unreliable: bool
    lost_intervals: List[ByteInterval] = field(default_factory=list)
    request_latency: float = 0.0  # RTTs spent on request round trips

    @property
    def dropped_frames(self) -> List[int]:
        """Frames with no usable payload at all (skipped or fully lost)."""
        dropped = set(self.skipped_frames)
        dropped.update(
            idx for idx, frac in self.corruption.items() if frac >= 0.999
        )
        return sorted(dropped)

    @property
    def partial_frames(self) -> Dict[int, float]:
        """Frames with partially lost payload (0 < fraction < 1)."""
        return {
            idx: frac
            for idx, frac in self.corruption.items()
            if 0.0 < frac < 0.999
        }

    @property
    def skipped_bytes(self) -> int:
        """Payload bytes deliberately not requested ("data skipped")."""
        return self.entry.total_bytes - self.bytes_requested

    def residual_loss_bytes(self) -> int:
        return sum(end - start for start, end in self.lost_intervals)


class VoxelHttp:
    """Client HTTP endpoint for one video over one QUIC(*) connection.

    Args:
        connection: the transport connection.
        server_voxel_aware: the server honours ``x-voxel-unreliable``.
        client_voxel_aware: the client sends the header and understands
            the enriched manifest.
    """

    def __init__(
        self,
        connection: QuicConnection,
        server_voxel_aware: bool = True,
        client_voxel_aware: bool = True,
    ):
        self.connection = connection
        self.server_voxel_aware = server_voxel_aware
        self.client_voxel_aware = client_voxel_aware

    @property
    def voxel_capable(self) -> bool:
        """Unreliable delivery usable end to end."""
        return (
            self.server_voxel_aware
            and self.client_voxel_aware
            and self.connection.partially_reliable
        )

    # ------------------------------------------------------------------
    def fetch_segment(
        self,
        entry: SegmentEntry,
        target_bytes: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        force_reliable: bool = False,
        retry: Optional[RetryContext] = None,
    ) -> SegmentDelivery:
        """Fetch a segment, VOXEL-style when both endpoints support it.

        Args:
            entry: manifest entry to fetch.
            target_bytes: total byte budget (reliable part included);
                ``None`` or anything >= the segment size fetches all
                frames.  Ignored without VOXEL support (the full segment
                is fetched reliably, like DASH-over-QUIC).
            progress: forwarded to the unreliable download (VOXEL mode)
                or the single reliable download (fallback mode); lets the
                ABR truncate mid-flight.
            force_reliable: fetch everything over reliable streams even
                if VOXEL is available (the "VOXEL rel" ablation of §D).
            retry: per-segment resilience context (deadline, backoff,
                shared retry budget); ``None`` keeps the legacy
                fail-free path.

        Returns:
            The realized :class:`SegmentDelivery`.
        """
        return drive(
            self.fetch_segment_iter(
                entry,
                target_bytes=target_bytes,
                progress=progress,
                force_reliable=force_reliable,
                retry=retry,
            ),
            self.connection.clock,
            scheduler=getattr(self.connection, "scheduler", None),
        )

    def fetch_segment_iter(
        self,
        entry: SegmentEntry,
        target_bytes: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        force_reliable: bool = False,
        retry: Optional[RetryContext] = None,
    ):
        """Kernel process form of :meth:`fetch_segment` (same contract).

        Both requests of a VOXEL fetch (reliable prefix + payload) share
        the one ``retry`` context, so the segment's retry budget covers
        the segment, not each request separately.
        """
        if not self.voxel_capable:
            result = yield from self._fetch_plain_iter(
                entry, progress, retry=retry
            )
            return result

        if retry is None:
            # Fail-free path: the resilience wrapper would delegate
            # straight through, so skip its generator frame — every
            # transport round resumes one less stack level.
            reliable_result = yield from self.connection.download_iter(
                entry.reliable_size, reliable=True
            )
        else:
            reliable_result = yield from resilient_download_iter(
                self.connection, entry.reliable_size, reliable=True,
                retry=retry,
            )

        payload_sizes, cumulative = _wire_layout(entry)
        total_payload = cumulative[-1]
        if target_bytes is None:
            payload_budget = total_payload
        else:
            payload_budget = max(min(target_bytes - entry.reliable_size,
                                     total_payload), 0)

        if retry is None:
            unreliable_result = yield from self.connection.download_iter(
                payload_budget, reliable=force_reliable, progress=progress
            )
        else:
            unreliable_result = yield from resilient_download_iter(
                self.connection,
                payload_budget,
                reliable=force_reliable,
                progress=progress,
                retry=retry,
            )

        requested = unreliable_result.requested
        skipped, corruption = self._map_wire_to_frames(
            entry, payload_sizes, requested, unreliable_result.lost
        )
        return SegmentDelivery(
            entry=entry,
            bytes_requested=entry.reliable_size + requested,
            bytes_delivered=reliable_result.delivered
            + unreliable_result.delivered,
            skipped_frames=skipped,
            corruption=corruption,
            elapsed=reliable_result.elapsed + unreliable_result.elapsed,
            unreliable=not force_reliable,
            lost_intervals=list(unreliable_result.lost),
        )

    def _fetch_plain(
        self, entry: SegmentEntry, progress: Optional[ProgressFn]
    ) -> SegmentDelivery:
        """Classic DASH fetch: whole segment, reliable, decode order."""
        return drive(
            self._fetch_plain_iter(entry, progress),
            self.connection.clock,
            scheduler=getattr(self.connection, "scheduler", None),
        )

    def _fetch_plain_iter(
        self,
        entry: SegmentEntry,
        progress: Optional[ProgressFn],
        retry: Optional[RetryContext] = None,
    ):
        """Kernel process form of :meth:`_fetch_plain`."""
        if retry is None:
            result = yield from self.connection.download_iter(
                entry.total_bytes, reliable=True, progress=progress
            )
        else:
            result = yield from resilient_download_iter(
                self.connection, entry.total_bytes, reliable=True,
                progress=progress, retry=retry,
            )
        # A truncated reliable fetch means the tail of the segment in
        # decode order is missing entirely (no headers either — but the
        # decoder's previous-frame concealment behaves the same way).
        skipped: List[int] = []
        if result.truncated_at is not None:
            skipped = _frames_beyond_offset(entry, result.truncated_at)
        return SegmentDelivery(
            entry=entry,
            bytes_requested=result.requested,
            bytes_delivered=result.delivered,
            skipped_frames=skipped,
            corruption={},
            elapsed=result.elapsed,
            unreliable=False,
            lost_intervals=[],
            request_latency=result.request_latency,
        )

    # ------------------------------------------------------------------
    def refetch_lost(
        self,
        delivery: SegmentDelivery,
        budget_bytes: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
    ) -> int:
        """Selectively retransmit lost ranges of a delivered segment.

        VOXEL exploits buffer-full idle periods to re-request data lost
        on the unreliable stream via plain HTTP range requests (§4.2).
        Repairs happen in priority order.  Returns the number of bytes
        repaired; ``delivery`` is updated in place.
        """
        return drive(
            self.refetch_lost_iter(
                delivery, budget_bytes=budget_bytes, progress=progress
            ),
            self.connection.clock,
            scheduler=getattr(self.connection, "scheduler", None),
        )

    def refetch_lost_iter(
        self,
        delivery: SegmentDelivery,
        budget_bytes: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
    ):
        """Kernel process form of :meth:`refetch_lost`."""
        if not delivery.lost_intervals:
            return 0
        to_repair = delivery.lost_intervals
        if budget_bytes is not None:
            clipped: List[ByteInterval] = []
            left = budget_bytes
            for start, end in to_repair:
                if left <= 0:
                    break
                take = min(end - start, left)
                clipped.append((start, start + take))
                left -= take
            to_repair = clipped
        repair_bytes = sum(end - start for start, end in to_repair)
        if repair_bytes == 0:
            return 0

        result = yield from self.connection.download_iter(
            repair_bytes, reliable=True, progress=progress
        )
        repaired = result.requested if result.truncated_at is None else result.truncated_at

        # Remove the repaired prefix of the repair plan from the lost set.
        repaired_left = repaired
        still_lost: List[ByteInterval] = []
        for start, end in delivery.lost_intervals:
            size = end - start
            take = min(size, repaired_left)
            repaired_left -= take
            if take < size:
                still_lost.append((start + take, end))
        delivery.lost_intervals = still_lost
        delivery.bytes_delivered += repaired

        payload_sizes, _ = _wire_layout(delivery.entry)
        _, corruption = self._map_wire_to_frames(
            delivery.entry,
            payload_sizes,
            delivery.bytes_requested - delivery.entry.reliable_size,
            delivery.lost_intervals,
        )
        delivery.corruption = corruption
        return repaired

    # ------------------------------------------------------------------
    @staticmethod
    def _map_wire_to_frames(
        entry: SegmentEntry,
        payload_sizes: List[int],
        requested: int,
        lost: List[ByteInterval],
    ) -> Tuple[List[int], Dict[int, float]]:
        """Translate wire-stream byte accounting into per-frame damage."""
        order = entry.frame_order
        cached_sizes, cached_cumulative = _wire_layout(entry)
        if payload_sizes is cached_sizes:
            cumulative = cached_cumulative
        else:
            cumulative = [0]
            for size in payload_sizes:
                cumulative.append(cumulative[-1] + size)

        skipped: List[int] = []
        corruption: Dict[int, float] = {}
        for pos, frame_idx in enumerate(order):
            start, end = cumulative[pos], cumulative[pos + 1]
            if start >= requested:
                skipped.append(frame_idx)
                continue
            if end > requested:
                # Truncation fell inside this frame: the tail of its
                # payload is missing.
                frac = (end - requested) / max(end - start, 1)
                corruption[frame_idx] = min(frac, 1.0)

        for loss_start, loss_end in lost:
            loss_end = min(loss_end, requested)
            if loss_end <= loss_start:
                continue
            pos = bisect.bisect_right(cumulative, loss_start) - 1
            while pos < len(order) and cumulative[pos] < loss_end:
                start, end = cumulative[pos], cumulative[pos + 1]
                overlap = min(end, loss_end) - max(start, loss_start)
                if overlap > 0 and end > start:
                    frame_idx = order[pos]
                    frac = corruption.get(frame_idx, 0.0) + overlap / (end - start)
                    corruption[frame_idx] = min(frac, 1.0)
                pos += 1
        skipped.sort()
        return skipped, corruption


def _frames_beyond_offset(entry: SegmentEntry, offset: int) -> List[int]:
    """Frames entirely beyond ``offset`` in a decode-order (plain) fetch."""
    base = entry.media_range[0]
    skipped = []
    # Without the enriched manifest we only know the media range; frames
    # are assumed laid out in decode order with the I-frame first, so a
    # pro-rata estimate over the remaining bytes stands in for the exact
    # frame map.  The plain client never uses frame-level data anyway;
    # this only feeds the QoE evaluation of truncated plain fetches.
    remaining = entry.total_bytes - offset
    if remaining <= 0:
        return []
    # Estimate frames from the tail: payload beyond the offset.
    frac_missing = remaining / entry.total_bytes
    num_frames = max(int(round(entry.duration * 24)), 1)  # 24 fps catalog
    missing = int(round(frac_missing * num_frames))
    del base
    return list(range(max(num_frames - missing, 1), num_frames))
