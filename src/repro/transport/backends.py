"""Transport-backend registry: a spec string becomes a ready stack.

A *backend* is the whole transport substrate of a session — the link
model plus the QUIC(*) connection riding it.  Two ship with the repo:

* ``"round"`` — the fast per-RTT fluid model
  (:class:`~repro.network.link.BottleneckLink` +
  :class:`~repro.transport.connection.QuicConnection`), used for all
  sweeps;
* ``"packet"`` — the event-driven per-packet backend
  (:class:`~repro.network.packetlink.PacketRouter` +
  :class:`~repro.transport.packet_connection.PacketLevelConnection`),
  orders of magnitude slower, used to validate the round model.

:class:`~repro.player.session.StreamingSession` resolves its backend
here, so a custom transport plugs in with one decorator and is
immediately usable from ``ScenarioSpec(backend=...)``, ``stream()``,
and ``repro sweep`` grids.

Factory contract::

    factory(config, clock, trace, cross_demand=None, tracer=None,
            link=None, scheduler=None, router=None) -> TransportStack

``link``/``scheduler``/``router`` allow several sessions to share one
bottleneck (multi-client runs hand every session the kernel and the
shared link or router).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.registry import Registry
from repro.network.linkmodels import LINK_MODELS

#: The transport-backend registry (``ScenarioSpec.backend`` keys).
BACKENDS = Registry("transport backend")


@dataclass
class TransportStack:
    """What a backend factory returns: connection plus its substrate."""

    connection: object
    #: The round backend's :class:`BottleneckLink` (None for packet).
    link: object = None
    #: The packet backend's event scheduler — drive()/SimKernel need it
    #: to service Waiter yields (None for round).
    scheduler: object = None


@BACKENDS.register(
    "round",
    "fast per-RTT fluid model (BottleneckLink + QuicConnection); "
    "default for all sweeps",
)
def _build_round(
    config,
    clock,
    trace,
    cross_demand=None,
    tracer=None,
    link=None,
    scheduler=None,
    router=None,
) -> TransportStack:
    from repro.obs.tracer import NULL_TRACER
    from repro.transport.connection import QuicConnection

    plan = getattr(config, "fault_plan", None)
    if link is None:
        if plan is not None:
            # Bandwidth-channel faults reshape the capacity the link
            # sees; latency/loss channels hook into the link directly.
            from repro.faults.plan import FaultedTrace

            trace = FaultedTrace(trace, plan)
        link = LINK_MODELS.get("droptail")(
            trace,
            cross_demand=cross_demand,
            queue_packets=config.queue_packets,
            base_rtt=config.base_rtt,
        )
        if plan is not None:
            link.fault_plan = plan
    # A shared (passed-in) link belongs to the multi-client runner, which
    # wires run-level faults onto it once; only the per-session
    # connection faults (resets, deadlines) attach here.
    connection = QuicConnection(
        link,
        clock,
        partially_reliable=config.partially_reliable,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    if plan is not None:
        connection.fault_plan = plan
    return TransportStack(connection=connection, link=link)


@BACKENDS.register(
    "packet",
    "event-driven per-packet backend (PacketRouter + "
    "PacketLevelConnection); slow, validates the round model",
)
def _build_packet(
    config,
    clock,
    trace,
    cross_demand=None,
    tracer=None,
    link=None,
    scheduler=None,
    router=None,
) -> TransportStack:
    from repro.network.crosstraffic import cross_traffic_available
    from repro.network.events import EventScheduler
    from repro.obs.tracer import NULL_TRACER
    from repro.transport.packet_connection import PacketLevelConnection

    plan = getattr(config, "fault_plan", None)
    effective = trace
    if cross_demand is not None:
        effective = cross_traffic_available(trace.mean_mbps(), cross_demand)
    if scheduler is None:
        scheduler = EventScheduler(clock.now)
    if router is None:
        if plan is not None:
            from repro.faults.plan import FaultedTrace

            effective = FaultedTrace(effective, plan)
        queue = config.queue_packets
        router = LINK_MODELS.get("packet-router")(
            scheduler,
            effective,
            queue_packets=queue if queue is not None else 32,
            propagation_s=config.base_rtt / 2.0,
        )
        if plan is not None:
            router.fault_plan = plan
    connection = PacketLevelConnection(
        router,
        scheduler,
        clock=clock,
        partially_reliable=config.partially_reliable,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    if plan is not None:
        connection.fault_plan = plan
    return TransportStack(connection=connection, scheduler=scheduler)


def make_backend(name: str, **kwargs) -> TransportStack:
    """Build the named transport stack.

    Raises ``ValueError`` for unknown names (the session constructor's
    historical contract), with the registry catalog in the message.
    """
    try:
        factory = BACKENDS.get(name)
    except KeyError as exc:
        raise ValueError(exc.args[0]) from None
    return factory(**kwargs)


__all__ = ["BACKENDS", "TransportStack", "make_backend"]
