"""Shared transport contract: types and constants both backends honour.

The round-based (:mod:`repro.transport.connection`) and packet-level
(:mod:`repro.transport.packet_connection`) backends implement the same
download interface against the same byte-accounting types.  This module
is the single home of that contract, so the two implementations cannot
drift apart on the meaning of a :class:`DownloadResult` or the cost of a
request round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

ByteInterval = Tuple[int, int]  # (start, end), end exclusive

# Idle gap after which QUIC collapses the congestion window.
IDLE_TIMEOUT = 1.0  # seconds
# One round trip of request latency per HTTP request.
REQUEST_RTT_COST = 1.0
# Per-packet header overhead (QUIC + UDP + IP over a 1500-byte MTU): only
# this fraction of every packet carries application payload.
PAYLOAD_FRACTION = 0.94


@dataclass(slots=True)
class DownloadResult:
    """Outcome of one stream download.

    Attributes:
        requested: bytes the request asked for (after any truncation).
        delivered: bytes that actually arrived.
        lost: byte intervals (offsets within the request) lost in transit
            on an unreliable stream.  Always empty for reliable streams.
        elapsed: wall-clock seconds the download took.
        truncated_at: if the progress callback cut the request short, the
            byte offset where it stopped; ``None`` otherwise.
        rounds: number of congestion rounds used.
    """

    requested: int
    delivered: int
    lost: List[ByteInterval]
    elapsed: float
    truncated_at: Optional[int] = None
    rounds: int = 0
    request_latency: float = 0.0

    @property
    def complete(self) -> bool:
        return self.truncated_at is None and not self.lost

    @property
    def loss_fraction(self) -> float:
        if self.requested == 0:
            return 0.0
        lost = sum(end - start for start, end in self.lost)
        return lost / self.requested


# Progress callback: (elapsed_seconds, bytes_sent_so_far) -> new byte limit
# for the request, or None to continue unchanged.
ProgressFn = Callable[[float, int], Optional[int]]


class TransportFault(Exception):
    """A download died mid-flight (deadline expired or connection reset).

    Carries the partial :class:`DownloadResult` accumulated before the
    failure so the resilience layer can resume from
    ``partial.delivered + deliberately-lost`` bytes without re-fetching
    or double-counting anything.

    Attributes:
        kind: ``"timeout"`` or ``"reset"``.
        partial: byte accounting up to the failure point.
        at: sim-clock time of the injected reset (``None`` for timeouts).
    """

    def __init__(self, kind: str, partial: DownloadResult,
                 at: Optional[float] = None):
        super().__init__(f"transport {kind}")
        self.kind = kind
        self.partial = partial
        self.at = at

    @property
    def accounted_bytes(self) -> int:
        """Bytes of this attempt that must NOT be re-requested: delivered
        plus deliberately-lost (unreliable sends are in-order, so the
        accounted region is a prefix of the request)."""
        lost = sum(end - start for start, end in self.partial.lost)
        return self.partial.delivered + lost


class RetryBudgetExhausted(Exception):
    """The per-segment retry budget ran out; degradation policy applies.

    Attributes:
        last: the final :class:`TransportFault`.
        attempts: total attempts made (initial + retries).
        kept_bytes: bytes accounted across the whole retry chain (already
            delivered or deliberately lost; never re-fetched).
        delivered_bytes: usable subset of ``kept_bytes``.
        elapsed: sim-clock seconds burned across the chain, including
            backoff waits.
    """

    def __init__(self, last: TransportFault, attempts: int, kept_bytes: int,
                 delivered_bytes: int, elapsed: float):
        super().__init__(
            f"retry budget exhausted after {attempts} attempts"
        )
        self.last = last
        self.attempts = attempts
        self.kept_bytes = kept_bytes
        self.delivered_bytes = delivered_bytes
        self.elapsed = elapsed


def merge_intervals(intervals: List[ByteInterval]) -> List[ByteInterval]:
    """Merge overlapping/adjacent byte intervals (kept sorted)."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged
