"""QUIC* transport: CUBIC congestion control, partially reliable streams,
and the HTTP interface between the transport and application layers."""

from repro.transport.connection import (
    ByteInterval,
    DownloadResult,
    IDLE_TIMEOUT,
    ProgressFn,
    QuicConnection,
)
from repro.transport.cubic import (
    CUBIC_BETA,
    CUBIC_C,
    INITIAL_WINDOW,
    CubicController,
    CubicState,
)
from repro.transport.http import (
    UNRELIABLE_HEADER,
    SegmentDelivery,
    VoxelHttp,
)

__all__ = [
    "ByteInterval",
    "DownloadResult",
    "IDLE_TIMEOUT",
    "ProgressFn",
    "QuicConnection",
    "CUBIC_BETA",
    "CUBIC_C",
    "INITIAL_WINDOW",
    "CubicController",
    "CubicState",
    "UNRELIABLE_HEADER",
    "SegmentDelivery",
    "VoxelHttp",
]
