"""CUBIC congestion control (RFC 8312), round-granularity.

QUIC* keeps unreliable streams subject to the connection's congestion
control — that is the crucial difference to raw UDP (§4.2).  Both QUIC
and QUIC* in the paper use CUBIC, so a single implementation serves both.

The controller operates per round (one RTT): the connection reports
whether the round suffered loss, and the controller yields the next
congestion window.  Slow start doubles per round until ``ssthresh``;
afterwards the cubic function ``W(t) = C (t - K)^3 + W_max`` governs
growth, with the window-reduction factor beta = 0.7 on loss.
"""

from __future__ import annotations

from dataclasses import dataclass

CUBIC_C = 0.4
CUBIC_BETA = 0.7
INITIAL_WINDOW = 10  # packets, like QUIC's default
MIN_WINDOW = 2


@dataclass(slots=True)
class CubicState:
    """Snapshot of the controller, useful for tests and logging."""

    cwnd: float
    ssthresh: float
    w_max: float
    epoch_elapsed: float


class CubicController:
    """Round-based CUBIC.

    Usage::

        cc = CubicController()
        cwnd = cc.cwnd  # packets to offer this round
        cc.on_round(rtt=0.06, lost=False)
    """

    def __init__(self, initial_window: int = INITIAL_WINDOW):
        self.cwnd = float(initial_window)
        self.ssthresh = float("inf")
        self.w_max = 0.0
        self._epoch_elapsed = 0.0
        self._k = 0.0

    # ------------------------------------------------------------------
    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def state(self) -> CubicState:
        return CubicState(
            cwnd=self.cwnd,
            ssthresh=self.ssthresh,
            w_max=self.w_max,
            epoch_elapsed=self._epoch_elapsed,
        )

    def on_round(self, rtt: float, lost: bool,
                 queue_pressure: float = 0.0) -> float:
        """Advance one round and return the new congestion window.

        ``queue_pressure`` is the bottleneck-queue fill fraction observed
        this round; a HyStart-like check exits slow start when the queue
        builds up, before the overshoot turns into a burst of losses —
        important for QUIC* since slow-start losses on unreliable streams
        are never retransmitted.
        """
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        if lost:
            self._on_loss()
            return self.cwnd

        cwnd = self.cwnd
        ssthresh = self.ssthresh
        if cwnd < ssthresh:
            if queue_pressure > 0.4:
                # HyStart: the pipe is full; settle here.
                self.ssthresh = cwnd
                self._reset_epoch(from_window=cwnd)
                return cwnd
            # Pacing-aware ramp: double while the queue is quiet, but
            # grow gently once it starts building — an unpaced doubling
            # from just-under-threshold overshoots the pipe by 2x in one
            # round and dumps a burst of losses (fatal for unreliable
            # streams, which never retransmit).
            grown = cwnd * (2.0 if queue_pressure < 0.15 else 1.25)
            cap = ssthresh + cwnd
            cwnd = grown if grown <= cap else cap
            self.cwnd = cwnd
            # Leaving slow start resets the cubic epoch.
            if cwnd >= ssthresh:
                self._reset_epoch(from_window=cwnd)
            return cwnd

        t = self._epoch_elapsed + rtt
        self._epoch_elapsed = t
        target = CUBIC_C * (t - self._k) ** 3 + self.w_max
        # Never grow more than one packet per ACKed packet per round
        # (standard cubic "max probing" clamp).
        cap = cwnd * 1.5
        grown = target if target <= cap else cap
        cwnd = MIN_WINDOW if MIN_WINDOW >= grown else grown
        self.cwnd = cwnd
        return cwnd

    def _on_loss(self) -> None:
        self.w_max = self.cwnd
        self.cwnd = max(MIN_WINDOW, self.cwnd * CUBIC_BETA)
        self.ssthresh = self.cwnd
        self._reset_epoch(from_window=self.cwnd)

    def _reset_epoch(self, from_window: float) -> None:
        self._epoch_elapsed = 0.0
        if self.w_max > from_window:
            self._k = (self.w_max * (1 - CUBIC_BETA) / CUBIC_C) ** (1.0 / 3.0)
        else:
            # Convex region (e.g. after a HyStart exit with no loss yet):
            # the cubic must plateau at the *current* window, not at a
            # stale smaller W_max — otherwise the next target collapses
            # the window to its floor.
            self.w_max = from_window
            self._k = 0.0

    def after_idle(self) -> None:
        """Collapse the window after an idle period.

        QUIC restarts from a reduced window when the connection has been
        quiescent (the congestion state is stale).  The video player
        idles whenever its playback buffer is full, so this matters.
        """
        if self.ssthresh == float("inf"):
            self.ssthresh = self.cwnd
        else:
            self.ssthresh = max(self.ssthresh, self.cwnd)
        self.cwnd = max(float(MIN_WINDOW), min(self.cwnd, float(INITIAL_WINDOW)))
        self._reset_epoch(from_window=self.cwnd)
