"""Synthetic capped-VBR transcoder.

``encode_video`` plays the role of the paper's FFmpeg 2-pass transcoding
step: it takes a :class:`~repro.video.content.ContentProfile` and produces
an :class:`EncodedVideo` — every segment coded at all 13 ladder levels,
with realized frame structures (types, sizes, reference graphs).

The encoding is "2x-capped" VBR as in §5/§A: a segment's size scales with
its content activity but never exceeds twice the level's average size.
The same content drives all quality levels, so the per-segment size
*pattern* is consistent across the ladder (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.video.content import ContentModel, ContentProfile, SegmentContent, get_profile
from repro.video.frames import SegmentFrames
from repro.video.gop import build_segment_frames
from repro.video.ladder import (
    FRAMES_PER_SECOND,
    QualityLevel,
    SEGMENT_DURATION,
    VBR_PEAK_CAP,
    default_ladder,
)


@dataclass
class EncodedSegment:
    """One segment at one quality level."""

    video: str
    index: int
    quality: int
    frames: SegmentFrames
    content: SegmentContent

    @property
    def total_bytes(self) -> int:
        return self.frames.total_bytes

    @property
    def duration(self) -> float:
        return self.frames.duration

    @property
    def bitrate_bps(self) -> float:
        """Realized (VBR) bitrate of this individual segment."""
        return self.total_bytes * 8.0 / self.duration

    @property
    def bitrate_mbps(self) -> float:
        return self.bitrate_bps / 1e6


@dataclass
class EncodedVideo:
    """A video coded at every ladder level.

    ``segments[q][i]`` is segment ``i`` at quality ``Qq``.
    """

    profile: ContentProfile
    ladder: List[QualityLevel]
    segments: List[List[EncodedSegment]]
    segment_duration: float = SEGMENT_DURATION
    fps: float = FRAMES_PER_SECOND

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def num_segments(self) -> int:
        return len(self.segments[0])

    @property
    def num_levels(self) -> int:
        return len(self.ladder)

    @property
    def duration(self) -> float:
        return self.num_segments * self.segment_duration

    def segment(self, quality: int, index: int) -> EncodedSegment:
        return self.segments[quality][index]

    def segment_sizes(self, quality: int) -> List[int]:
        """Exact coded sizes per segment at a level — what the paper feeds
        BOLA/MPC instead of video-wide average bitrates."""
        return [seg.total_bytes for seg in self.segments[quality]]

    def total_size_bytes(self, quality: int) -> int:
        return sum(self.segment_sizes(quality))

    def segment_bitrates_mbps(self, quality: int) -> List[float]:
        return [seg.bitrate_mbps for seg in self.segments[quality]]

    def size_std_mbps(self, quality: int) -> float:
        """Std-dev of per-segment bitrate, comparable to Tab. 1/Tab. 3."""
        return float(np.std(self.segment_bitrates_mbps(quality)))


def effective_ladder(profile: ContentProfile,
                     ladder: Optional[Sequence[QualityLevel]] = None
                     ) -> List[QualityLevel]:
    """The ladder actually used for a video.

    ED is only available at 1080p, so its Q11/Q12 are coded at 1080p
    resolution (same bitrates), exactly as the paper notes in §A.
    """
    base = list(ladder) if ladder is not None else default_ladder()
    out = []
    for level in base:
        if level.height > profile.max_resolution_height:
            width = profile.max_resolution_height * 16 // 9
            level = QualityLevel(
                level.index,
                (width, profile.max_resolution_height),
                level.avg_bitrate_mbps,
            )
        out.append(level)
    return out


def _calibrated_multipliers(
    profile: ContentProfile, contents: Sequence[SegmentContent]
) -> np.ndarray:
    """Per-segment VBR size multipliers, calibrated to the paper's stats.

    Real 2-pass capped-VBR encoding keeps the *average* bitrate at the
    ladder value while letting hard segments use up to ``VBR_PEAK_CAP``
    times the average.  We reproduce that: raw content-driven multipliers
    are mean-normalized, then their spread is scaled (by bisection) so the
    realized per-segment bitrate standard deviation at the top level
    approaches the video's Tab. 1 / Tab. 3 target.
    """
    raw = np.array([content.size_multiplier for content in contents], dtype=float)
    raw = raw / raw.mean()
    deviation = raw - 1.0
    target_rel_std = profile.size_std_mbps / 10.0  # top level avg is 10 Mbps

    def realized_std(scale: float) -> float:
        clipped = np.clip(1.0 + scale * deviation, 0.05, VBR_PEAK_CAP)
        clipped = clipped / clipped.mean()  # keep the average honest
        return float(np.std(clipped))

    lo, hi = 0.0, 12.0
    for _ in range(48):
        mid = 0.5 * (lo + hi)
        if realized_std(mid) < target_rel_std:
            lo = mid
        else:
            hi = mid
    scale = 0.5 * (lo + hi)
    result = np.clip(1.0 + scale * deviation, 0.05, VBR_PEAK_CAP)
    return result / result.mean()


def encode_video(
    profile_or_name,
    ladder: Optional[Sequence[QualityLevel]] = None,
    segment_duration: float = SEGMENT_DURATION,
    fps: float = FRAMES_PER_SECOND,
) -> EncodedVideo:
    """Transcode a content profile into all ladder levels.

    Args:
        profile_or_name: a :class:`ContentProfile` or a catalog name
            (e.g. ``"bbb"``).
        ladder: quality levels; defaults to the paper's Tab. 2 ladder.
        segment_duration: seconds per segment (paper uses 4 s).
        fps: frames per second (paper uses 24).

    Returns:
        The fully realized :class:`EncodedVideo`.
    """
    profile = (
        profile_or_name
        if isinstance(profile_or_name, ContentProfile)
        else get_profile(profile_or_name)
    )
    levels = effective_ladder(profile, ladder)
    frames_per_segment = int(round(segment_duration * fps))
    model = ContentModel(profile, frames_per_segment=frames_per_segment)
    contents = model.segments()

    multipliers = _calibrated_multipliers(profile, contents)

    rng = np.random.default_rng(profile.seed() ^ 0x5EC0DE)
    per_level: List[List[EncodedSegment]] = [[] for _ in levels]
    for content, multiplier in zip(contents, multipliers):
        # One jitter seed per segment so all levels share frame-size
        # *structure* (scaled), like a real multi-rate transcode.
        seg_seed = int(rng.integers(0, 2**63 - 1))
        for level in levels:
            avg_bytes = level.avg_segment_bytes(segment_duration)
            total = max(int(avg_bytes * multiplier), 256)
            seg_rng = np.random.default_rng(seg_seed ^ (level.index + 1))
            frames = build_segment_frames(
                content, total, segment_duration, fps, seg_rng
            )
            per_level[level.index].append(
                EncodedSegment(
                    video=profile.name,
                    index=content.index,
                    quality=level.index,
                    frames=frames,
                    content=content,
                )
            )
    return EncodedVideo(
        profile=profile,
        ladder=levels,
        segments=per_level,
        segment_duration=segment_duration,
        fps=fps,
    )
