"""GOP (group-of-pictures) structure generation.

Every 4-second segment at 24 fps holds 96 frames and opens with an
I-frame (a closed GOP per segment, as DASH requires for clean switching).
Between anchors we use the common hierarchical mini-GOP of size four::

    A0  b  B  b  A1  b  B  b  A2 ...

where ``A`` anchors are the I-frame and subsequent P-frames (each P
references the previous anchor and, weakly, the I-frame), ``B`` is a
*referenced* B-frame predicting from both surrounding anchors, and ``b``
are unreferenced B-frames predicting from the nearest anchor and the
middle B.  This reproduces the mix the paper reports: by bytes roughly
15 % I, 65 % P and 20 % B, with P-frames making up >30 % of frames.

Reference *weights* model the fraction of macroblocks that actually
reference each source frame; they scale with motion (static scenes copy
nearly everything from the reference, high-motion scenes re-code more
macroblocks intra-style, weakening the dependency).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.video.content import SegmentContent
from repro.video.frames import (
    FRAME_HEADER_BYTES,
    Frame,
    FrameType,
    SegmentFrames,
    validate_reference_graph,
)

# Fraction of segment bytes per frame type (paper §5: "in percent of bytes,
# comprised of ~15 % I-Frames, ~65 % P- and ~20 % B-Frames").
I_BYTE_SHARE = 0.15
P_BYTE_SHARE = 0.65
B_BYTE_SHARE = 0.20

MINI_GOP = 4  # anchor spacing


def build_segment_frames(
    content: SegmentContent,
    total_bytes: int,
    duration: float,
    fps: float,
    rng: np.random.Generator,
) -> SegmentFrames:
    """Construct the frame structure of one coded segment.

    Args:
        content: realized content statistics of the segment.
        total_bytes: coded segment size this structure must sum to.
        duration: segment duration in seconds.
        fps: frames per second.
        rng: seeded generator for per-frame size jitter.

    Returns:
        A :class:`SegmentFrames` whose frame sizes sum exactly to
        ``total_bytes`` and whose reference graph is a valid DAG.
    """
    n_frames = int(round(duration * fps))
    if n_frames < 2:
        raise ValueError(f"segment too short: {n_frames} frames")

    types = _frame_types(n_frames)
    references = _references(types, content, n_frames)
    sizes = _frame_sizes(types, content, total_bytes, rng)

    frames: List[Frame] = []
    motion = content.frame_motion
    for idx in range(n_frames):
        frames.append(
            Frame(
                index=idx,
                ftype=types[idx],
                size=int(sizes[idx]),
                references=tuple(references[idx]),
                motion=float(motion[idx] if idx < len(motion) else motion[-1]),
            )
        )
    validate_reference_graph(frames)
    return SegmentFrames(frames=frames, duration=duration, fps=fps)


def _frame_types(n_frames: int) -> List[FrameType]:
    """I at 0, P at every MINI_GOP-th position, B elsewhere."""
    types = []
    for idx in range(n_frames):
        if idx == 0:
            types.append(FrameType.I)
        elif idx % MINI_GOP == 0:
            types.append(FrameType.P)
        else:
            types.append(FrameType.B)
    return types


def _references(
    types: List[FrameType],
    content: SegmentContent,
    n_frames: int,
) -> List[List[Tuple[int, float]]]:
    """Hierarchical mini-GOP reference edges with motion-scaled weights."""
    refs: List[List[Tuple[int, float]]] = [[] for _ in range(n_frames)]
    # Static content copies most macroblocks: strong dependency weights.
    # High-motion content re-codes more blocks: weaker weights.
    strength = float(np.clip(0.95 - 0.45 * content.motion, 0.3, 0.95))

    anchors = [idx for idx in range(n_frames) if types[idx] is not FrameType.B]
    for pos, anchor in enumerate(anchors):
        if types[anchor] is FrameType.P:
            prev_anchor = anchors[pos - 1]
            refs[anchor].append((prev_anchor, strength))
            if prev_anchor != 0:
                # Long-term reference to the I-frame (weak).
                refs[anchor].append((0, 0.15 * strength))

    for pos in range(len(anchors)):
        left = anchors[pos]
        right = anchors[pos + 1] if pos + 1 < len(anchors) else None
        span = range(left + 1, (right if right is not None else n_frames))
        b_frames = [idx for idx in span if types[idx] is FrameType.B]
        if not b_frames:
            continue
        mid = b_frames[len(b_frames) // 2]
        for idx in b_frames:
            if idx == mid:
                refs[idx].append((left, 0.6 * strength))
                if right is not None:
                    refs[idx].append((right, 0.5 * strength))
            else:
                near_anchor = left if idx < mid else (right if right is not None else left)
                refs[idx].append((near_anchor, 0.55 * strength))
                refs[idx].append((mid, 0.45 * strength))
    return refs


def _frame_sizes(
    types: List[FrameType],
    content: SegmentContent,
    total_bytes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Split the segment's bytes across frames by type share, with jitter.

    The split honours the paper's I/P/B byte shares, adds lognormal jitter
    per frame, keeps every frame at least large enough for its header, and
    finally rescales so the sizes sum exactly to ``total_bytes`` (the
    I-frame absorbs the rounding residue).
    """
    n = len(types)
    type_counts = {
        FrameType.I: sum(1 for t in types if t is FrameType.I),
        FrameType.P: sum(1 for t in types if t is FrameType.P),
        FrameType.B: sum(1 for t in types if t is FrameType.B),
    }
    share = {
        FrameType.I: I_BYTE_SHARE,
        FrameType.P: P_BYTE_SHARE,
        FrameType.B: B_BYTE_SHARE,
    }
    base = np.empty(n)
    for idx, ftype in enumerate(types):
        per_frame = share[ftype] * total_bytes / max(type_counts[ftype], 1)
        jitter = rng.lognormal(0.0, 0.18) if ftype is not FrameType.I else 1.0
        # High-motion frames code more residual, hence are bigger.
        motion = content.frame_motion[min(idx, len(content.frame_motion) - 1)]
        motion_scale = 1.0 if ftype is FrameType.I else (0.6 + 0.8 * motion)
        base[idx] = per_frame * jitter * motion_scale

    floor = FRAME_HEADER_BYTES + 8
    base = np.maximum(base, floor)
    scale = (total_bytes - floor * n) / max(base.sum() - floor * n, 1.0)
    sizes = floor + (base - floor) * max(scale, 0.0)
    sizes = np.maximum(np.round(sizes), floor).astype(np.int64)
    # Put the rounding residue on the I-frame.
    sizes[0] += total_bytes - int(sizes.sum())
    if sizes[0] < floor:  # pathological tiny segments: redistribute
        deficit = floor - int(sizes[0])
        sizes[0] = floor
        for idx in range(n - 1, 0, -1):
            take = min(deficit, int(sizes[idx]) - floor)
            sizes[idx] -= take
            deficit -= take
            if deficit == 0:
                break
    return sizes
