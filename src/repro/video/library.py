"""Video library — a lazily encoded, cached catalog of all study videos.

Encoding a video realizes 75 segments x 13 levels x 96 frames of structure,
which is cheap but not free; experiments reuse videos heavily, so the
library memoizes encodes process-wide.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.video.content import (
    ALL_VIDEOS,
    CANONICAL_VIDEOS,
    YOUTUBE_VIDEOS,
    ContentProfile,
    get_profile,
)
from repro.video.encoder import EncodedVideo, encode_video

_CACHE: Dict[str, EncodedVideo] = {}


def get_video(name: str) -> EncodedVideo:
    """Return the encoded video for a catalog name, caching the result."""
    profile = get_profile(name)
    cached = _CACHE.get(profile.name)
    if cached is None:
        cached = encode_video(profile)
        _CACHE[profile.name] = cached
    return cached


def canonical_videos() -> List[EncodedVideo]:
    """The four Tab. 1 videos: BBB, ED, Sintel, ToS."""
    return [get_video(name) for name in CANONICAL_VIDEOS]


def youtube_videos() -> List[EncodedVideo]:
    """The ten Tab. 3 YouTube videos P1..P10."""
    return [get_video(name) for name in YOUTUBE_VIDEOS]


def all_videos() -> List[EncodedVideo]:
    return [get_video(name) for name in ALL_VIDEOS]


def clear_cache() -> None:
    """Drop all cached encodes (mostly useful in tests)."""
    _CACHE.clear()
