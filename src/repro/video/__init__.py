"""Synthetic H.264-like video substrate.

Models frames, GOP/reference structure, content profiles, the Tab. 2
bitrate ladder, and a capped-VBR transcoder producing the full study
catalog (Tab. 1 canonical videos + Tab. 3 YouTube videos).
"""

from repro.video.content import (
    ALL_VIDEOS,
    CANONICAL_VIDEOS,
    YOUTUBE_VIDEOS,
    ContentModel,
    ContentProfile,
    SegmentContent,
    get_profile,
)
from repro.video.encoder import EncodedSegment, EncodedVideo, encode_video
from repro.video.frames import (
    FRAME_HEADER_BYTES,
    Frame,
    FrameType,
    SegmentFrames,
    validate_reference_graph,
)
from repro.video.gop import build_segment_frames
from repro.video.ladder import (
    FRAMES_PER_SECOND,
    FRAMES_PER_SEGMENT,
    NUM_LEVELS,
    QualityLevel,
    SEGMENT_DURATION,
    SEGMENTS_PER_VIDEO,
    TOP_QUALITY,
    VBR_PEAK_CAP,
    default_ladder,
)
from repro.video.library import (
    all_videos,
    canonical_videos,
    clear_cache,
    get_video,
    youtube_videos,
)

__all__ = [
    "ALL_VIDEOS",
    "CANONICAL_VIDEOS",
    "YOUTUBE_VIDEOS",
    "ContentModel",
    "ContentProfile",
    "SegmentContent",
    "get_profile",
    "EncodedSegment",
    "EncodedVideo",
    "encode_video",
    "FRAME_HEADER_BYTES",
    "Frame",
    "FrameType",
    "SegmentFrames",
    "validate_reference_graph",
    "build_segment_frames",
    "FRAMES_PER_SECOND",
    "FRAMES_PER_SEGMENT",
    "NUM_LEVELS",
    "QualityLevel",
    "SEGMENT_DURATION",
    "SEGMENTS_PER_VIDEO",
    "TOP_QUALITY",
    "VBR_PEAK_CAP",
    "default_ladder",
    "all_videos",
    "canonical_videos",
    "clear_cache",
    "get_video",
    "youtube_videos",
]
