"""The 13-level bitrate ladder used throughout the paper (Tab. 2).

Quality levels Q0..Q12 span 144p at 0.16 Mbps to 2160p (4K) at 10 Mbps.
The levels are based on common 16x9 resolutions with bitrates drawn from a
combination of the YouTube and Netflix bitrate ladders, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class QualityLevel:
    """One rung of the bitrate ladder."""

    index: int  # Q0 .. Q12
    resolution: Tuple[int, int]  # (width, height)
    avg_bitrate_mbps: float

    @property
    def name(self) -> str:
        return f"Q{self.index}"

    @property
    def avg_bitrate_bps(self) -> float:
        return self.avg_bitrate_mbps * 1e6

    @property
    def height(self) -> int:
        return self.resolution[1]

    @property
    def pixels(self) -> int:
        return self.resolution[0] * self.resolution[1]

    def avg_segment_bytes(self, segment_duration: float) -> float:
        """Average coded segment size at this level."""
        return self.avg_bitrate_bps * segment_duration / 8.0


# (height, avg bitrate Mbps) per Tab. 2 of the paper.
_LADDER_SPEC: List[Tuple[int, float]] = [
    (144, 0.16),
    (240, 0.23),
    (240, 0.37),
    (360, 0.56),
    (360, 0.75),
    (480, 1.05),
    (480, 1.75),
    (720, 2.35),
    (720, 3.0),
    (1080, 4.3),
    (1080, 5.8),
    (1440, 7.4),
    (2160, 10.0),
]


def default_ladder() -> List[QualityLevel]:
    """The paper's 13-level Q0..Q12 ladder (Tab. 2)."""
    levels = []
    for index, (height, mbps) in enumerate(_LADDER_SPEC):
        width = height * 16 // 9
        levels.append(QualityLevel(index, (width, height), mbps))
    return levels


# Convenience constants mirroring the paper's prose.
TOP_QUALITY = 12
NUM_LEVELS = len(_LADDER_SPEC)
SEGMENT_DURATION = 4.0  # seconds, "a good balance" per §5
FRAMES_PER_SECOND = 24.0
FRAMES_PER_SEGMENT = int(SEGMENT_DURATION * FRAMES_PER_SECOND)  # 96
SEGMENTS_PER_VIDEO = 75  # five-minute sections
VBR_PEAK_CAP = 2.0  # "2x capped" VBR encoding
