"""Frame-level model of an H.264-like coded video segment.

The H.264 codec defines three frame types: intra-coded (I), predicted (P)
and bi-directionally predicted (B).  P- and B-frames carry only the
difference with respect to their *reference* frames; losing a referenced
frame therefore corrupts every frame that refers to it, directly or
transitively.  VOXEL's offline analysis operates purely on this structural
information — frame types, sizes, and the reference graph — plus a measure
of how much visual change each frame carries.  This module defines those
data structures.

Frames in a segment are identified by their *display index* (0-based).
Frame 0 of every segment is the I-frame.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class FrameType(enum.Enum):
    """The three H.264 frame types."""

    I = "I"  # noqa: E741 - conventional codec name
    P = "P"
    B = "B"

    def __str__(self) -> str:
        return self.value


# Size of the frame header (NAL unit header, slice header) that VOXEL always
# delivers reliably so the decoder can locate and conceal damaged frames.
FRAME_HEADER_BYTES = 32


@dataclass(frozen=True, slots=True)
class Frame:
    """A single coded frame within a segment.

    Attributes:
        index: display-order position within the segment (0-based).
        ftype: I, P or B.
        size: coded size in bytes, including the header.
        references: display indices of the frames this frame predicts from,
            paired with the fraction of this frame's macroblocks that
            reference each of them.  I-frames have no references.
        motion: normalized (0..1) measure of visual change this frame
            carries relative to its temporal neighbours.  Dropping a frame
            in a high-motion scene is far more visible than in a static
            scene; the QoE model uses this to cost frame drops.
    """

    index: int
    ftype: FrameType
    size: int
    references: Tuple[Tuple[int, float], ...] = ()
    motion: float = 0.1

    @property
    def header_bytes(self) -> int:
        """Bytes of this frame that must always arrive reliably."""
        return min(FRAME_HEADER_BYTES, self.size)

    @property
    def payload_bytes(self) -> int:
        """Bytes of this frame that may travel on an unreliable stream."""
        return self.size - self.header_bytes

    def references_frame(self, index: int) -> bool:
        """Whether this frame directly references frame ``index``."""
        return any(ref == index for ref, _ in self.references)


@dataclass
class SegmentFrames:
    """The complete frame structure of one coded segment.

    The segment's byte layout (in decode order, which for this model equals
    display order) is ``frames[0], frames[1], ...`` laid out back to back;
    :meth:`frame_offsets` exposes the resulting byte ranges.
    """

    frames: List[Frame]
    duration: float  # seconds
    fps: float

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("a segment must contain at least one frame")
        if self.frames[0].ftype is not FrameType.I:
            raise ValueError("segment frame 0 must be the I-frame")
        for pos, frame in enumerate(self.frames):
            if frame.index != pos:
                raise ValueError(
                    f"frame at position {pos} has index {frame.index}"
                )

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self):
        return iter(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    @property
    def total_bytes(self) -> int:
        """Total coded size of the segment."""
        return sum(frame.size for frame in self.frames)

    @property
    def i_frame(self) -> Frame:
        return self.frames[0]

    def frames_of_type(self, ftype: FrameType) -> List[Frame]:
        return [frame for frame in self.frames if frame.ftype is ftype]

    def frame_offsets(self) -> List[Tuple[int, int]]:
        """Byte range ``(start, end)`` of each frame, end exclusive."""
        ranges = []
        offset = 0
        for frame in self.frames:
            ranges.append((offset, offset + frame.size))
            offset += frame.size
        return ranges

    def inbound_references(self) -> Dict[int, List[Tuple[int, float]]]:
        """Map frame index -> list of (referrer index, weight)."""
        inbound: Dict[int, List[Tuple[int, float]]] = {
            frame.index: [] for frame in self.frames
        }
        for frame in self.frames:
            for ref, weight in frame.references:
                inbound[ref].append((frame.index, weight))
        return inbound

    def referenced_indices(self) -> List[int]:
        """Indices of frames that at least one other frame references."""
        inbound = self.inbound_references()
        return sorted(idx for idx, refs in inbound.items() if refs)

    def referenced_set(self) -> frozenset:
        """:meth:`referenced_indices` as a set, computed once per segment.

        The reference graph is immutable after construction, so the hot
        per-delivery membership checks share one cached set.
        """
        cached = self.__dict__.get("_referenced_set")
        if cached is None:
            cached = frozenset(self.referenced_indices())
            self._referenced_set = cached
        return cached

    def unreferenced_indices(self) -> List[int]:
        """Indices of frames no other frame references (droppable leaves)."""
        inbound = self.inbound_references()
        return sorted(idx for idx, refs in inbound.items() if not refs)

    def transitive_reference_weight(self) -> Dict[int, float]:
        """Weighted count of direct + transitive inbound references.

        This is the importance measure behind VOXEL's "order by inbound
        references" (ordering 3 in §4.1): a frame's weight is the sum over
        all frames that depend on it — directly or through a chain of
        predictions — of the product of macroblock-reference fractions
        along the dependency path.  The I-frame always dominates.
        """
        # influence[f] = 1 (itself) + sum over referrers of w * influence
        # Process in reverse topological order.  References always point
        # from later-decoded to earlier-decoded frames in this model for P,
        # but B-frames reference *future* anchors too, so we do a proper
        # topological pass over the DAG.
        order = self._topological_order()
        influence: Dict[int, float] = {frame.index: 0.0 for frame in self.frames}
        inbound = self.inbound_references()
        # Walk referrers before referees so each node's influence is final
        # when it is propagated downwards.
        for idx in order:
            for referee, weight in self.frames[idx].references:
                influence[referee] += weight * (1.0 + influence[idx])
        del inbound
        return influence

    def _topological_order(self) -> List[int]:
        """Order with every frame before all frames it references.

        Equivalently: referrers first.  The reference graph is a DAG
        (a frame cannot reference itself or form cycles), so Kahn's
        algorithm over outbound edges suffices.
        """
        outdeg = {frame.index: len(frame.references) for frame in self.frames}
        inbound = self.inbound_references()
        # Start from frames nobody waits on being processed: frames with all
        # referrers already emitted.  We invert: process frames whose
        # referrer set is exhausted.
        pending = {idx: len(refs) for idx, refs in inbound.items()}
        ready = [idx for idx, count in pending.items() if count == 0]
        out: List[int] = []
        while ready:
            idx = ready.pop()
            out.append(idx)
            for referee, _ in self.frames[idx].references:
                pending[referee] -= 1
                if pending[referee] == 0:
                    ready.append(referee)
        if len(out) != len(self.frames):
            raise ValueError("reference graph contains a cycle")
        del outdeg
        return out


def validate_reference_graph(frames: Sequence[Frame]) -> None:
    """Raise ``ValueError`` if the reference structure is malformed.

    Checks: I-frames reference nothing, non-I frames reference at least one
    existing frame, no self references, and weights lie in (0, 1].
    """
    count = len(frames)
    for frame in frames:
        if frame.ftype is FrameType.I:
            if frame.references:
                raise ValueError(f"I-frame {frame.index} has references")
            continue
        if not frame.references:
            raise ValueError(f"{frame.ftype}-frame {frame.index} has no references")
        for ref, weight in frame.references:
            if ref == frame.index:
                raise ValueError(f"frame {frame.index} references itself")
            if not 0 <= ref < count:
                raise ValueError(
                    f"frame {frame.index} references missing frame {ref}"
                )
            if not 0.0 < weight <= 1.0:
                raise ValueError(
                    f"frame {frame.index} has reference weight {weight}"
                )
