"""Per-video content profiles for the synthetic codec model.

The paper evaluates on four canonical open-movie clips (Big Buck Bunny,
Elephants Dream, Sintel, Tears of Steel — Tab. 1) and ten public YouTube
videos (P1..P10 — Tab. 3).  We cannot ship or decode the real videos here,
so each video is modelled by a *content profile*: a seeded generator of
per-segment scene activity (motion + spatial complexity + scene cuts) that
drives everything downstream — VBR segment sizes, frame sizes, reference
weights, and the QoE cost of losing each frame.

Profiles are calibrated against the statistics the paper reports:

* per-video segment-size standard deviations (Tab. 1 and Tab. 3),
* drop tolerance: "at least half the segments can sustain a 10 to 20 %
  loss in frames while still delivering an SSIM of 0.99" at Q12 for all
  six showcased videos (§3, Fig. 1a),
* the outliers P9 (a near-static unboxing video that tolerates dropping
  ~80 % of frames) and P10 (a continuous street-dance performance with no
  scene cuts that tolerates almost none) (§C, Fig. 19).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.video.ladder import SEGMENTS_PER_VIDEO


@dataclass(frozen=True)
class ContentProfile:
    """Statistical description of one video's content.

    Attributes:
        name: canonical short name ("bbb", "ed", "sintel", "tos", "p1"..).
        title: human-readable title.
        genre: genre label from Tab. 1 / Tab. 3.
        segments: number of 4-second segments (75 everywhere in the paper).
        motion_mean: average scene motion in (0, 1) — drives frame-drop
            cost.  Higher motion means drops are more visible.
        motion_spread: variability of motion between scenes.
        complexity: spatial detail in (0, 1) — drives encoding distortion
            at a given bitrate.
        scene_cut_rate: expected scene cuts per segment.  Cut-heavy content
            has more short static shots (title cards, reaction shots) that
            tolerate drops well.
        size_std_mbps: target standard deviation of per-segment bitrate at
            the top quality, from Tab. 1 / Tab. 3.
        static_fraction: fraction of segments that are near-static
            (title scenes, talking heads) and tolerate heavy drops.
        max_resolution_height: native height of the source (ED is only
            available at 1080p; everything else at 2160p).
        seed_salt: extra entropy so same-genre videos differ.
    """

    name: str
    title: str
    genre: str
    segments: int = SEGMENTS_PER_VIDEO
    motion_mean: float = 0.45
    motion_spread: float = 0.25
    complexity: float = 0.5
    scene_cut_rate: float = 1.0
    size_std_mbps: float = 3.0
    static_fraction: float = 0.1
    max_resolution_height: int = 2160
    seed_salt: int = 0

    def seed(self) -> int:
        """Stable 64-bit seed derived from the profile name."""
        digest = hashlib.sha256(self.name.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") ^ self.seed_salt


@dataclass
class SegmentContent:
    """Realized content statistics for one segment of one video.

    Attributes:
        index: segment position in the video.
        activity: combined motion/complexity in (0, 1]; the single biggest
            determinant of both segment size and drop tolerance.
        motion: temporal change in (0, 1]; per-frame drop cost scale.
        complexity: spatial detail in (0, 1]; encoding-distortion scale.
        scene_cuts: number of scene cuts inside the segment.
        size_multiplier: VBR size factor relative to the ladder average
            (before the 2x peak cap is applied by the encoder).
        frame_motion: per-frame motion samples (len == frames/segment).
    """

    index: int
    activity: float
    motion: float
    complexity: float
    scene_cuts: int
    size_multiplier: float
    frame_motion: np.ndarray


class ContentModel:
    """Generates the realized per-segment content of a video profile.

    The generator is fully deterministic for a given profile: the same
    profile always yields the same video, which keeps every experiment in
    the repository reproducible bit-for-bit.
    """

    def __init__(self, profile: ContentProfile, frames_per_segment: int = 96):
        self.profile = profile
        self.frames_per_segment = frames_per_segment
        self._segments: Optional[List[SegmentContent]] = None

    def segments(self) -> List[SegmentContent]:
        """All realized segments (computed once, cached)."""
        if self._segments is None:
            self._segments = self._generate()
        return self._segments

    def _generate(self) -> List[SegmentContent]:
        profile = self.profile
        rng = np.random.default_rng(profile.seed())
        out: List[SegmentContent] = []

        # Scene-level motion evolves as a bounded random walk punctuated by
        # scene cuts; cuts re-draw the motion level.  This yields the
        # correlated bursts of hard/easy segments visible in Fig. 15.
        motion = float(
            np.clip(rng.normal(profile.motion_mean, profile.motion_spread), 0.02, 1.0)
        )
        for index in range(profile.segments):
            cuts = int(rng.poisson(profile.scene_cut_rate))
            if cuts > 0:
                motion = float(
                    np.clip(
                        rng.normal(profile.motion_mean, profile.motion_spread),
                        0.02,
                        1.0,
                    )
                )
            else:
                motion = float(
                    np.clip(motion + rng.normal(0.0, 0.06), 0.02, 1.0)
                )

            is_static = rng.random() < profile.static_fraction
            seg_motion = 0.03 + 0.04 * rng.random() if is_static else motion

            complexity = float(
                np.clip(
                    rng.normal(profile.complexity, 0.12)
                    * (0.35 if is_static else 1.0),
                    0.05,
                    1.0,
                )
            )
            activity = float(np.clip(0.6 * seg_motion + 0.4 * complexity, 0.03, 1.0))

            # VBR: harder segments get more bits.  Calibrate the spread so
            # the realized per-segment bitrate std-dev approaches the
            # profile's Tab. 1 / Tab. 3 target (top level avg is 10 Mbps).
            rel_std = profile.size_std_mbps / 10.0
            noise = rng.lognormal(mean=0.0, sigma=0.25)
            size_multiplier = float(
                np.clip(0.45 + (2.4 * rel_std + 0.45) * activity * noise, 0.2, 3.5)
            )

            frame_motion = self._frame_motion(rng, seg_motion, cuts)
            out.append(
                SegmentContent(
                    index=index,
                    activity=activity,
                    motion=seg_motion,
                    complexity=complexity,
                    scene_cuts=cuts,
                    size_multiplier=size_multiplier,
                    frame_motion=frame_motion,
                )
            )
        return out

    def _frame_motion(
        self, rng: np.random.Generator, seg_motion: float, cuts: int
    ) -> np.ndarray:
        """Per-frame motion: AR(1) around the segment motion, spikes at cuts."""
        n = self.frames_per_segment
        values = np.empty(n)
        level = seg_motion
        target = seg_motion
        cut_positions = set(
            int(p) for p in rng.integers(1, n, size=cuts)
        ) if cuts else set()
        for i in range(n):
            if i in cut_positions:
                target = float(np.clip(rng.uniform(0.1, 1.0), 0.02, 1.0))
                level = target
                values[i] = 1.0  # a cut frame carries maximal change
                continue
            # Sub-shot variation: within a segment the action ebbs and
            # flows (pans, pauses, gestures), so the AR(1) target itself
            # occasionally re-draws around the segment motion.  This
            # within-segment diversity is what a QoE-aware ranking
            # exploits: calm spans yield cheap drops even in busy scenes.
            if rng.random() < 0.035:
                target = float(
                    np.clip(seg_motion * rng.uniform(0.35, 1.6), 0.02, 1.0)
                )
            level = float(
                np.clip(0.82 * level + 0.18 * target + rng.normal(0, 0.05),
                        0.01, 1.0)
            )
            values[i] = level
        return values


# ----------------------------------------------------------------------
# The video catalog: Tab. 1 (canonical open movies) + Tab. 3 (YouTube).
# ----------------------------------------------------------------------

_CANONICAL: List[ContentProfile] = [
    ContentProfile(
        name="bbb", title="Big Buck Bunny", genre="Comedy",
        motion_mean=0.42, motion_spread=0.22, complexity=0.5,
        scene_cut_rate=1.1, size_std_mbps=3.77, static_fraction=0.12,
    ),
    ContentProfile(
        name="ed", title="Elephants Dream", genre="Sci-Fi",
        motion_mean=0.48, motion_spread=0.28, complexity=0.62,
        scene_cut_rate=0.9, size_std_mbps=5.6, static_fraction=0.10,
        max_resolution_height=1080,
    ),
    ContentProfile(
        name="sintel", title="Sintel", genre="Fantasy",
        motion_mean=0.52, motion_spread=0.3, complexity=0.6,
        scene_cut_rate=0.8, size_std_mbps=7.5, static_fraction=0.08,
    ),
    ContentProfile(
        name="tos", title="Tears of Steel", genre="Sci-Fi",
        motion_mean=0.40, motion_spread=0.2, complexity=0.55,
        scene_cut_rate=1.0, size_std_mbps=3.52, static_fraction=0.14,
    ),
]

_YOUTUBE: List[ContentProfile] = [
    ContentProfile(
        name="p1", title="Brooklyn and Bailey", genre="Beauty",
        motion_mean=0.33, motion_spread=0.18, complexity=0.42,
        scene_cut_rate=1.4, size_std_mbps=2.2, static_fraction=0.18,
    ),
    ContentProfile(
        name="p2", title="CollegeHumor", genre="Comedy",
        motion_mean=0.38, motion_spread=0.2, complexity=0.45,
        scene_cut_rate=1.5, size_std_mbps=1.88, static_fraction=0.15,
    ),
    ContentProfile(
        name="p3", title="Dude Perfect", genre="Sports",
        motion_mean=0.5, motion_spread=0.24, complexity=0.5,
        scene_cut_rate=1.3, size_std_mbps=2.52, static_fraction=0.08,
    ),
    ContentProfile(
        name="p4", title="FaZe Adapt", genre="Gaming",
        motion_mean=0.45, motion_spread=0.22, complexity=0.48,
        scene_cut_rate=1.2, size_std_mbps=2.05, static_fraction=0.12,
    ),
    ContentProfile(
        name="p5", title="Gordon Ramsay", genre="Cooking",
        motion_mean=0.36, motion_spread=0.18, complexity=0.46,
        scene_cut_rate=1.4, size_std_mbps=1.76, static_fraction=0.16,
    ),
    ContentProfile(
        name="p6", title="Katy Perry", genre="Music",
        motion_mean=0.55, motion_spread=0.26, complexity=0.58,
        scene_cut_rate=1.8, size_std_mbps=4.35, static_fraction=0.06,
    ),
    ContentProfile(
        name="p7", title="Tana Mongeau", genre="Entertainment",
        motion_mean=0.35, motion_spread=0.18, complexity=0.42,
        scene_cut_rate=1.3, size_std_mbps=2.03, static_fraction=0.17,
    ),
    ContentProfile(
        name="p8", title="The Young Turks", genre="Politics",
        motion_mean=0.28, motion_spread=0.14, complexity=0.38,
        scene_cut_rate=0.9, size_std_mbps=1.6, static_fraction=0.25,
    ),
    # P9: an "unboxing" video — presenter against a static background,
    # little frame-to-frame change; tolerates dropping ~80 % of frames.
    ContentProfile(
        name="p9", title="Unbox Therapy", genre="Tech",
        motion_mean=0.07, motion_spread=0.03, complexity=0.35,
        scene_cut_rate=0.5, size_std_mbps=1.7, static_fraction=0.55,
    ),
    # P10: a street-dance performance with ~50 performers and no scene
    # cuts — continuous motion everywhere; tolerates almost no drops.
    ContentProfile(
        name="p10", title="CHARI Yosakoi ch", genre="Entertainment",
        motion_mean=0.92, motion_spread=0.04, complexity=0.75,
        scene_cut_rate=0.0, size_std_mbps=1.94, static_fraction=0.0,
    ),
]

_CATALOG: Dict[str, ContentProfile] = {
    profile.name: profile for profile in _CANONICAL + _YOUTUBE
}

CANONICAL_VIDEOS = [profile.name for profile in _CANONICAL]
YOUTUBE_VIDEOS = [profile.name for profile in _YOUTUBE]
ALL_VIDEOS = CANONICAL_VIDEOS + YOUTUBE_VIDEOS


def get_profile(name: str) -> ContentProfile:
    """Look up a video profile by short name (case-insensitive)."""
    key = name.lower()
    aliases = {
        "bigbuckbunny": "bbb",
        "elephantsdream": "ed",
        "tearsofsteel": "tos",
    }
    key = aliases.get(key, key)
    try:
        return _CATALOG[key]
    except KeyError:
        raise KeyError(
            f"unknown video {name!r}; known: {', '.join(sorted(_CATALOG))}"
        ) from None
