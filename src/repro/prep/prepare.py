"""The offline VOXEL preparation pipeline (§4.1).

``prepare(video)`` performs the paper's one-time, server-side analysis:
for every segment and quality level it

1. takes the pristine score of the next-lower level as the *lower bound*,
2. picks the frame ordering that needs the fewest bytes to beat that
   bound (:func:`repro.prep.analysis.choose_best_ordering`, accelerated
   here with a monotone binary search),
3. evaluates the drop curve under the chosen ordering,
4. distills it into manifest quality points (virtual quality levels), and
5. emits the byte ranges for reliable (I-frame + headers) and unreliable
   (payloads, in priority order) delivery.

The result — a :class:`PreparedVideo` — bundles the enriched manifest
with the underlying encode, which downstream code uses as the server-side
ground truth.  Preparation is deterministic and cached process-wide, like
the paper's "compute once, reuse indefinitely" manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.prep.analysis import (
    DropCurve,
    DropPoint,
    compute_drop_curve,
    reliable_bytes,
    virtual_levels,
)
from repro.prep.manifest import (
    QualityPoint,
    Representation,
    SegmentEntry,
    VoxelManifest,
)
from repro.prep.ranking import Ordering, build_order
from repro.qoe.model import DEFAULT_PARAMS, QoEParams, decode_segment, pristine_score
from repro.video.encoder import EncodedSegment, EncodedVideo
from repro.video.library import get_video

DEFAULT_ORDERINGS: Tuple[Ordering, ...] = (
    Ordering.ORIGINAL,
    Ordering.UNREFERENCED_TAIL,
    Ordering.REFERENCE_RANK,
    Ordering.QOE_RANK,
)


@dataclass
class PreparedSegment:
    """Per-(segment, quality) output of the offline analysis."""

    segment: EncodedSegment
    ordering: Ordering
    curve: DropCurve
    entry: SegmentEntry


@dataclass
class PreparedVideo:
    """An encoded video plus its VOXEL-enriched manifest."""

    video: EncodedVideo
    manifest: VoxelManifest
    params: QoEParams
    prepared: List[List[PreparedSegment]]  # [quality][index]

    @property
    def name(self) -> str:
        return self.video.name

    def prepared_segment(self, quality: int, index: int) -> PreparedSegment:
        return self.prepared[quality][index]


def _max_tolerable_drops(
    segment: EncodedSegment,
    order: Sequence[int],
    bound: float,
    params: QoEParams,
) -> int:
    """Largest tail-drop count whose score still meets ``bound``.

    Scores are monotone non-increasing in the drop count (dropping more
    frames only ever adds error), so a binary search suffices.
    """
    n = len(order)

    def score(k: int) -> float:
        dropped = order[n - k:] if k else []
        return decode_segment(segment, params=params, dropped=dropped).score

    if score(0) < bound:
        return -1  # even pristine misses the bound
    lo, hi = 0, n
    # Invariant: score(lo) >= bound; score(hi+1 side) unknown/short.
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if score(mid) >= bound:
            lo = mid
        else:
            hi = mid - 1
    return lo


def _bytes_at_drops(
    segment: EncodedSegment, order: Sequence[int], drops: int, base_reliable: int
) -> int:
    payloads = {frame.index: frame.payload_bytes for frame in segment.frames}
    kept = order[: len(order) - drops]
    return base_reliable + sum(payloads[idx] for idx in kept)


def _choose_ordering_fast(
    segment: EncodedSegment,
    bound: float,
    params: QoEParams,
    orderings: Sequence[Ordering],
) -> Ordering:
    """Ordering needing the fewest bytes to beat ``bound`` (binary search)."""
    base_reliable = reliable_bytes(segment)
    best_ordering = orderings[0]
    best_bytes: Optional[int] = None
    for ordering in orderings:
        order = build_order(segment.frames, ordering)
        drops = _max_tolerable_drops(segment, order, bound, params)
        if drops < 0:
            needed = _bytes_at_drops(segment, order, 0, base_reliable)
        else:
            needed = _bytes_at_drops(segment, order, drops, base_reliable)
        if best_bytes is None or needed < best_bytes:
            best_bytes = needed
            best_ordering = ordering
    return best_ordering


def _segment_ranges(
    segment: EncodedSegment, order: Sequence[int], base_offset: int
) -> Tuple[Tuple[int, int], ...]:
    """Frame byte ranges in download-priority order, absolute offsets."""
    offsets = segment.frames.frame_offsets()
    return tuple(
        (base_offset + offsets[idx][0], base_offset + offsets[idx][1])
        for idx in order
    )


def prepare(
    video_or_name,
    params: QoEParams = DEFAULT_PARAMS,
    orderings: Sequence[Ordering] = DEFAULT_ORDERINGS,
    min_score_step: float = 0.002,
) -> PreparedVideo:
    """Run the full offline preparation for a video.

    Args:
        video_or_name: an :class:`EncodedVideo` or a catalog name.
        params: QoE model constants used for the analysis.
        orderings: candidate frame orderings (§4.1 lists three; VOXEL's
            QoE ranking is included by default).
        min_score_step: thinning granularity of the manifest's quality
            points.

    Returns:
        The :class:`PreparedVideo` with the enriched manifest.
    """
    video = (
        video_or_name
        if isinstance(video_or_name, EncodedVideo)
        else get_video(video_or_name)
    )

    representations: List[Representation] = []
    prepared: List[List[PreparedSegment]] = []
    for level in video.ladder:
        quality = level.index
        entries: List[SegmentEntry] = []
        prepared_level: List[PreparedSegment] = []
        offset = 0
        for index in range(video.num_segments):
            segment = video.segment(quality, index)
            if quality == 0:
                lower_bound = 0.0
            else:
                lower = video.segment(quality - 1, index)
                lower_bound = pristine_score(lower, params=params)

            ordering = _choose_ordering_fast(
                segment, lower_bound, params, orderings
            )
            curve = compute_drop_curve(segment, ordering, params=params)
            points = virtual_levels(
                curve, lower_bound, min_score_step=min_score_step
            )
            # Scores are rounded to the manifest's serialized precision so
            # a parse -> serialize round trip is lossless.
            quality_points = tuple(
                QualityPoint(
                    score=round(p.score, 4),
                    frames=p.frames_delivered,
                    bytes=p.bytes_needed,
                )
                for p in points
            )

            frames = segment.frames
            frame_offsets = frames.frame_offsets()
            reliable_ranges: List[Tuple[int, int]] = [
                (offset + frame_offsets[0][0], offset + frame_offsets[0][1])
            ]
            for frame in frames:
                if frame.index == 0:
                    continue
                start = offset + frame_offsets[frame.index][0]
                reliable_ranges.append((start, start + frame.header_bytes))

            unreliable_ranges = tuple(
                (
                    offset + frame_offsets[idx][0] + frames[idx].header_bytes,
                    offset + frame_offsets[idx][1],
                )
                for idx in curve.order
            )

            entry = SegmentEntry(
                index=index,
                quality=quality,
                media_range=(offset, offset + segment.total_bytes),
                duration=segment.duration,
                reliable_size=reliable_bytes(segment),
                ordering=ordering,
                frame_order=tuple(curve.order),
                quality_points=quality_points,
                reliable_ranges=tuple(reliable_ranges),
                unreliable_ranges=unreliable_ranges,
            )
            entries.append(entry)
            prepared_level.append(
                PreparedSegment(
                    segment=segment, ordering=ordering, curve=curve, entry=entry
                )
            )
            offset += segment.total_bytes

        representations.append(
            Representation(
                quality=quality,
                avg_bitrate_bps=level.avg_bitrate_bps,
                resolution=level.resolution,
                segments=entries,
            )
        )
        prepared.append(prepared_level)

    manifest = VoxelManifest(
        video=video.name,
        segment_duration=video.segment_duration,
        representations=representations,
    )
    return PreparedVideo(
        video=video, manifest=manifest, params=params, prepared=prepared
    )


_PREPARED_CACHE: Dict[Tuple[str, QoEParams], PreparedVideo] = {}


def get_prepared(
    name: str, params: QoEParams = DEFAULT_PARAMS
) -> PreparedVideo:
    """Prepared video from the catalog, cached process-wide."""
    key = (name.lower(), params)
    cached = _PREPARED_CACHE.get(key)
    if cached is None:
        cached = prepare(name, params=params)
        _PREPARED_CACHE[key] = cached
    return cached


def clear_prepared_cache() -> None:
    _PREPARED_CACHE.clear()
