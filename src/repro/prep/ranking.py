"""Frame prioritization orderings (§4.1).

VOXEL investigates three download orders for the non-I frames of a
segment.  An *ordering* is a permutation of the frame indices ``1..N-1``
(the I-frame always travels first, reliably, and is never part of any
ordering).  Clients download frames in this order; if the download of a
segment is cut short, the frames at the **tail** of the ordering are the
ones dropped.

1. **Original order** — decode/display order as emitted by the encoder.
   Terminating early drops the *end of the segment in time*, so drops are
   consecutive and freeze errors accumulate.
2. **Unreferenced-grouped order** — frames with no inbound references are
   moved to the tail (this closely resembles BETA, which only ever drops
   unreferenced B-frames).
3. **Inbound-reference rank order** — frames are ranked by their direct
   plus transitive inbound-reference weight; the least-referenced frames
   form the tail.  Ties (e.g. all unreferenced b-frames have weight 0)
   are broken by the estimated visual cost of dropping the frame, most
   costly first, so the cheapest drops sit at the very end.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List

from repro.video.frames import SegmentFrames


class Ordering(enum.Enum):
    """Frame prioritization orders.

    The first three are the candidates of §4.1.  ``QOE_RANK`` is the
    QoE-metric-based importance ranking the paper's introduction claims as
    VOXEL's novel capability: it weighs each frame's structural influence
    by the visual cost of concealing it, which is what lets VOXEL drop
    *referenced* frames in calm scenes ahead of unreferenced frames in
    action scenes (§3 reports 12.6-30 % of dropped frames being
    referenced ones).
    """

    ORIGINAL = "original"
    UNREFERENCED_TAIL = "unreferenced_tail"
    REFERENCE_RANK = "reference_rank"
    QOE_RANK = "qoe_rank"

    def __str__(self) -> str:
        return self.value


def original_order(frames: SegmentFrames) -> List[int]:
    """Decode order: frames 1..N-1 as the encoder emitted them."""
    return [frame.index for frame in frames if frame.index != 0]


def unreferenced_tail_order(frames: SegmentFrames) -> List[int]:
    """Referenced frames first (decode order), unreferenced ones at tail.

    Within each group the original order is preserved; this mirrors
    BETA's reordering, where only the unreferenced B-frames are eligible
    for dropping and they are dropped from the end.
    """
    referenced = set(frames.referenced_indices())
    head = [
        frame.index
        for frame in frames
        if frame.index != 0 and frame.index in referenced
    ]
    tail = [
        frame.index
        for frame in frames
        if frame.index != 0 and frame.index not in referenced
    ]
    return head + tail


def reference_rank_order(frames: SegmentFrames) -> List[int]:
    """Rank by transitive inbound-reference weight, most-referenced first.

    The tail ends up holding frames whose loss affects the fewest other
    frames; among equally-unimportant frames the ones carrying the least
    motion (cheapest to conceal) go last.
    """
    influence = frames.transitive_reference_weight()
    candidates = [frame for frame in frames if frame.index != 0]
    # Sort key: primary = influence descending; secondary = drop cost
    # (motion) descending, so the cheapest-to-drop frames are last;
    # tertiary = display order for stability.
    candidates.sort(
        key=lambda frame: (-influence[frame.index], -frame.motion, frame.index)
    )
    return [frame.index for frame in candidates]


def qoe_rank_order(frames: SegmentFrames) -> List[int]:
    """Rank by estimated QoE cost of dropping the frame, costliest first.

    The cost estimate combines the concealment error of the frame itself
    (proportional to the motion it carries) with the error its loss
    injects into every frame that references it, directly or transitively
    (the structural influence weight).  The cheapest-to-drop frames land
    at the tail of the download order.
    """
    influence = frames.transitive_reference_weight()
    # 0.75 mirrors the QoE model's default propagation decay; the ranking
    # only needs the relative order, so the exact constant is uncritical.
    decay = 0.75

    def drop_cost(frame) -> float:
        return frame.motion * (1.0 + decay * influence[frame.index])

    candidates = [frame for frame in frames if frame.index != 0]
    candidates.sort(key=lambda frame: (-drop_cost(frame), frame.index))
    return [frame.index for frame in candidates]


_BUILDERS: Dict[Ordering, Callable[[SegmentFrames], List[int]]] = {
    Ordering.ORIGINAL: original_order,
    Ordering.UNREFERENCED_TAIL: unreferenced_tail_order,
    Ordering.REFERENCE_RANK: reference_rank_order,
    Ordering.QOE_RANK: qoe_rank_order,
}


def build_order(frames: SegmentFrames, ordering: Ordering) -> List[int]:
    """Materialize an ordering for a segment's frames."""
    return _BUILDERS[ordering](frames)


def validate_order(frames: SegmentFrames, order: List[int]) -> None:
    """Raise ``ValueError`` unless ``order`` permutes frames 1..N-1."""
    expected = set(range(1, len(frames)))
    if set(order) != expected or len(order) != len(expected):
        raise ValueError("ordering must be a permutation of frames 1..N-1")
