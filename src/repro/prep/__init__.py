"""Offline video preparation: frame ranking, drop analysis, manifests."""

from repro.prep.analysis import (
    DropCurve,
    DropPoint,
    OrderingChoice,
    choose_best_ordering,
    compute_drop_curve,
    droppable_positions,
    reliable_bytes,
    virtual_levels,
)
from repro.prep.manifest import (
    QualityPoint,
    Representation,
    SegmentEntry,
    VoxelManifest,
)
from repro.prep.prepare import (
    DEFAULT_ORDERINGS,
    PreparedSegment,
    PreparedVideo,
    clear_prepared_cache,
    get_prepared,
    prepare,
)
from repro.prep.ranking import (
    Ordering,
    build_order,
    original_order,
    qoe_rank_order,
    reference_rank_order,
    unreferenced_tail_order,
    validate_order,
)

__all__ = [
    "DropCurve",
    "DropPoint",
    "OrderingChoice",
    "choose_best_ordering",
    "compute_drop_curve",
    "droppable_positions",
    "reliable_bytes",
    "virtual_levels",
    "QualityPoint",
    "Representation",
    "SegmentEntry",
    "VoxelManifest",
    "DEFAULT_ORDERINGS",
    "PreparedSegment",
    "PreparedVideo",
    "clear_prepared_cache",
    "get_prepared",
    "prepare",
    "Ordering",
    "build_order",
    "original_order",
    "qoe_rank_order",
    "reference_rank_order",
    "unreferenced_tail_order",
    "validate_order",
]
