"""DASH manifest model with VOXEL's frame-level extension (§4.1).

A standard DASH manifest lists, per representation (quality level), the
byte range of every segment.  VOXEL enriches each segment entry with:

* ``ssims`` — tuples ``score:frames:bytes``: downloading ``bytes`` bytes
  (in the prioritized frame order) delivers ``frames`` full frames and an
  expected QoE of ``score``,
* ``reliable`` — byte ranges that must be fetched over a reliable stream
  (the I-frame and every frame header),
* ``unreliable`` — byte ranges (in priority order!) for the unreliable
  stream,
* ``reliableSize`` — total size of the reliable part.

The video files themselves are untouched; the manifest merely tells a
VOXEL-aware client in which order to issue HTTP range requests.  A
VOXEL-unaware client ignores the extra attributes and downloads the
``mediaRange`` sequentially — exactly the backward-compatibility story of
the paper (:meth:`SegmentEntry.basic_view`).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.prep.ranking import Ordering


@dataclass(frozen=True)
class QualityPoint:
    """One ``score:frames:bytes`` tuple of the ``ssims`` attribute."""

    score: float
    frames: int
    bytes: int

    def serialize(self) -> str:
        return f"{self.score:.4f}:{self.frames}:{self.bytes}"

    @classmethod
    def parse(cls, text: str) -> "QualityPoint":
        score, frames, nbytes = text.split(":")
        return cls(score=float(score), frames=int(frames), bytes=int(nbytes))


ByteRange = Tuple[int, int]  # (start, end) — end exclusive


def _ranges_to_str(ranges: Sequence[ByteRange]) -> str:
    return ",".join(f"{start}-{end - 1}" for start, end in ranges)


def _ranges_from_str(text: str) -> List[ByteRange]:
    if not text:
        return []
    out = []
    for part in text.split(","):
        start, end = part.split("-")
        out.append((int(start), int(end) + 1))
    return out


@dataclass
class SegmentEntry:
    """Manifest entry of one segment at one quality level.

    Byte offsets are absolute within the representation's media file,
    mirroring Listing 1 of the paper.
    """

    index: int
    quality: int
    media_range: ByteRange
    duration: float
    reliable_size: int
    ordering: Ordering
    frame_order: Tuple[int, ...]  # download order of frames 1..N-1
    quality_points: Tuple[QualityPoint, ...]  # best score first
    reliable_ranges: Tuple[ByteRange, ...]
    unreliable_ranges: Tuple[ByteRange, ...]  # in download-priority order

    @property
    def total_bytes(self) -> int:
        start, end = self.media_range
        return end - start

    @property
    def pristine_score(self) -> float:
        return self.quality_points[0].score if self.quality_points else 1.0

    def score_for_bytes(self, byte_budget: int) -> float:
        """Best expected score within ``byte_budget`` bytes.

        A client uses this to judge a partial download: the quality points
        are sorted best-first (and, equivalently, largest-bytes first), so
        the first fitting entry is the answer.  If even the smallest point
        does not fit (the budget can't cover the reliable part plus the
        minimum payload), the worst point's score is returned as a
        pessimistic estimate.
        """
        for point in self.quality_points:
            if point.bytes <= byte_budget:
                return point.score
        return self.quality_points[-1].score if self.quality_points else 0.0

    def bytes_for_score(self, target_score: float) -> Optional[int]:
        """Smallest download achieving ``target_score``, if possible."""
        fitting = [p for p in self.quality_points if p.score >= target_score]
        if not fitting:
            return None
        return min(p.bytes for p in fitting)

    def basic_view(self) -> "SegmentEntry":
        """What a VOXEL-unaware client effectively sees.

        The frame-level metadata is dropped; the whole segment is a single
        reliable range in decode order.
        """
        return SegmentEntry(
            index=self.index,
            quality=self.quality,
            media_range=self.media_range,
            duration=self.duration,
            reliable_size=self.total_bytes,
            ordering=Ordering.ORIGINAL,
            frame_order=(),
            quality_points=(
                QualityPoint(self.pristine_score, -1, self.total_bytes),
            ),
            reliable_ranges=(self.media_range,),
            unreliable_ranges=(),
        )

    def serialize(self) -> str:
        ssims = ",".join(p.serialize() for p in self.quality_points)
        order = " ".join(str(i) for i in self.frame_order)
        return (
            f'<SegmentURL index="{self.index}" '
            f'mediaRange="{self.media_range[0]}-{self.media_range[1] - 1}" '
            f'duration="{self.duration}" '
            f'ordering="{self.ordering.value}" '
            f'frameOrder="{order}" '
            f'ssims="{ssims}" '
            f'reliable="{_ranges_to_str(self.reliable_ranges)}" '
            f'unreliable="{_ranges_to_str(self.unreliable_ranges)}" '
            f'reliableSize="{self.reliable_size}"/>'
        )

    @classmethod
    def parse(cls, line: str, quality: int) -> "SegmentEntry":
        attrs = _parse_attrs(line)
        start, end = attrs["mediaRange"].split("-")
        points = tuple(
            QualityPoint.parse(part) for part in attrs["ssims"].split(",") if part
        )
        order = tuple(
            int(tok) for tok in attrs.get("frameOrder", "").split() if tok
        )
        return cls(
            index=int(attrs["index"]),
            quality=quality,
            media_range=(int(start), int(end) + 1),
            duration=float(attrs["duration"]),
            reliable_size=int(attrs["reliableSize"]),
            ordering=Ordering(attrs["ordering"]),
            frame_order=order,
            quality_points=points,
            reliable_ranges=tuple(_ranges_from_str(attrs["reliable"])),
            unreliable_ranges=tuple(_ranges_from_str(attrs["unreliable"])),
        )


@dataclass
class Representation:
    """One quality level of the manifest."""

    quality: int
    avg_bitrate_bps: float
    resolution: Tuple[int, int]
    segments: List[SegmentEntry]

    @property
    def total_bytes(self) -> int:
        return sum(entry.total_bytes for entry in self.segments)

    def serialize(self) -> str:
        buf = io.StringIO()
        buf.write(
            f'<Representation quality="{self.quality}" '
            f'bandwidth="{self.avg_bitrate_bps:.0f}" '
            f'width="{self.resolution[0]}" height="{self.resolution[1]}">\n'
        )
        for entry in self.segments:
            buf.write("  " + entry.serialize() + "\n")
        buf.write("</Representation>")
        return buf.getvalue()


@dataclass
class VoxelManifest:
    """A VOXEL-extended DASH manifest (MPD)."""

    video: str
    segment_duration: float
    representations: List[Representation]

    def __post_init__(self) -> None:
        # Derived-view memos.  The manifest is immutable after
        # construction (nothing in the codebase appends or rewrites
        # entries), so per-index rows and the basic view are computed
        # once and shared by every session streaming this video.
        self._entry_rows: Dict[int, List[SegmentEntry]] = {}
        self._basic: Optional["VoxelManifest"] = None

    @property
    def num_segments(self) -> int:
        return len(self.representations[0].segments)

    @property
    def num_levels(self) -> int:
        return len(self.representations)

    @property
    def duration(self) -> float:
        return self.num_segments * self.segment_duration

    def entry(self, quality: int, index: int) -> SegmentEntry:
        return self.representations[quality].segments[index]

    def entry_row(self, index: int) -> List[SegmentEntry]:
        """Per-quality entries of one segment index, computed once.

        The returned list has stable identity per index, so decision
        caches keyed on the row object hold across every session (and
        every client of a fleet) sharing this manifest.
        """
        row = self._entry_rows.get(index)
        if row is None:
            row = [rep.segments[index] for rep in self.representations]
            self._entry_rows[index] = row
        return row

    def bitrates_bps(self) -> List[float]:
        return [rep.avg_bitrate_bps for rep in self.representations]

    def segment_sizes(self, quality: int) -> List[int]:
        return [e.total_bytes for e in self.representations[quality].segments]

    def metadata_bytes(self) -> int:
        """Serialized manifest size — the paper's ~16 %-of-a-Q12-segment
        overhead discussion (§4.1)."""
        return len(self.serialize().encode("utf-8"))

    def basic_view(self) -> "VoxelManifest":
        """Manifest as consumed by a VOXEL-unaware client (memoized)."""
        view = self._basic
        if view is None:
            reps = [
                Representation(
                    quality=rep.quality,
                    avg_bitrate_bps=rep.avg_bitrate_bps,
                    resolution=rep.resolution,
                    segments=[entry.basic_view() for entry in rep.segments],
                )
                for rep in self.representations
            ]
            view = VoxelManifest(
                video=self.video,
                segment_duration=self.segment_duration,
                representations=reps,
            )
            self._basic = view
        return view

    def serialize(self) -> str:
        buf = io.StringIO()
        buf.write(
            f'<MPD video="{self.video}" '
            f'segmentDuration="{self.segment_duration}">\n'
        )
        for rep in self.representations:
            buf.write(rep.serialize() + "\n")
        buf.write("</MPD>")
        return buf.getvalue()

    @classmethod
    def parse(cls, text: str) -> "VoxelManifest":
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        header = _parse_attrs(lines[0])
        video = header["video"]
        seg_dur = float(header["segmentDuration"])
        reps: List[Representation] = []
        current: Optional[Representation] = None
        for line in lines[1:]:
            if line.startswith("<Representation"):
                attrs = _parse_attrs(line)
                current = Representation(
                    quality=int(attrs["quality"]),
                    avg_bitrate_bps=float(attrs["bandwidth"]),
                    resolution=(int(attrs["width"]), int(attrs["height"])),
                    segments=[],
                )
            elif line.startswith("<SegmentURL"):
                if current is None:
                    raise ValueError("SegmentURL outside Representation")
                current.segments.append(
                    SegmentEntry.parse(line, quality=current.quality)
                )
            elif line.startswith("</Representation"):
                if current is None:
                    raise ValueError("unbalanced Representation close tag")
                reps.append(current)
                current = None
        reps.sort(key=lambda rep: rep.quality)
        return cls(video=video, segment_duration=seg_dur, representations=reps)


def _parse_attrs(line: str) -> Dict[str, str]:
    """Parse ``key="value"`` attributes out of a single-tag line."""
    attrs: Dict[str, str] = {}
    rest = line
    while '="' in rest:
        key_part, rest = rest.split('="', 1)
        key = key_part.rsplit(" ", 1)[-1].lstrip("<")
        value, rest = rest.split('"', 1)
        attrs[key] = value
    return attrs
