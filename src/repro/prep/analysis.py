"""Offline frame-drop tolerance analysis (§3 and §4.1).

For a segment and a frame ordering, the *drop curve* maps "drop the last
``k`` frames of the ordering" to the resulting segment QoE score and the
bytes the client must download (I-frame + all frame headers + payloads of
the kept frames).  From the curves we derive:

* **drop tolerance** — the largest fraction of frames that may be dropped
  while keeping the score above a target (Fig. 1a-c, Fig. 19),
* **droppable positions** — which display positions may be dropped at a
  target score (Fig. 2a),
* **the best ordering** — the one needing the fewest bytes to beat the
  score of the next-lower quality level (§4.1),
* **virtual quality levels** — (score, frames, bytes) tuples written into
  the manifest's ``ssims`` attribute (Fig. 2c/d, Listing 1).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.prep.ranking import Ordering, build_order
from repro.qoe.model import DEFAULT_PARAMS, QoEParams, decode_segment
from repro.video.encoder import EncodedSegment
from repro.video.frames import FrameType


@dataclass(frozen=True)
class DropPoint:
    """One point of a drop curve.

    Attributes:
        dropped: number of tail frames of the ordering not downloaded.
        frames_delivered: frames whose payload is fully delivered
            (including the I-frame).
        bytes_needed: bytes the client downloads to realize this point
            (reliable bytes — I-frame plus all headers — plus the payloads
            of delivered frames).
        score: resulting segment QoE score (model SSIM).
    """

    dropped: int
    frames_delivered: int
    bytes_needed: int
    score: float


@dataclass
class DropCurve:
    """Score and byte cost as a function of tail drops under one ordering."""

    segment: EncodedSegment
    ordering: Ordering
    order: List[int]
    points: List[DropPoint]

    @property
    def num_frames(self) -> int:
        return len(self.segment.frames)

    @property
    def pristine_score(self) -> float:
        return self.points[0].score

    def tolerance(self, target_score: float) -> float:
        """Largest drop *fraction* keeping the score >= target.

        The fraction is over all frames of the segment, matching the
        x-axis of Fig. 1.  Returns 0.0 if even one drop violates the
        target (or the segment can't hit the target at all).
        """
        best = 0
        for point in self.points:
            if point.score >= target_score:
                best = max(best, point.dropped)
        return best / self.num_frames

    def max_drops(self, target_score: float) -> int:
        """Largest number of dropped frames keeping score >= target."""
        best = 0
        for point in self.points:
            if point.score >= target_score:
                best = max(best, point.dropped)
        return best

    def bytes_for_score(self, target_score: float) -> Optional[int]:
        """Smallest download achieving at least ``target_score``.

        Returns ``None`` when the target is unreachable even with the full
        segment (encoding distortion alone is too high).
        """
        candidates = [p for p in self.points if p.score >= target_score]
        if not candidates:
            return None
        return min(p.bytes_needed for p in candidates)

    def point_for_bytes(self, byte_budget: int) -> DropPoint:
        """The best point downloadable within ``byte_budget`` bytes.

        Points are monotone in bytes (more drops = fewer bytes), so this
        returns the point with the fewest drops that still fits.  If even
        the maximum-drop point exceeds the budget, that point is returned
        (the client must at least fetch the reliable part).
        """
        fitting = [p for p in self.points if p.bytes_needed <= byte_budget]
        if not fitting:
            return self.points[-1]
        return min(fitting, key=lambda p: p.dropped)

    def score_for_bytes(self, byte_budget: int) -> float:
        return self.point_for_bytes(byte_budget).score


def reliable_bytes(segment: EncodedSegment) -> int:
    """Bytes VOXEL always delivers reliably: the I-frame + all headers."""
    frames = segment.frames
    return frames.i_frame.size + sum(
        frame.header_bytes for frame in frames if frame.index != 0
    )


def _drop_grid(n_droppable: int, fine_until: int = 32, stride: int = 3) -> List[int]:
    """k values at which to evaluate a drop curve.

    Dense at the head (where ABR decisions live), strided toward full
    drop; always includes 0 and the maximum.
    """
    ks = list(range(0, min(fine_until, n_droppable) + 1))
    ks.extend(range(fine_until + stride, n_droppable, stride))
    if n_droppable not in ks:
        ks.append(n_droppable)
    return sorted(set(k for k in ks if 0 <= k <= n_droppable))


def compute_drop_curve(
    segment: EncodedSegment,
    ordering: Ordering,
    params: QoEParams = DEFAULT_PARAMS,
    grid: Optional[Sequence[int]] = None,
) -> DropCurve:
    """Evaluate the drop curve of a segment under an ordering."""
    order = build_order(segment.frames, ordering)
    n_droppable = len(order)
    ks = list(grid) if grid is not None else _drop_grid(n_droppable)

    base_reliable = reliable_bytes(segment)
    payloads = {
        frame.index: frame.payload_bytes for frame in segment.frames
    }
    total_payload = sum(
        payloads[idx] for idx in order
    )

    points: List[DropPoint] = []
    for k in ks:
        dropped = order[n_droppable - k:] if k else []
        result = decode_segment(segment, params=params, dropped=dropped)
        dropped_payload = sum(payloads[idx] for idx in dropped)
        points.append(
            DropPoint(
                dropped=k,
                frames_delivered=len(segment.frames) - k,
                bytes_needed=base_reliable + total_payload - dropped_payload,
                score=result.score,
            )
        )
    return DropCurve(segment=segment, ordering=ordering, order=order, points=points)


def droppable_positions(
    segment: EncodedSegment,
    target_score: float,
    params: QoEParams = DEFAULT_PARAMS,
    max_score_delta: float = 0.01,
) -> List[int]:
    """Display positions whose individual drop keeps the score high.

    Fig. 2a asks: can the frame at position ``p`` be dropped from the
    segment without reducing the score by more than 0.01?  Returns the
    positions for which the answer is yes.
    """
    base = decode_segment(segment, params=params).score
    positions: List[int] = []
    for frame in segment.frames:
        if frame.index == 0:
            continue
        result = decode_segment(segment, params=params, dropped=[frame.index])
        if result.score >= base - max_score_delta and result.score >= target_score:
            positions.append(frame.index)
    return positions


@dataclass
class OrderingChoice:
    """Outcome of the best-ordering selection for one segment/quality."""

    ordering: Ordering
    curve: DropCurve
    bytes_needed: int  # to beat the lower-bound score
    lower_bound: float  # pristine score of the next-lower quality


def choose_best_ordering(
    segment: EncodedSegment,
    lower_bound: float,
    params: QoEParams = DEFAULT_PARAMS,
    orderings: Sequence[Ordering] = tuple(Ordering),
) -> OrderingChoice:
    """Pick the ordering minimizing bytes to stay above ``lower_bound``.

    Per §4.1: for quality Qn the pristine score of Qn-1 is the lower
    bound — if drops push the score below it, the client would be better
    off fetching Qn-1 outright.  The chosen ordering is the one that can
    realize a score above the bound with the fewest bytes.
    """
    best: Optional[OrderingChoice] = None
    for ordering in orderings:
        curve = compute_drop_curve(segment, ordering, params=params)
        needed = curve.bytes_for_score(lower_bound)
        if needed is None:
            # Even pristine misses the bound (rare; very low-quality rungs).
            needed = curve.points[0].bytes_needed
        choice = OrderingChoice(
            ordering=ordering, curve=curve, bytes_needed=needed,
            lower_bound=lower_bound,
        )
        if best is None or choice.bytes_needed < best.bytes_needed:
            best = choice
    assert best is not None
    return best


def virtual_levels(
    curve: DropCurve,
    lower_bound: float,
    min_score_step: float = 0.002,
) -> List[DropPoint]:
    """Distill a drop curve into manifest-ready virtual quality levels.

    Returns a monotone list of points (best score first), thinned so that
    consecutive entries differ by at least ``min_score_step`` in score,
    and truncated at the lower-bound score — below it the client should
    switch to the next real quality level instead (§3, insight 3).
    """
    usable = [p for p in curve.points if p.score >= lower_bound]
    if not usable:
        usable = [curve.points[0]]
    usable.sort(key=lambda p: (-p.score, p.bytes_needed))
    thinned: List[DropPoint] = []
    for point in usable:
        if not thinned or thinned[-1].score - point.score >= min_score_step:
            thinned.append(point)
    return thinned
