"""ABR algorithms: Tput, BOLA, RobustMPC, BETA, BOLA-SSIM and ABR*."""

from repro.abr.abr_star import AbrStar, BolaSsim, qoe_utility
from repro.abr.base import (
    ABRAlgorithm,
    ControlAction,
    ControlVerb,
    Decision,
    DecisionContext,
    DownloadProgress,
    clamp_quality,
    safe_throughput,
)
from repro.abr.beta import BetaABR, BetaLevel
from repro.abr.bola import Bola, Candidate
from repro.abr.mpc import RobustMPC
from repro.abr.panda import PandaABR
from repro.abr.throughput import ThroughputABR

ABR_NAMES = (
    "tput", "panda", "bola", "mpc", "beta", "bola_ssim", "abr_star"
)


def make_abr(name: str, prepared=None, **kwargs) -> ABRAlgorithm:
    """Construct an ABR algorithm by name.

    ``beta`` needs the :class:`~repro.prep.prepare.PreparedVideo` (it
    precomputes its b-dropped segment variants from the video files).
    """
    key = name.lower()
    if key == "tput":
        return ThroughputABR(**kwargs)
    if key == "panda":
        return PandaABR(**kwargs)
    if key == "bola":
        return Bola(**kwargs)
    if key == "mpc":
        return RobustMPC(**kwargs)
    if key == "beta":
        if prepared is None:
            raise ValueError("BETA requires the prepared video")
        return BetaABR(prepared, **kwargs)
    if key in ("bola_ssim", "bola-ssim"):
        return BolaSsim(**kwargs)
    if key in ("abr_star", "abr-star", "voxel"):
        return AbrStar(**kwargs)
    raise KeyError(f"unknown ABR {name!r}; known: {', '.join(ABR_NAMES)}")


__all__ = [
    "ABRAlgorithm",
    "ControlAction",
    "ControlVerb",
    "Decision",
    "DecisionContext",
    "DownloadProgress",
    "clamp_quality",
    "safe_throughput",
    "AbrStar",
    "BolaSsim",
    "qoe_utility",
    "BetaABR",
    "BetaLevel",
    "Bola",
    "Candidate",
    "PandaABR",
    "RobustMPC",
    "ThroughputABR",
    "ABR_NAMES",
    "make_abr",
]
