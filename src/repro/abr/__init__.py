"""ABR algorithms: Tput, BOLA, RobustMPC, BETA, BOLA-SSIM and ABR*.

Algorithms are registered in the :data:`ABRS` registry; a
:class:`~repro.core.spec.ScenarioSpec` names one by its registry key and
:func:`make_abr` constructs it.  Registering a custom algorithm is one
decorator — after which every entry point (``stream()``, ``repro
stream``, ``repro sweep`` grids) accepts the new name::

    @ABRS.register("greedy", "always fetch the top quality (demo)")
    def _make_greedy(prepared=None, **kwargs):
        return GreedyABR(**kwargs)
"""

from repro.abr.abr_star import AbrStar, BolaSsim, qoe_utility
from repro.abr.base import (
    ABRAlgorithm,
    ControlAction,
    ControlVerb,
    Decision,
    DecisionContext,
    DownloadProgress,
    clamp_quality,
    safe_throughput,
)
from repro.abr.beta import BetaABR, BetaLevel
from repro.abr.bola import Bola, Candidate
from repro.abr.mpc import RobustMPC
from repro.abr.panda import PandaABR
from repro.abr.throughput import ThroughputABR
from repro.core.registry import Registry

#: The ABR algorithm registry.  Factories take ``prepared`` (the
#: :class:`~repro.prep.prepare.PreparedVideo`, which only BETA needs)
#: plus the algorithm's own keyword arguments.
ABRS = Registry("ABR")


@ABRS.register("tput", "harmonic-mean throughput rule with safety margin")
def _make_tput(prepared=None, **kwargs):
    return ThroughputABR(**kwargs)


@ABRS.register("panda", "PANDA: probe-and-adapt rate smoothing")
def _make_panda(prepared=None, **kwargs):
    return PandaABR(**kwargs)


@ABRS.register("bola", "BOLA: Lyapunov buffer-based bitrate control")
def _make_bola(prepared=None, **kwargs):
    return Bola(**kwargs)


@ABRS.register("mpc", "RobustMPC: model-predictive QoE lookahead")
def _make_mpc(prepared=None, **kwargs):
    return RobustMPC(**kwargs)


@ABRS.register("beta", "BETA: frame-skipping deadline-aware baseline")
def _make_beta(prepared=None, **kwargs):
    if prepared is None:
        raise ValueError("BETA requires the prepared video")
    return BetaABR(prepared, **kwargs)


@ABRS.register("bola_ssim", "BOLA with SSIM utilities (component study)",
               aliases=("bola-ssim",))
def _make_bola_ssim(prepared=None, **kwargs):
    return BolaSsim(**kwargs)


@ABRS.register("abr_star", "ABR*: VOXEL's QoE-optimizing BOLA derivative",
               aliases=("abr-star", "voxel"))
def _make_abr_star(prepared=None, **kwargs):
    return AbrStar(**kwargs)


#: Canonical algorithm names, in registration order (aliases excluded).
ABR_NAMES = tuple(ABRS.names())


def make_abr(name: str, prepared=None, **kwargs) -> ABRAlgorithm:
    """Construct an ABR algorithm by registry name.

    ``beta`` needs the :class:`~repro.prep.prepare.PreparedVideo` (it
    precomputes its b-dropped segment variants from the video files).
    """
    return ABRS.get(name)(prepared=prepared, **kwargs)


__all__ = [
    "ABRAlgorithm",
    "ControlAction",
    "ControlVerb",
    "Decision",
    "DecisionContext",
    "DownloadProgress",
    "clamp_quality",
    "safe_throughput",
    "AbrStar",
    "BolaSsim",
    "qoe_utility",
    "BetaABR",
    "BetaLevel",
    "Bola",
    "Candidate",
    "PandaABR",
    "RobustMPC",
    "ThroughputABR",
    "ABRS",
    "ABR_NAMES",
    "make_abr",
]
