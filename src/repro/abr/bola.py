"""BOLA — Lyapunov-based buffer/utility ABR (Spiteri et al.).

This implements the BOLA-E flavour used by dash.js and by the paper: the
algorithm maximizes ``(V * (v_m + gp) - Q) / S_m`` over download options
``m`` with utility ``v_m``, size ``S_m`` and current buffer level ``Q``,
waits when every score is negative, and supports segment abandonment
(discard and restart lower) when a download falls behind.

Two aspects follow the paper's setup:

* BOLA receives the *exact* per-segment sizes, not ladder averages (§5).
* ``V`` and ``gp`` are derived from the buffer target and the utility
  range before streaming ("VOXEL automatically tunes gamma and V for the
  video's bitrate-ladder characteristics", §4.3) — the derivation keeps
  the lowest level sustainable down to one segment duration of buffer
  and makes the top level the fixed point at a full buffer.
* Small playback buffers (the paper goes down to one segment) break the
  classic derivation, so BOLA-E's placeholder-buffer trick is modelled
  by linearly mapping the real buffer into a virtual buffer space of at
  least ``min_virtual_target`` seconds.

Subclasses override :meth:`candidates` to change the decision space —
that is exactly how BOLA-SSIM and ABR* are built (§4.3).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.abr.base import (
    ABRAlgorithm,
    ControlAction,
    Decision,
    DecisionContext,
    DownloadProgress,
)
from repro.prep.manifest import VoxelManifest


@dataclass(frozen=True)
class Candidate:
    """One download option BOLA scores.

    ``target_bytes`` is ``None`` for a full-segment download, otherwise
    the partial-download budget realizing a virtual quality level.
    """

    quality: int
    size_bytes: int
    utility: float
    expected_score: float
    target_bytes: Optional[int] = None


# Shared candidate memo.  :meth:`Bola.candidates` (and every override in
# this codebase) is a pure function of the segment's entry row plus
# static per-algorithm configuration, so the candidate list for one
# (algorithm config, segment) pair is computed once and shared by every
# session — including the wait-loop re-decides of a single session and
# all clients of a fleet.  Keys carry the entry-row object itself, which
# both pins its id against reuse and keeps lookups identity-fast.
_CANDIDATE_CACHE: "OrderedDict" = OrderedDict()
_CANDIDATE_CACHE_MAX = 4096


def clear_candidate_cache() -> None:
    """Drop the shared candidate memo (tests and ad-hoc ladders)."""
    _CANDIDATE_CACHE.clear()


class Bola(ABRAlgorithm):
    """BOLA-E over full-segment candidates with bitrate utility.

    .. note:: :meth:`candidates` must stay a pure function of
       ``ctx.entries``, ``ctx.voxel_capable`` and static instance
       configuration (captured by :meth:`_candidates_key`) — the shared
       candidate memo depends on it.  Overrides that consult dynamic
       context (buffer, throughput) must also override
       :meth:`_candidates_key` to return ``None``, which disables the
       memo for that instance.
    """

    name = "bola"

    def __init__(
        self,
        min_virtual_target_s: float = 12.0,
        reserve_s: Optional[float] = None,
        enable_abandonment: bool = True,
        feasibility_factor: Optional[float] = 1.0,
    ):
        self.min_virtual_target_s = min_virtual_target_s
        self.reserve_s = reserve_s
        self.enable_abandonment = enable_abandonment
        # Deadline-feasibility cap (the BOLA-E/dash.js "insufficient
        # buffer" safeguard): a candidate is only eligible if it can
        # finish before the buffer runs dry at `factor x` the estimated
        # throughput.  `None` disables the cap entirely.
        self.feasibility_factor = feasibility_factor
        self._buffer_capacity_s = 0.0
        self._abandoned_segment: Optional[int] = None
        self._last_ctx: Optional[DecisionContext] = None

    # -- configuration --------------------------------------------------
    def setup(self, manifest: VoxelManifest, buffer_capacity_s: float) -> None:
        self._buffer_capacity_s = buffer_capacity_s

    # -- candidate space -------------------------------------------------
    def _candidates_key(self) -> Optional[tuple]:
        """Static configuration the candidate space depends on."""
        return (type(self),)

    def _cached_candidates(self, ctx: DecisionContext) -> List[Candidate]:
        config = self._candidates_key()
        if config is None:
            return self.candidates(ctx)
        key = (config, ctx.segment_index, ctx.voxel_capable, id(ctx.entries))
        cached = _CANDIDATE_CACHE.get(key)
        if cached is not None and cached[0] is ctx.entries:
            _CANDIDATE_CACHE.move_to_end(key)
            return cached[1]
        options = self.candidates(ctx)
        _CANDIDATE_CACHE[key] = (ctx.entries, options)
        if len(_CANDIDATE_CACHE) > _CANDIDATE_CACHE_MAX:
            _CANDIDATE_CACHE.popitem(last=False)
        return options

    def candidates(self, ctx: DecisionContext) -> List[Candidate]:
        """Full-segment options with log-bitrate utilities."""
        sizes = [ctx.entry(q).total_bytes for q in range(ctx.num_levels)]
        min_size = max(min(sizes), 1)
        return [
            Candidate(
                quality=q,
                size_bytes=sizes[q],
                utility=math.log(max(sizes[q], 1) / min_size),
                expected_score=ctx.entry(q).pristine_score,
            )
            for q in range(ctx.num_levels)
        ]

    # -- the BOLA rule ----------------------------------------------------
    def _parameters(self, options: Sequence[Candidate],
                    segment_duration: float) -> tuple:
        """Derive (V, gp, virtual_target) from the candidate utilities."""
        v_max = max(option.utility for option in options)
        reserve = self.reserve_s if self.reserve_s is not None else segment_duration
        virtual_target = max(self._buffer_capacity_s, self.min_virtual_target_s)
        if v_max <= 0:
            return 1.0, reserve, virtual_target
        v_param = (virtual_target - reserve) / v_max
        gp = reserve / max(v_param, 1e-9)
        return v_param, gp, virtual_target

    def _effective_buffer(self, ctx: DecisionContext, virtual_target: float
                          ) -> float:
        """Map the real buffer into the virtual (placeholder) space."""
        capacity = max(ctx.buffer_capacity_s, 1e-9)
        return ctx.buffer_level_s * (virtual_target / capacity)

    def choose(self, ctx: DecisionContext) -> Decision:
        self._abandoned_segment = None
        self._last_ctx = ctx
        options = self._cached_candidates(ctx)
        v_param, gp, virtual_target = self._parameters(
            options, ctx.segment_duration
        )
        buffer_eff = self._effective_buffer(ctx, virtual_target)

        if self.feasibility_factor is not None and ctx.throughput_bps > 0:
            deadline = max(ctx.buffer_level_s, 0.25 * ctx.segment_duration)
            budget_bits = (
                ctx.throughput_bps * self.feasibility_factor * deadline
            )
            feasible = [o for o in options if o.size_bytes * 8 <= budget_bits]
            # Probing escape: throughput estimates are made of past
            # downloads, so a low estimate reproduces itself (small
            # downloads measure little).  With a comfortable buffer the
            # next rung above the current quality is always allowed —
            # the abandonment machinery bounds the damage if the probe
            # was wrong.
            if (
                ctx.last_quality is not None
                and ctx.buffer_level_s >= 0.7 * ctx.buffer_capacity_s
            ):
                probe_ceiling = min(ctx.last_quality + 1, ctx.num_levels - 1)
                # Set membership: Candidate is frozen/hashable, so this
                # matches the list scan exactly without the O(n*m) eq
                # cascade on wide VOXEL candidate spaces.
                already = set(feasible)
                for option in options:
                    if (
                        option.quality <= probe_ceiling
                        and option not in already
                    ):
                        feasible.append(option)
                        already.add(option)
            if feasible:
                options = feasible
            else:
                options = [min(options, key=lambda o: o.size_bytes)]

        best: Optional[Candidate] = None
        best_score = 0.0
        for option in options:
            score = (
                v_param * (option.utility + gp) - buffer_eff
            ) / max(option.size_bytes, 1)
            if best is None or score > best_score:
                best, best_score = option, score

        assert best is not None
        if best_score <= 0:
            # Buffer high enough that no download is worthwhile yet.
            return Decision(
                quality=best.quality, wait_s=min(0.5, ctx.segment_duration / 4)
            )

        # First segment with no throughput knowledge: start safe — the
        # complete lowest quality level, no frame drops.
        if ctx.throughput_bps <= 0 and ctx.last_quality is None:
            full_low = [
                o for o in options
                if o.quality == 0 and o.target_bytes is None
            ]
            lowest = full_low[0] if full_low else max(
                (o for o in options if o.quality == 0),
                key=lambda o: o.size_bytes,
                default=min(options, key=lambda o: o.size_bytes),
            )
            return Decision(
                quality=lowest.quality,
                target_bytes=lowest.target_bytes,
                expected_score=lowest.expected_score,
            )
        return Decision(
            quality=best.quality,
            target_bytes=best.target_bytes,
            expected_score=best.expected_score,
        )

    # -- abandonment -------------------------------------------------------
    def control(self, progress: DownloadProgress) -> ControlAction:
        if not self.enable_abandonment:
            return ControlAction.cont()
        if self._abandoned_segment == progress.segment_index:
            return ControlAction.cont()  # at most one restart per segment
        if progress.quality == 0 or progress.throughput_bps <= 0:
            return ControlAction.cont()
        sent_frac = progress.bytes_sent / max(progress.bytes_total, 1)
        if sent_frac > 0.75:
            return ControlAction.cont()  # nearly done; finishing is cheaper

        remaining_bits = (progress.bytes_total - progress.bytes_sent) * 8
        remaining_time = remaining_bits / progress.throughput_bps
        if remaining_time <= progress.buffer_level_s:
            return ControlAction.cont()

        # Falling behind: restart at the highest quality that fits the
        # remaining buffer with some slack.
        budget_bits = progress.buffer_level_s * progress.throughput_bps * 0.8
        restart_quality = 0
        if self._last_ctx is not None:
            for quality in range(progress.quality - 1, -1, -1):
                if self._last_ctx.entry(quality).total_bytes * 8 <= budget_bits:
                    restart_quality = quality
                    break
        self._abandoned_segment = progress.segment_index
        self._count_control("restart")
        return ControlAction.restart(min(restart_quality, progress.quality - 1))