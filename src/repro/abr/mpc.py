"""RobustMPC — model-predictive-control ABR (Yin et al., SIGCOMM '15).

MPC plans over a lookahead horizon (five segments in the paper): it
predicts throughput, simulates candidate quality sequences through a
buffer model, and picks the first step of the sequence maximizing the
classic QoE objective::

    sum(bitrate_q) - lambda * |bitrate switches| - mu * rebuffer_time

RobustMPC discounts the throughput prediction by the recent maximum
relative prediction error, which is what makes it conservative on smooth
traces and — as the paper observes (§5.1) — perform poorly when traces
vary wildly (the error discount collapses the prediction).

The search enumerates the first-step quality exhaustively and continues
each branch greedily; with 13 ladder levels this keeps decisions cheap
while preserving MPC's character.  (The paper itself notes that MPC's
exhaustive search does not scale to VOXEL's enlarged decision space.)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.abr.base import (
    ABRAlgorithm,
    ControlAction,
    Decision,
    DecisionContext,
    DownloadProgress,
)
from repro.prep.manifest import VoxelManifest


class RobustMPC(ABRAlgorithm):
    """RobustMPC with harmonic-mean prediction and error discounting."""

    name = "mpc"

    def __init__(
        self,
        horizon: int = 5,
        rebuffer_penalty: float = 4.3,
        switch_penalty: float = 1.0,
    ):
        self.horizon = horizon
        self.rebuffer_penalty = rebuffer_penalty
        self.switch_penalty = switch_penalty
        self._manifest: Optional[VoxelManifest] = None
        self._past_errors: List[float] = []
        self._last_prediction: Optional[float] = None

    def setup(self, manifest: VoxelManifest, buffer_capacity_s: float) -> None:
        self._manifest = manifest
        self._past_errors = []
        self._last_prediction = None

    # ------------------------------------------------------------------
    def _predict_throughput(self, samples: Sequence[float]) -> float:
        recent = [s for s in samples[-5:] if s > 0]
        if not recent:
            return 0.0
        harmonic = len(recent) / sum(1.0 / s for s in recent)
        # Track the prediction error of the previous step.
        if self._last_prediction is not None and samples:
            actual = samples[-1]
            if actual > 0:
                error = abs(self._last_prediction - actual) / actual
                self._past_errors.append(error)
                if len(self._past_errors) > 5:
                    self._past_errors.pop(0)
        max_error = max(self._past_errors) if self._past_errors else 0.0
        prediction = harmonic / (1.0 + max_error)
        self._last_prediction = prediction
        return prediction

    def _segment_bits(self, quality: int, index: int) -> float:
        assert self._manifest is not None
        sizes = self._manifest.segment_sizes(quality)
        return sizes[min(index, len(sizes) - 1)] * 8.0

    def _bitrate_mbps(self, quality: int, index: int) -> float:
        return self._segment_bits(quality, index) / 4e6  # 4 s segments

    # ------------------------------------------------------------------
    def choose(self, ctx: DecisionContext) -> Decision:
        prediction = self._predict_throughput(ctx.throughput_samples)
        if prediction <= 0:
            return Decision(quality=0, expected_score=ctx.entry(0).pristine_score)

        last_quality = ctx.last_quality if ctx.last_quality is not None else 0
        best_quality = 0
        best_value = -float("inf")
        for first in range(ctx.num_levels):
            value = self._rollout(ctx, first, last_quality, prediction)
            if value > best_value:
                best_value = value
                best_quality = first
        return Decision(
            quality=best_quality,
            unreliable=True,
            expected_score=ctx.entry(best_quality).pristine_score,
        )

    def _rollout(
        self,
        ctx: DecisionContext,
        first_quality: int,
        last_quality: int,
        throughput_bps: float,
    ) -> float:
        """Objective of taking ``first_quality`` now, greedy afterwards."""
        assert self._manifest is not None
        buffer_s = ctx.buffer_level_s
        prev_quality = last_quality
        total = 0.0
        quality = first_quality
        for step in range(self.horizon):
            index = ctx.segment_index + step
            if index >= self._manifest.num_segments:
                break
            if step > 0:
                # Greedy continuation: per-step best marginal objective.
                quality = self._greedy_step(
                    index, buffer_s, prev_quality, throughput_bps, ctx
                )
            bits = self._segment_bits(quality, index)
            download_s = bits / throughput_bps
            rebuffer = max(download_s - buffer_s, 0.0)
            buffer_s = max(buffer_s - download_s, 0.0) + ctx.segment_duration
            buffer_s = min(buffer_s, ctx.buffer_capacity_s)
            total += (
                self._bitrate_mbps(quality, index)
                - self.rebuffer_penalty * rebuffer
                - self.switch_penalty
                * abs(
                    self._bitrate_mbps(quality, index)
                    - self._bitrate_mbps(prev_quality, index)
                )
            )
            prev_quality = quality
        return total

    def _greedy_step(
        self,
        index: int,
        buffer_s: float,
        prev_quality: int,
        throughput_bps: float,
        ctx: DecisionContext,
    ) -> int:
        best_quality = 0
        best_value = -float("inf")
        for quality in range(ctx.num_levels):
            bits = self._segment_bits(quality, index)
            download_s = bits / throughput_bps
            rebuffer = max(download_s - buffer_s, 0.0)
            value = (
                self._bitrate_mbps(quality, index)
                - self.rebuffer_penalty * rebuffer
                - self.switch_penalty
                * abs(
                    self._bitrate_mbps(quality, index)
                    - self._bitrate_mbps(prev_quality, index)
                )
            )
            if value > best_value:
                best_value = value
                best_quality = quality
        return best_quality
