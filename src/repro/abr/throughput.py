"""Naive throughput-based ABR ("Tput" in §5).

Picks the highest quality whose exact next-segment size can be fetched
within one segment duration at a safety-discounted throughput estimate.
The paper uses it to separate the transport's contribution from the ABR
algorithm's.
"""

from __future__ import annotations

from repro.abr.base import ABRAlgorithm, Decision, DecisionContext, clamp_quality


class ThroughputABR(ABRAlgorithm):
    """Rate-based selection with a multiplicative safety factor."""

    name = "tput"

    def __init__(self, safety: float = 0.9):
        if not 0 < safety <= 1.5:
            raise ValueError(f"implausible safety factor {safety}")
        self.safety = safety

    def choose(self, ctx: DecisionContext) -> Decision:
        budget_bits = (
            ctx.throughput_bps * self.safety * ctx.segment_duration
        )
        chosen = 0
        for quality in range(ctx.num_levels - 1, -1, -1):
            if ctx.entry(quality).total_bytes * 8 <= budget_bits:
                chosen = quality
                break
        chosen = clamp_quality(chosen, ctx.num_levels)
        return Decision(
            quality=chosen,
            target_bytes=None,
            unreliable=True,  # opportunistic; harmless on plain QUIC
            expected_score=ctx.entry(chosen).pristine_score,
        )
