"""BETA — Bandwidth-Efficient Temporal Adaptation (James et al.).

Reimplemented from the descriptions in the VOXEL paper (the original is
not publicly available, so — like the VOXEL authors — we rebuild it from
the published details):

* BETA runs over a **reliable** transport (TCP in the original; reliable
  QUIC streams here) — no imperfect transmission.
* Per quality level it knows exactly **one** virtual quality threshold:
  the segment with all *unreferenced* B-frames removed (frames nothing
  else references — "b-frames").  The video files are rewritten so those
  frames sit at the segment tail; here that is equivalent to requesting
  the unreferenced-tail byte count of the segment.
* When the estimated bandwidth does not cover the full segment, BETA
  requests the b-dropped variant instead.
* If even that falls behind mid-download, BETA discards the partial data
  and refetches the same segment at the lowest quality ("in the worst
  case, simply discard the data and fetch the same segment at the lowest
  quality", §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.abr.base import (
    ABRAlgorithm,
    ControlAction,
    Decision,
    DecisionContext,
    DownloadProgress,
)
from repro.prep.manifest import VoxelManifest
from repro.prep.prepare import PreparedVideo
from repro.qoe.model import QoEParams, decode_segment


@dataclass(frozen=True)
class BetaLevel:
    """BETA's per-(segment, quality) knowledge."""

    full_bytes: int
    bdrop_bytes: int  # size with all unreferenced B-frames removed
    bdrop_score: float  # QoE of the b-dropped variant
    bdrop_frames: Tuple[int, ...]  # the frames BETA's variant omits


class BetaABR(ABRAlgorithm):
    """BETA reimplementation over reliable streams."""

    name = "beta"

    def __init__(self, prepared: PreparedVideo, safety: float = 1.0):
        self.prepared = prepared
        self.safety = safety
        self._table: Dict[Tuple[int, int], BetaLevel] = {}
        self._restarted: Optional[int] = None
        self._current_decision: Optional[Decision] = None

    def setup(self, manifest: VoxelManifest, buffer_capacity_s: float) -> None:
        self._buffer_capacity_s = buffer_capacity_s

    # ------------------------------------------------------------------
    def _level(self, quality: int, index: int) -> BetaLevel:
        """BETA's precomputed b-drop variant (built lazily, cached)."""
        key = (quality, index)
        cached = self._table.get(key)
        if cached is not None:
            return cached
        segment = self.prepared.video.segment(quality, index)
        frames = segment.frames
        unreferenced = tuple(frames.unreferenced_indices())
        bdrop_bytes = segment.total_bytes - sum(
            frames[idx].payload_bytes for idx in unreferenced
        )
        score = decode_segment(
            segment, params=self.prepared.params, dropped=list(unreferenced)
        ).score
        level = BetaLevel(
            full_bytes=segment.total_bytes,
            bdrop_bytes=bdrop_bytes,
            bdrop_score=score,
            bdrop_frames=unreferenced,
        )
        self._table[key] = level
        return level

    # ------------------------------------------------------------------
    def choose(self, ctx: DecisionContext) -> Decision:
        self._restarted = None
        budget_bits = ctx.throughput_bps * self.safety * ctx.segment_duration
        if ctx.throughput_bps <= 0:
            decision = Decision(quality=0, unreliable=False,
                                expected_score=ctx.entry(0).pristine_score)
            self._current_decision = decision
            return decision

        # Highest quality whose FULL segment fits the budget.
        full_choice = 0
        for quality in range(ctx.num_levels - 1, -1, -1):
            if ctx.entry(quality).total_bytes * 8 <= budget_bits:
                full_choice = quality
                break

        # Temporal adaptation: can the b-dropped variant of a higher
        # level fit where the full segment does not?
        chosen_quality = full_choice
        target: Optional[int] = None
        expected = ctx.entry(full_choice).pristine_score
        if full_choice < ctx.num_levels - 1:
            candidate = full_choice + 1
            level = self._level(candidate, ctx.segment_index)
            if level.bdrop_bytes * 8 <= budget_bits:
                chosen_quality = candidate
                target = level.bdrop_bytes
                expected = level.bdrop_score

        skip = (
            self._level(chosen_quality, ctx.segment_index).bdrop_frames
            if target is not None
            else None
        )
        decision = Decision(
            quality=chosen_quality,
            target_bytes=target,
            unreliable=False,  # BETA never uses unreliable delivery
            expected_score=expected,
            skip_frames=skip,
        )
        self._current_decision = decision
        return decision

    # ------------------------------------------------------------------
    def control(self, progress: DownloadProgress) -> ControlAction:
        if self._restarted == progress.segment_index:
            return ControlAction.cont()
        if progress.quality == 0 or progress.throughput_bps <= 0:
            return ControlAction.cont()
        remaining_bits = (progress.bytes_total - progress.bytes_sent) * 8
        remaining_time = remaining_bits / progress.throughput_bps
        if remaining_time <= progress.buffer_level_s:
            return ControlAction.cont()
        # Worst case: discard and refetch the lowest quality.
        self._restarted = progress.segment_index
        self._count_control("restart")
        return ControlAction.restart(0)

    def beta_target_bytes(self, quality: int, index: int) -> int:
        """Size of BETA's b-dropped variant (exposed for the session)."""
        return self._level(quality, index).bdrop_bytes

    def beta_dropped_frames(self, quality: int, index: int) -> Tuple[int, ...]:
        """Frames omitted by BETA's variant (the session skips them)."""
        return self._level(quality, index).bdrop_frames
