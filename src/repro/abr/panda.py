"""PANDA — Probe AND Adapt (Li et al., JSAC 2014).

The canonical *throughput-based* ABR algorithm the paper's background
section cites (§2).  Included as an additional baseline beyond the
paper's evaluation set: it probes for bandwidth by additively increasing
its bandwidth-share estimate and multiplicatively backing off when the
measured throughput falls short — TCP-style dynamics at the request
level, which avoids the downward spiral of naive rate estimation when
many players share a bottleneck.

Simplified faithful core (per the paper's four steps):

1. estimate: ``x_hat += kappa * dt * (w - max(0, x_hat - x_tilde))``
2. smooth:   EWMA of ``x_hat``
3. quantize: pick the highest bitrate below ``safety * y_hat`` with a
   hysteresis margin for up-switches
4. schedule: (the inter-request time is handled by the player's buffer
   gating in this reproduction)
"""

from __future__ import annotations

from typing import Optional

from repro.abr.base import ABRAlgorithm, Decision, DecisionContext


class PandaABR(ABRAlgorithm):
    """Probe-and-adapt rate estimation with hysteresis quantization."""

    name = "panda"

    def __init__(
        self,
        kappa: float = 0.28e6,  # additive probe rate (bps per second)
        omega: float = 0.3e6,  # probing additive term (bps)
        alpha_smooth: float = 0.2,  # EWMA weight for the smoother
        safety: float = 0.85,
        up_hysteresis: float = 1.15,
    ):
        self.kappa = kappa
        self.omega = omega
        self.alpha_smooth = alpha_smooth
        self.safety = safety
        self.up_hysteresis = up_hysteresis
        self._x_hat: Optional[float] = None  # bandwidth-share estimate
        self._y_hat: Optional[float] = None  # smoothed estimate
        self._last_time: float = 0.0

    def choose(self, ctx: DecisionContext) -> Decision:
        measured = ctx.throughput_bps
        if measured <= 0:
            return Decision(
                quality=0,
                expected_score=ctx.entry(0).pristine_score,
                unreliable=False,
            )

        if self._x_hat is None:
            self._x_hat = measured
            self._y_hat = measured
        else:
            dt = ctx.segment_duration  # one decision per segment
            overshoot = max(0.0, self._x_hat - measured)
            self._x_hat += self.kappa * dt * (
                1.0 - (overshoot / self.omega if self.omega else 0.0)
            )
            self._x_hat = max(min(self._x_hat, measured + self.omega), 1e4)
            self._y_hat = (
                self.alpha_smooth * self._x_hat
                + (1 - self.alpha_smooth) * (self._y_hat or self._x_hat)
            )

        budget = self.safety * (self._y_hat or measured)
        current = ctx.last_quality if ctx.last_quality is not None else 0

        chosen = 0
        for quality in range(ctx.num_levels - 1, -1, -1):
            rate = ctx.entry(quality).total_bytes * 8 / ctx.segment_duration
            threshold = budget
            if quality > current:
                # Hysteresis: up-switches need extra headroom.
                threshold = budget / self.up_hysteresis
            if rate <= threshold:
                chosen = quality
                break
        return Decision(
            quality=chosen,
            expected_score=ctx.entry(chosen).pristine_score,
            unreliable=False,
        )
