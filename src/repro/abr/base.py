"""ABR algorithm interfaces shared by all implementations.

An ABR algorithm sees a :class:`DecisionContext` before every segment
download and returns a :class:`Decision` — which quality to fetch, an
optional byte target below the full segment size (a *virtual quality
level*, VOXEL-only), and whether the payload may ride an unreliable
stream.  During the download the session consults
:meth:`ABRAlgorithm.control` after every congestion round so the
algorithm can truncate (keep the partial segment) or abandon-and-restart
at another quality.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.prep.manifest import SegmentEntry, VoxelManifest


class ControlVerb(enum.Enum):
    """Mid-download control actions."""

    CONTINUE = "continue"
    TRUNCATE = "truncate"  # stop here / at a byte limit, keep the partial
    RESTART = "restart"  # discard, re-download at `restart_quality`


@dataclass(slots=True)
class ControlAction:
    verb: ControlVerb = ControlVerb.CONTINUE
    truncate_to_bytes: Optional[int] = None  # wire-request byte limit
    restart_quality: Optional[int] = None

    @classmethod
    def cont(cls) -> "ControlAction":
        # One shared instance: continue-actions are produced once per
        # transport round and never mutated, so allocation is waste.
        return _CONTINUE if cls is ControlAction else cls()

    @classmethod
    def truncate(cls, at_bytes: Optional[int] = None) -> "ControlAction":
        return cls(verb=ControlVerb.TRUNCATE, truncate_to_bytes=at_bytes)

    @classmethod
    def restart(cls, quality: int) -> "ControlAction":
        return cls(verb=ControlVerb.RESTART, restart_quality=quality)


_CONTINUE = ControlAction()


@dataclass(slots=True)
class Decision:
    """What to download next.

    Attributes:
        quality: ladder level to fetch.
        target_bytes: total byte budget (``None`` = the whole segment);
            only meaningful on a VOXEL-capable path.
        unreliable: allow the payload on an unreliable stream.
        wait_s: postpone the download (BOLA may decide the buffer is
            already high enough); the session idles and asks again.
        expected_score: the QoE score the algorithm believes this choice
            yields (for logging).
        skip_frames: explicit frames to omit from the request (BETA's
            b-dropped variant on a reliable transport).  When set, the
            session requests the segment minus these frames' payloads.
    """

    quality: int
    target_bytes: Optional[int] = None
    unreliable: bool = True
    wait_s: float = 0.0
    expected_score: float = 1.0
    skip_frames: Optional[tuple] = None


@dataclass(slots=True)
class DownloadProgress:
    """Live state handed to :meth:`ABRAlgorithm.control`."""

    segment_index: int
    quality: int
    elapsed: float  # since the download began
    bytes_sent: int  # wire bytes of this request sent so far
    bytes_total: int  # wire bytes this request wants
    buffer_level_s: float  # playback buffer remaining right now
    throughput_bps: float  # safe running estimate


@dataclass(slots=True)
class DecisionContext:
    """Everything an ABR algorithm may consult before a download."""

    segment_index: int
    buffer_level_s: float
    buffer_capacity_s: float
    throughput_bps: float  # safe estimate (0 when unknown yet)
    last_quality: Optional[int]
    manifest: VoxelManifest
    entries: Sequence[SegmentEntry]  # next segment's entry per quality
    segment_duration: float
    voxel_capable: bool  # partial/unreliable delivery usable end-to-end
    throughput_samples: Sequence[float] = ()  # recent per-download bps

    def entry(self, quality: int) -> SegmentEntry:
        return self.entries[quality]

    @property
    def num_levels(self) -> int:
        return len(self.entries)


class ABRAlgorithm(abc.ABC):
    """Base class for ABR algorithms."""

    name: str = "abr"

    #: Earliest download elapsed time (seconds) at which :meth:`control`
    #: can return anything but CONTINUE.  The session skips building the
    #: progress snapshot below it, so algorithms with a warm-up gate
    #: (e.g. ABR* waits 0.5 s of signal) advertise it here.  Must be a
    #: conservative lower bound of the method's own early-exit check.
    control_min_elapsed_s: float = 0.0

    def setup(self, manifest: VoxelManifest, buffer_capacity_s: float) -> None:
        """One-time initialization before streaming begins."""

    @abc.abstractmethod
    def choose(self, ctx: DecisionContext) -> Decision:
        """Pick the next download."""

    def control(self, progress: DownloadProgress) -> ControlAction:
        """Mid-download control; default: let the download finish."""
        return ControlAction.cont()

    def on_complete(self, segment_index: int, quality: int,
                    delivered_bytes: int, elapsed: float) -> None:
        """Hook after a segment download finishes (for internal state)."""

    def _count_control(self, verb: str) -> None:
        """Count a non-CONTINUE control action in the metrics registry."""
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "abr.control_actions", abr=self.name, verb=verb
        ).inc()


def clamp_quality(quality: int, num_levels: int) -> int:
    return max(0, min(quality, num_levels - 1))


def safe_throughput(samples: Sequence[float], default: float = 1e6) -> float:
    """Harmonic mean of the recent throughput samples (robust to spikes)."""
    recent = [s for s in samples[-5:] if s > 0]
    if not recent:
        return default
    return len(recent) / sum(1.0 / s for s in recent)
