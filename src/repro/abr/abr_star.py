"""BOLA-SSIM and ABR* — VOXEL's QoE-optimizing ABR algorithms (§4.3).

Both are built on BOLA by replacing the candidate space and the utility:

**BOLA-SSIM** changes the utility function to the QoE metric and adds
partial-segment downloads: every manifest quality point (virtual quality
level) of every ladder level becomes a candidate, scored by BOLA with a
QoE-based utility.  Abandonment still discards and restarts, like BOLA.

**ABR\\*** extends BOLA-SSIM with VOXEL's smart segment abandonment: when
a download falls behind, it *truncates* the request and keeps the partial
segment (the reliable part — I-frame and headers — has already arrived,
so the partial segment decodes), moving on to the next segment instead of
re-spending the bandwidth.  It also applies a *bandwidth-safety factor*
to the throughput estimate; §5.2 tunes this single parameter from 1.0
(aggressive, Fig. 17) to slightly below 1.0 for highly varying traces
(Fig. 6d).

The utility of a candidate is its normalized QoE score, shifted so the
cheapest full-segment option sits at zero — BOLA then maximizes the
time-averaged QoE directly.  Because scores saturate toward 1.0, the
utility has strongly diminishing returns in bytes, which is what lets
BOLA trade a sliver of SSIM for much less rebuffering.  The metric is
pluggable (SSIM, VMAF, PSNR): scores are converted through the metric and
normalized, making the algorithm QoE-metric agnostic.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.abr.base import (
    ControlAction,
    DecisionContext,
    DownloadProgress,
)
from repro.abr.bola import Bola, Candidate
from repro.qoe.metrics import SSIM, QoEMetric

def qoe_utility(score: float, metric: QoEMetric = SSIM) -> float:
    """Utility of a QoE score under the given metric.

    The utility is the normalized metric value itself: BOLA then
    maximizes the time-averaged QoE score directly, which is exactly the
    "optimize for QoE" reframing of §4.3.  (A log-scaled variant was
    tried and rejected: ``-ln(1-s)`` explodes as scores approach 1.0, so
    the top two ladder rungs dwarf the rest of the utility range and
    starve every mid-ladder candidate.)
    """
    return metric.normalize(metric.from_ssim(score))


class BolaSsim(Bola):
    """BOLA with a QoE-metric utility and partial-download candidates."""

    name = "bola_ssim"

    def __init__(
        self,
        metric: QoEMetric = SSIM,
        min_virtual_target_s: float = 12.0,
        enable_abandonment: bool = True,
        feasibility_factor: Optional[float] = 1.1,
    ):
        # BOLA-SSIM is deliberately more aggressive than BOLA ("obtains
        # its SSIM advantage by using available bandwidth more
        # aggressively, and with more download options, than BOLA" — §5.2
        # / Fig. 10), hence the >1 feasibility factor.
        super().__init__(
            min_virtual_target_s=min_virtual_target_s,
            enable_abandonment=enable_abandonment,
            feasibility_factor=feasibility_factor,
        )
        self.metric = metric

    def _candidates_key(self) -> Optional[tuple]:
        # The candidate utilities depend on the QoE metric, so instances
        # configured with different metrics must not share cache rows.
        return (type(self), self.metric)

    def candidates(self, ctx: DecisionContext) -> List[Candidate]:
        options: List[Candidate] = []
        for quality in range(ctx.num_levels):
            entry = ctx.entry(quality)
            points = entry.quality_points or ()
            if not ctx.voxel_capable or not points:
                options.append(
                    Candidate(
                        quality=quality,
                        size_bytes=entry.total_bytes,
                        utility=qoe_utility(entry.pristine_score, self.metric),
                        expected_score=entry.pristine_score,
                    )
                )
                continue
            for point in points:
                target = None if point.bytes >= entry.total_bytes else point.bytes
                options.append(
                    Candidate(
                        quality=quality,
                        size_bytes=point.bytes,
                        utility=qoe_utility(point.score, self.metric),
                        expected_score=point.score,
                        target_bytes=target,
                    )
                )
        # Shift utilities so the cheapest *full-segment* option sits at
        # zero (BOLA requires non-negative utilities with the worst
        # useful option at 0).  Anchoring at the worst overall candidate
        # would let deeply-dropped low-level virtual points — useful only
        # as emergency fallbacks — flatten the whole utility scale.
        full_utilities = [
            o.utility for o in options if o.target_bytes is None
        ]
        min_utility = min(full_utilities) if full_utilities else min(
            o.utility for o in options
        )
        # Candidates scoring below the cheapest full segment are dropped:
        # a heavily-truncated low-level variant is never a better *plan*
        # than the full lowest level (mid-download truncation still
        # realizes such outcomes when the network collapses).
        shifted = [
            Candidate(
                quality=o.quality,
                size_bytes=o.size_bytes,
                utility=o.utility - min_utility,
                expected_score=o.expected_score,
                target_bytes=o.target_bytes,
            )
            for o in options
            if o.utility >= min_utility or o.target_bytes is None
        ]
        # Prune dominated candidates: anything bigger but no better than
        # another candidate wastes bandwidth.
        shifted.sort(key=lambda o: (o.size_bytes, -o.utility))
        pruned: List[Candidate] = []
        best_utility = -1.0
        for option in shifted:
            if option.utility > best_utility + 1e-12:
                pruned.append(option)
                best_utility = option.utility
        return pruned


class AbrStar(BolaSsim):
    """ABR*: BOLA-SSIM + keep-partial abandonment + bandwidth safety."""

    name = "abr_star"
    # control() continues unconditionally below 0.5 s of download signal
    # (the throughput sample is not trustworthy yet); advertising the
    # gate lets the session skip the per-round progress snapshot.
    control_min_elapsed_s = 0.5

    def __init__(
        self,
        metric: QoEMetric = SSIM,
        bandwidth_safety: float = 1.0,
        min_virtual_target_s: float = 12.0,
    ):
        super().__init__(
            metric=metric,
            min_virtual_target_s=min_virtual_target_s,
            enable_abandonment=True,
            feasibility_factor=bandwidth_safety,
        )
        if not 0.3 <= bandwidth_safety <= 1.5:
            raise ValueError(
                f"bandwidth safety factor {bandwidth_safety} out of range"
            )
        self.bandwidth_safety = bandwidth_safety

    def choose(self, ctx: DecisionContext):
        # Apply the safety factor by discounting the throughput the
        # decision sees; BOLA itself is buffer-driven, so the factor
        # mostly shapes the mid-download truncation behaviour below.
        decision = super().choose(ctx)
        decision.unreliable = True
        return decision

    def control(self, progress: DownloadProgress) -> ControlAction:
        """Smart segment abandonment: truncate, keep, move on (§4.3).

        If the remaining bytes cannot arrive before the playback deadline
        at the safety-discounted throughput, cap the request at what
        *can* arrive.  The reliable part is already in, so the partial
        segment stays decodable; unlike BOLA/BETA no data is discarded
        and no re-download happens.
        """
        if progress.throughput_bps <= 0 or progress.elapsed < 0.5:
            return ControlAction.cont()
        safe_bps = progress.throughput_bps * self.bandwidth_safety
        remaining_bits = (progress.bytes_total - progress.bytes_sent) * 8
        if remaining_bits <= 0:
            return ControlAction.cont()
        remaining_time = remaining_bits / safe_bps
        # Deadline: the buffer must not run dry.  A small slack absorbs
        # estimation noise so a healthy download is never cut.
        deadline = progress.buffer_level_s - 0.25
        if remaining_time <= deadline:
            return ControlAction.cont()
        # Keep what still fits before the deadline.
        affordable_bits = max(deadline, 0.0) * safe_bps
        new_limit = progress.bytes_sent + int(affordable_bits / 8)

        # §4.1's lower-bound rule, applied online: if the projected
        # partial would score *below* what a restart at a lower level
        # could still deliver in time, re-fetching wins — a partial
        # high-bitrate segment is only kept when it beats the complete
        # low-bitrate alternative.  Restarting is only considered early
        # in the download (the sunk bytes would be discarded).
        ctx = self._last_ctx
        projected = self._projected_score(ctx, progress.quality, new_limit)
        early = progress.bytes_sent < 0.7 * progress.bytes_total
        if ctx is not None and progress.quality > 0 and (
            self._abandoned_segment != progress.segment_index
        ):
            budget_bits = max(deadline, 0.0) * safe_bps * 0.8
            for quality in range(progress.quality - 1, -1, -1):
                entry = ctx.entry(quality)
                if entry.total_bytes * 8 <= budget_bits:
                    better = entry.pristine_score > projected + 0.01
                    # Late restarts (sunk bytes discarded) only when the
                    # projected partial is catastrophically worse.
                    rescue = entry.pristine_score > projected + 0.15
                    if (early and better) or rescue:
                        self._abandoned_segment = progress.segment_index
                        self._count_control("restart")
                        return ControlAction.restart(quality)
                    break

        # Truncation floor: cutting below a watchable score produces a
        # slideshow worth less than the brief stall it avoids — keep
        # downloading toward the floor score, but never buy quality with
        # more than a bounded amount of stall (rebuffering is still the
        # primary enemy, §4.2).
        max_floor_stall_s = 0.5
        if ctx is not None:
            entry_now = ctx.entry(progress.quality)
            points = entry_now.quality_points
            if points:
                pristine = points[0].score
                floor_score = min(0.62, pristine - 0.05)
                deepest = points[-1]
                target_bytes = entry_now.bytes_for_score(floor_score)
                if target_bytes is None:
                    # Below every advertised point: invert the linear
                    # extrapolation used by _projected_score.
                    target_bytes = int(
                        floor_score / max(deepest.score, 1e-6)
                        * deepest.bytes
                    )
                stall_cap_bytes = new_limit + int(
                    max_floor_stall_s * safe_bps / 8
                )
                floor_bytes = min(
                    target_bytes, stall_cap_bytes, progress.bytes_total
                )
                new_limit = max(new_limit, floor_bytes)
        if new_limit >= progress.bytes_total:
            return ControlAction.cont()
        self._count_control("truncate")
        return ControlAction.truncate(at_bytes=new_limit)

    @staticmethod
    def _projected_score(ctx, quality: int, byte_budget: int) -> float:
        """Expected score of a partial download of ``byte_budget`` bytes.

        Below the manifest's deepest virtual level the score is
        extrapolated linearly in delivered bytes (the manifest is silent
        below the §4.1 lower bound by construction).
        """
        if ctx is None:
            return 0.0
        entry = ctx.entry(quality)
        projected = entry.score_for_bytes(byte_budget)
        points = entry.quality_points
        if points and byte_budget < points[-1].bytes:
            projected *= byte_budget / max(points[-1].bytes, 1)
        return projected
