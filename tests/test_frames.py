"""Unit tests for the frame/segment structural model."""

import pytest

from repro.video.frames import (
    FRAME_HEADER_BYTES,
    Frame,
    FrameType,
    SegmentFrames,
    validate_reference_graph,
)


def _mini_segment():
    """I P B chain: B(2) -> P(1) -> I(0)."""
    frames = [
        Frame(0, FrameType.I, 1000),
        Frame(1, FrameType.P, 500, references=((0, 0.8),)),
        Frame(2, FrameType.B, 200, references=((1, 0.5), (0, 0.2))),
    ]
    return SegmentFrames(frames=frames, duration=0.125, fps=24.0)


class TestFrame:
    def test_header_bytes_capped_by_size(self):
        assert Frame(0, FrameType.I, 10).header_bytes == 10
        assert Frame(0, FrameType.I, 5000).header_bytes == FRAME_HEADER_BYTES

    def test_payload_is_size_minus_header(self):
        frame = Frame(1, FrameType.P, 500, references=((0, 0.5),))
        assert frame.payload_bytes == 500 - FRAME_HEADER_BYTES

    def test_references_frame(self):
        frame = Frame(2, FrameType.B, 100, references=((0, 0.3), (1, 0.4)))
        assert frame.references_frame(0)
        assert frame.references_frame(1)
        assert not frame.references_frame(2)


class TestSegmentFrames:
    def test_total_bytes(self):
        seg = _mini_segment()
        assert seg.total_bytes == 1700

    def test_i_frame_is_first(self):
        assert _mini_segment().i_frame.ftype is FrameType.I

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SegmentFrames(frames=[], duration=1.0, fps=24.0)

    def test_rejects_non_i_start(self):
        frames = [Frame(0, FrameType.P, 100, references=((0, 0.5),))]
        with pytest.raises(ValueError):
            SegmentFrames(frames=frames, duration=1.0, fps=24.0)

    def test_rejects_misindexed_frames(self):
        frames = [
            Frame(0, FrameType.I, 100),
            Frame(5, FrameType.B, 50, references=((0, 0.5),)),
        ]
        with pytest.raises(ValueError):
            SegmentFrames(frames=frames, duration=1.0, fps=24.0)

    def test_frame_offsets_contiguous(self):
        seg = _mini_segment()
        offsets = seg.frame_offsets()
        assert offsets[0] == (0, 1000)
        assert offsets[1] == (1000, 1500)
        assert offsets[2] == (1500, 1700)

    def test_inbound_references(self):
        seg = _mini_segment()
        inbound = seg.inbound_references()
        assert sorted(idx for idx, _ in inbound[0]) == [1, 2]
        assert [idx for idx, _ in inbound[1]] == [2]
        assert inbound[2] == []

    def test_referenced_and_unreferenced_partition(self):
        seg = _mini_segment()
        referenced = set(seg.referenced_indices())
        unreferenced = set(seg.unreferenced_indices())
        assert referenced | unreferenced == {0, 1, 2}
        assert referenced & unreferenced == set()
        assert 2 in unreferenced

    def test_transitive_weight_orders_by_importance(self):
        seg = _mini_segment()
        influence = seg.transitive_reference_weight()
        assert influence[0] > influence[1] > influence[2]
        assert influence[2] == 0.0

    def test_transitive_weight_includes_indirect_paths(self):
        # B(2) references P(1) with 0.5; P(1) references I(0) with 0.8.
        # I's influence includes the transitive 0.8 * (1 + 0.5) plus the
        # direct 0.2 from B.
        seg = _mini_segment()
        influence = seg.transitive_reference_weight()
        expected_i = 0.2 * (1 + 0.0) + 0.8 * (1 + influence[1])
        assert influence[0] == pytest.approx(expected_i)

    def test_getitem_and_iter(self):
        seg = _mini_segment()
        assert seg[1].ftype is FrameType.P
        assert len(list(seg)) == len(seg) == 3


class TestValidation:
    def test_valid_graph_passes(self):
        validate_reference_graph(_mini_segment().frames)

    def test_i_frame_with_references_fails(self):
        frames = [Frame(0, FrameType.I, 100, references=((0, 0.5),))]
        with pytest.raises(ValueError, match="I-frame"):
            validate_reference_graph(frames)

    def test_p_frame_without_references_fails(self):
        frames = [Frame(0, FrameType.I, 100), Frame(1, FrameType.P, 50)]
        with pytest.raises(ValueError, match="no references"):
            validate_reference_graph(frames)

    def test_self_reference_fails(self):
        frames = [
            Frame(0, FrameType.I, 100),
            Frame(1, FrameType.P, 50, references=((1, 0.5),)),
        ]
        with pytest.raises(ValueError, match="references itself"):
            validate_reference_graph(frames)

    def test_dangling_reference_fails(self):
        frames = [
            Frame(0, FrameType.I, 100),
            Frame(1, FrameType.P, 50, references=((7, 0.5),)),
        ]
        with pytest.raises(ValueError, match="missing frame"):
            validate_reference_graph(frames)

    def test_bad_weight_fails(self):
        frames = [
            Frame(0, FrameType.I, 100),
            Frame(1, FrameType.P, 50, references=((0, 1.5),)),
        ]
        with pytest.raises(ValueError, match="weight"):
            validate_reference_graph(frames)
