"""Guard rails for the raw-speed campaign.

Three families of checks keep the fast paths honest:

* Trace memoization — ``get_trace`` returns the same object on a cache
  hit, a bypassed build is value-identical to the cached one, and the
  bypass never populates the cache.
* ``__slots__`` lint — every hot-path record type stays slotted (a
  teammate adding a plain dataclass field silently reintroduces a
  per-instance ``__dict__`` and the memory/speed regression with it).
* Vectorized QoE — the numpy decode pipeline must equal the scalar
  reference bit for bit on randomized ladders and loss patterns, and
  the fleet merge must stay byte-identical at any worker count.
"""

from __future__ import annotations

import importlib
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.traces import clear_trace_cache, get_trace
from repro.qoe.model import decode_segment, decode_segment_scalar
from repro.video.content import ContentProfile
from repro.video.encoder import encode_video
from repro.video.ladder import QualityLevel


# ---------------------------------------------------------------------------
# Satellite: synthetic-trace memoization.
# ---------------------------------------------------------------------------
class TestTraceMemo:
    def test_cache_hit_returns_same_object(self):
        clear_trace_cache()
        first = get_trace("verizon", seed=3)
        second = get_trace("verizon", seed=3)
        assert second is first

    def test_bypass_is_value_identical_to_cached(self):
        clear_trace_cache()
        for name, kwargs in (
            ("verizon", {"seed": 3}),
            ("tmobile", {"seed": 9}),
            ("constant:12.5", {}),
            ("step", {}),
            ("wild", {"seed": 5}),
        ):
            cached = get_trace(name, **kwargs)
            fresh = get_trace(name, use_cache=False, **kwargs)
            assert fresh is not cached
            assert fresh.name == cached.name
            assert fresh.shift_s == cached.shift_s
            assert np.array_equal(fresh.samples_mbps, cached.samples_mbps)
            # Same lookups, not just same samples.
            for t in (0.0, 1.5, 17.0, 123.456):
                assert fresh.bandwidth_mbps(t) == cached.bandwidth_mbps(t)

    def test_bypass_does_not_populate_cache(self):
        clear_trace_cache()
        a = get_trace("verizon", seed=41, use_cache=False)
        b = get_trace("verizon", seed=41, use_cache=False)
        assert a is not b
        # The first cached call builds a third instance: nothing was
        # stored by the bypassed builds.
        c = get_trace("verizon", seed=41)
        assert c is not a and c is not b
        assert get_trace("verizon", seed=41) is c

    def test_distinct_params_are_distinct_entries(self):
        clear_trace_cache()
        assert get_trace("verizon", seed=1) is not get_trace("verizon", seed=2)
        assert get_trace("constant:10") is not get_trace("constant:20")


# ---------------------------------------------------------------------------
# Satellite: __slots__ lint over the hot event/record types.
# ---------------------------------------------------------------------------
# One entry per hot-path class.  Keep this list in sync when a new type
# joins a per-round or per-event path; the test fails if any of them
# (or any base) grows a per-instance __dict__ back.
HOT_SLOTTED_CLASSES = [
    ("repro.obs.events", "TraceEvent"),
    ("repro.network.link", "RoundOutcome"),
    ("repro.network.events", "Waiter"),
    ("repro.transport.base", "DownloadResult"),
    ("repro.transport.http", "SegmentDelivery"),
    ("repro.transport.resilience", "RetryContext"),
    ("repro.transport.cubic", "CubicState"),
    ("repro.abr.base", "ControlAction"),
    ("repro.abr.base", "Decision"),
    ("repro.abr.base", "DownloadProgress"),
    ("repro.abr.base", "DecisionContext"),
    ("repro.player.metrics", "SegmentRecord"),
    ("repro.player.session", "_PendingRepair"),
    ("repro.player.buffer", "PlaybackBuffer"),
    ("repro.video.frames", "Frame"),
]


class TestSlotsLint:
    @pytest.mark.parametrize("modname,clsname", HOT_SLOTTED_CLASSES)
    def test_hot_class_is_fully_slotted(self, modname, clsname):
        cls = getattr(importlib.import_module(modname), clsname)
        assert "__slots__" in cls.__dict__, (
            f"{modname}.{clsname} lost its __slots__ declaration"
        )
        for base in cls.__mro__[:-1]:  # everything below object
            assert "__slots__" in base.__dict__, (
                f"{modname}.{clsname}: base {base.__name__} is unslotted, "
                "so instances still carry a __dict__"
            )


# ---------------------------------------------------------------------------
# Satellite: vectorized QoE == scalar reference, bit for bit.
# ---------------------------------------------------------------------------
_SHORT_LADDER = [
    QualityLevel(0, (426, 240), 0.3),
    QualityLevel(1, (854, 480), 1.0),
    QualityLevel(2, (1920, 1080), 4.0),
    QualityLevel(3, (3840, 2160), 9.0),
]
_UNEVEN_LADDER = [
    QualityLevel(0, (256, 144), 0.12),
    QualityLevel(1, (426, 240), 0.2),
    QualityLevel(2, (640, 360), 0.9),
    QualityLevel(3, (1280, 720), 2.8),
    QualityLevel(4, (1920, 1080), 5.5),
    QualityLevel(5, (2560, 1440), 8.1),
]

_QOE_PROFILE = ContentProfile(
    name="qoeprop",
    title="QoE Property Video",
    genre="Test",
    segments=2,
    motion_mean=0.55,
    motion_spread=0.25,
    complexity=0.6,
    scene_cut_rate=1.5,
    size_std_mbps=2.0,
    static_fraction=0.1,
)


@pytest.fixture(scope="module", params=["paper", "short", "uneven"])
def ladder_video(request):
    ladder = {
        "paper": None,
        "short": _SHORT_LADDER,
        "uneven": _UNEVEN_LADDER,
    }[request.param]
    return encode_video(_QOE_PROFILE, ladder=ladder)


@st.composite
def _loss_pattern(draw):
    """Random (dropped, corruption, rate_ratio) against a 96-frame segment."""
    n = 96
    dropped = draw(
        st.lists(
            st.integers(min_value=1, max_value=n - 1),
            max_size=24, unique=True,
        )
    )
    corrupt_idx = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            max_size=16, unique=True,
        )
    )
    fracs = draw(
        st.lists(
            st.floats(min_value=-0.2, max_value=1.3, allow_nan=False),
            min_size=len(corrupt_idx), max_size=len(corrupt_idx),
        )
    )
    rate_ratio = draw(
        st.one_of(
            st.none(),
            st.floats(min_value=1.0, max_value=60.0, allow_nan=False),
        )
    )
    return dropped, dict(zip(corrupt_idx, fracs)), rate_ratio


class TestVectorizedQoEEquality:
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        data=_loss_pattern(),
        quality_pick=st.integers(min_value=0, max_value=10 ** 6),
        segment_pick=st.integers(min_value=0, max_value=1),
    )
    def test_bit_identical_on_randomized_ladders(
        self, ladder_video, data, quality_pick, segment_pick
    ):
        dropped, corruption, rate_ratio = data
        quality = quality_pick % ladder_video.num_levels
        segment = ladder_video.segment(quality, segment_pick)

        fast = decode_segment(
            segment, dropped=dropped, corruption=corruption,
            rate_ratio=rate_ratio,
        )
        slow = decode_segment_scalar(
            segment, dropped=dropped, corruption=corruption,
            rate_ratio=rate_ratio,
        )
        # Exact equality: same floats, same order of operations.
        assert np.array_equal(fast.frame_scores, slow.frame_scores)
        assert fast.score == slow.score
        assert fast.delivered_frames == slow.delivered_frames
        assert fast.distortion == slow.distortion

    def test_clean_decode_bit_identical(self, ladder_video):
        top = ladder_video.num_levels - 1
        segment = ladder_video.segment(top, 0)
        fast = decode_segment(segment)
        slow = decode_segment_scalar(segment)
        assert np.array_equal(fast.frame_scores, slow.frame_scores)
        assert fast.score == slow.score


# ---------------------------------------------------------------------------
# Satellite: worker-count byte-identity over the refactored hot path.
# ---------------------------------------------------------------------------
class TestWorkerByteIdentity:
    def test_fleet_workers_1_vs_4_byte_identical(self, tiny_prepared):
        from repro.experiments.fleet import ClientGroup, FleetSpec, run_fleet

        groups = tuple(
            ClientGroup(abr=abr, video=tiny_prepared.name,
                        partially_reliable=pr)
            for abr, pr in (("abr_star", True), ("bola", False))
        )
        spec = FleetSpec(
            clients=8, shards=4, groups=groups, trace="constant:40",
            seed=11,
        )
        prepared = {tiny_prepared.name: tiny_prepared}
        serial = run_fleet(spec, workers=1, prepared_map=prepared)
        parallel = run_fleet(spec, workers=4, prepared_map=prepared)
        assert json.dumps(serial.report(), sort_keys=True) == \
            json.dumps(parallel.report(), sort_keys=True)
        assert serial.fleet_hash() == parallel.fleet_hash()
