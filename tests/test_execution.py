"""Supervised execution layer: crash/hang/corrupt recovery, quarantine,
checkpoint/resume, clean interruption, and the fleet-level goldens.

The fault matrix drives every recovery path of
:func:`repro.experiments.execution.supervised_map` with the test-only
:class:`WorkerFaultInjector` across ``workers in {1, 4}``, and the
fleet goldens pin the headline guarantee: a run whose workers are
SIGKILLed (or that is interrupted and resumed from its checkpoint
spool) produces a ``fleet_hash`` byte-identical to an undisturbed run.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.experiments.execution import (
    CheckpointError,
    CheckpointStore,
    ExecutionError,
    ExecutionInterrupted,
    ExecutionPolicy,
    TaskFailure,
    WorkerFaultInjector,
    active_fault_injector,
    execute,
    fault_injection_active,
    install_worker_fault,
    supervised_map,
    validate_workers,
)
from repro.experiments.fleet import ClientGroup, FleetSpec, run_fleet
from repro.experiments.runner import fork_map

# Mirrors tests/test_fleet.py — an independent anchor for the claim
# that supervision, retry, and resume are invisible in clean output.
GOLDEN_TINY_FLEET_HASH = "2c4fd532f1416772"

#: Retries without sleeps: every recovery path, none of the waiting.
FAST = ExecutionPolicy(
    max_attempts=3, backoff_base_s=0.0, poll_interval_s=0.01
)


def _square(x):
    return x * x


def _sleepy_square(x):
    time.sleep(0.15)
    return x * x


@pytest.fixture
def fault():
    """Install a worker fault injector; always clear it afterwards."""
    def _install(**kwargs):
        install_worker_fault(WorkerFaultInjector(**kwargs))

    previous = install_worker_fault(None)
    yield _install
    install_worker_fault(previous)


def _tiny_spec(tiny_prepared, clients=12, shards=3, **over):
    over.setdefault("trace", "constant:40")
    groups = tuple(
        ClientGroup(
            abr=abr,
            video=tiny_prepared.name,
            partially_reliable=pr,
            buffer_segments=2,
        )
        for abr, pr in (
            ("abr_star", True), ("bola", True),
            ("abr_star", False), ("bola", False),
        )
    )
    return FleetSpec(
        clients=clients, shards=shards, groups=groups, **over
    )


# ---------------------------------------------------------------------------
# The worker-count contract.
# ---------------------------------------------------------------------------
class TestValidateWorkers:
    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            validate_workers(bad)

    @pytest.mark.parametrize("bad", [1.5, "2", None, True])
    def test_rejects_non_integers(self, bad):
        with pytest.raises(
            ValueError, match="workers must be a positive integer"
        ):
            validate_workers(bad)

    def test_accepts_positive_integers(self):
        assert validate_workers(1) == 1
        assert validate_workers(64) == 64

    def test_cli_fleet_rejects_zero_workers(self, capsys):
        from repro.cli import main

        assert main([
            "fleet", "--clients", "4", "--shards", "2",
            "--workers", "0", "--trace", "constant:40",
        ]) == 2
        err = capsys.readouterr().err
        assert "workers must be >= 1, got 0" in err
        assert "Traceback" not in err


class TestPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = ExecutionPolicy(backoff_base_s=0.5, backoff_max_s=1.6)
        assert policy.backoff_s(1) == 0.5
        assert policy.backoff_s(2) == 1.0
        assert policy.backoff_s(3) == 1.6

    @pytest.mark.parametrize("kwargs", [
        {"task_timeout_s": 0},
        {"max_attempts": 0},
        {"backoff_base_s": -1},
        {"poll_interval_s": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Supervised map: plain operation and order.
# ---------------------------------------------------------------------------
class TestSupervisedMap:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_serial_fold_order(self, workers):
        outcome = supervised_map(
            _square, range(10), workers=workers, policy=FAST
        )
        assert outcome.ok
        assert outcome.results == [i * i for i in range(10)]
        assert outcome.failures == []
        assert outcome.effective_workers == min(workers, 10)

    def test_empty_task_list(self):
        outcome = supervised_map(_square, [], workers=4, policy=FAST)
        assert outcome.ok and outcome.results == []

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels for"):
            supervised_map(
                _square, [1, 2], workers=1, policy=FAST, labels=["a"]
            )


# ---------------------------------------------------------------------------
# The injected fault matrix: every failure class, retried then healed.
# ---------------------------------------------------------------------------
class TestFaultMatrix:
    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize(
        "mode", ["kill", "hang", "corrupt", "error"]
    )
    def test_single_fault_is_retried_and_healed(
        self, fault, mode, workers
    ):
        fault(mode=mode, task=2, attempts=1)
        policy = ExecutionPolicy(
            task_timeout_s=0.5 if mode == "hang" else None,
            max_attempts=3, backoff_base_s=0.0, poll_interval_s=0.01,
        )
        outcome = supervised_map(
            _square, range(6), workers=workers, policy=policy
        )
        assert outcome.ok
        assert outcome.results == [i * i for i in range(6)]
        assert outcome.retries == 1

    @pytest.mark.parametrize("workers", [1, 4])
    def test_kill_names_the_signal(self, fault, workers):
        fault(mode="kill", task=1, attempts=99)
        outcome = supervised_map(
            _square, range(4), workers=workers, policy=FAST,
            labels=[f"shard {i}" for i in range(4)],
        )
        assert not outcome.ok
        (failure,) = outcome.failures
        assert failure.index == 1
        assert failure.label == "shard 1"
        assert failure.attempts == FAST.max_attempts
        assert failure.causes == ["crash(signal SIGKILL)"] * 3
        # Unaffected tasks completed; the quarantined slot is a hole.
        assert outcome.results[0] == 0 and outcome.results[2] == 4
        assert outcome.results[1] is None

    def test_hang_is_deadline_killed(self, fault):
        fault(mode="hang", task=0, attempts=99)
        policy = ExecutionPolicy(
            task_timeout_s=0.3, max_attempts=2, backoff_base_s=0.0,
            poll_interval_s=0.01,
        )
        t0 = time.monotonic()
        outcome = supervised_map(
            _square, range(3), workers=2, policy=policy
        )
        assert time.monotonic() - t0 < 10.0
        (failure,) = outcome.failures
        assert failure.causes == ["timeout(0.3s)"] * 2

    def test_corrupt_payload_is_classified(self, fault):
        fault(mode="corrupt", task=1, attempts=99)
        outcome = supervised_map(
            _square, range(3), workers=2,
            policy=ExecutionPolicy(
                max_attempts=1, backoff_base_s=0.0,
                poll_interval_s=0.01,
            ),
        )
        (failure,) = outcome.failures
        assert failure.causes[0].startswith("corrupt-result(")

    def test_worker_exception_carries_type_and_message(self):
        def worker(x):
            if x == 2:
                raise ValueError("poison cell")
            return x

        outcome = supervised_map(
            worker, range(4), workers=2,
            policy=ExecutionPolicy(
                max_attempts=1, backoff_base_s=0.0,
                poll_interval_s=0.01,
            ),
        )
        (failure,) = outcome.failures
        assert failure.causes == ["exception(ValueError: poison cell)"]

    def test_degraded_block_shape(self, fault):
        fault(mode="error", task=0, attempts=99)
        outcome = supervised_map(
            _square, range(3), workers=1, policy=FAST,
            labels=["shard 0", "shard 1", "shard 2"],
        )
        block = outcome.degraded()
        assert block == {
            "missing": [{
                "task": 0,
                "label": "shard 0",
                "attempts": 3,
                "causes": [
                    "exception(RuntimeError: injected worker fault "
                    "(task 0, attempt %d))" % a for a in (1, 2, 3)
                ],
            }],
            "completed": 2,
            "total": 3,
        }

    def test_clean_outcome_has_no_degraded_block(self):
        outcome = supervised_map(
            _square, range(3), workers=1, policy=FAST
        )
        assert outcome.degraded() is None


class TestExecutionError:
    def test_message_names_tasks_never_broken_pool(self, fault):
        fault(mode="kill", task=0, attempts=99)
        with pytest.raises(ExecutionError) as info:
            fork_map(
                _square, range(3), workers=2,
                labels=["shard alpha", "shard beta", "shard gamma"],
            )
        message = str(info.value)
        assert "shard alpha" in message
        assert "crash(signal SIGKILL)" in message
        assert "retry budget" in message
        assert "BrokenProcessPool" not in message
        assert info.value.failures[0].index == 0

    def test_describe_joins_causes(self):
        failure = TaskFailure(
            index=3, label="shard 3", attempts=2,
            causes=["crash(exit 1)", "timeout(5s)"],
        )
        assert failure.describe() == (
            "shard 3 failed after 2 attempt(s): "
            "crash(exit 1), timeout(5s)"
        )


# ---------------------------------------------------------------------------
# The fault injector itself.
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            WorkerFaultInjector(mode="explode")

    def test_applies_window(self):
        injector = WorkerFaultInjector(mode="kill", task=2, attempts=2)
        assert injector.applies(2, 1) and injector.applies(2, 2)
        assert not injector.applies(2, 3)
        assert not injector.applies(1, 1)

    def test_from_env_roundtrip(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_EXEC_FAULT",
            json.dumps({"mode": "hang", "task": 1, "attempts": 4}),
        )
        injector = active_fault_injector()
        assert injector == WorkerFaultInjector(
            mode="hang", task=1, attempts=4
        )
        assert fault_injection_active()

    def test_from_env_bad_json_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_FAULT", "{not json")
        with pytest.raises(ValueError, match="unparseable JSON"):
            active_fault_injector()

    def test_from_dict_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault injector"):
            WorkerFaultInjector.from_dict({"mode": "kill", "pid": 1})

    def test_inactive_by_default(self):
        assert active_fault_injector() is None
        assert not fault_injection_active()


# ---------------------------------------------------------------------------
# Checkpoint spool: atomic artifacts, resume, identity binding.
# ---------------------------------------------------------------------------
class TestCheckpointStore:
    def test_save_then_load(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"), "run-a", 3)
        store.save(1, {"rows": [1, 2]})
        assert store.load_completed() == {1: {"rows": [1, 2]}}

    def test_spool_layout_is_whole_files_only(self, tmp_path):
        root = tmp_path / "ckpt"
        store = CheckpointStore(str(root), "run-a", 3)
        store.save(0, "x")
        store.save(2, "y")
        assert sorted(os.listdir(root)) == [
            "manifest.json", "task-00000.json", "task-00002.json",
        ]

    def test_run_key_mismatch_rejected(self, tmp_path):
        root = str(tmp_path / "ckpt")
        CheckpointStore(root, "run-a", 3)
        with pytest.raises(CheckpointError, match="different run"):
            CheckpointStore(root, "run-b", 3)

    def test_task_count_mismatch_rejected(self, tmp_path):
        root = str(tmp_path / "ckpt")
        CheckpointStore(root, "run-a", 3)
        with pytest.raises(CheckpointError, match="different run"):
            CheckpointStore(root, "run-a", 4)

    def test_corrupt_entry_is_skipped_not_fatal(self, tmp_path):
        root = tmp_path / "ckpt"
        store = CheckpointStore(str(root), "run-a", 2)
        store.save(0, "good")
        (root / "task-00001.json").write_text("{torn write")
        assert store.load_completed() == {0: "good"}

    def test_unserializable_result_is_a_checkpoint_error(
        self, tmp_path
    ):
        store = CheckpointStore(str(tmp_path / "ckpt"), "run-a", 1)
        with pytest.raises(CheckpointError, match="JSON-serializable"):
            store.save(0, {"bad": {1, 2}})

    def test_preserves_dict_insertion_order(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ckpt"), "run-a", 1)
        store.save(0, {"zebra": 1, "alpha": 2})
        assert list(store.load_completed()[0]) == ["zebra", "alpha"]


class TestResume:
    def test_resume_skips_completed_work(self, tmp_path):
        root = str(tmp_path / "ckpt")
        first = supervised_map(
            _square, range(5), workers=2, policy=FAST,
            checkpoint=CheckpointStore(root, "run-a", 5),
        )
        assert first.ok and first.resumed == 0
        # A worker with different output proves nothing re-ran: every
        # value folds from the spool, not from the new function.
        second = supervised_map(
            lambda x: -x, range(5), workers=2, policy=FAST,
            checkpoint=CheckpointStore(root, "run-a", 5),
        )
        assert second.resumed == 5
        assert second.results == first.results

    def test_partial_spool_recomputes_only_the_hole(self, tmp_path):
        root = tmp_path / "ckpt"
        supervised_map(
            _square, range(4), workers=1, policy=FAST,
            checkpoint=CheckpointStore(str(root), "run-a", 4),
        )
        (root / "task-00002.json").unlink()
        outcome = supervised_map(
            lambda x: x + 100, range(4), workers=1, policy=FAST,
            checkpoint=CheckpointStore(str(root), "run-a", 4),
        )
        assert outcome.resumed == 3
        assert outcome.results == [0, 1, 102, 9]


# ---------------------------------------------------------------------------
# Interruption: pool teardown, honest resume hint, valid spool.
# ---------------------------------------------------------------------------
class TestInterrupt:
    def test_serial_interrupt_reports_progress(self):
        def worker(x):
            if x == 2:
                raise KeyboardInterrupt
            return x

        with pytest.raises(ExecutionInterrupted) as info:
            execute(worker, range(5), workers=1)
        assert info.value.completed == 2
        assert info.value.total == 5
        assert "--resume DIR" in info.value.resume_hint

    def test_sigint_mid_flight_leaves_resumable_spool(self, tmp_path):
        root = str(tmp_path / "ckpt")

        def raise_interrupt(signum, frame):
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGALRM, raise_interrupt)
        signal.setitimer(signal.ITIMER_REAL, 0.3)
        try:
            with pytest.raises(ExecutionInterrupted) as info:
                supervised_map(
                    _sleepy_square, range(8), workers=2, policy=FAST,
                    checkpoint=CheckpointStore(root, "run-a", 8),
                )
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        exc = info.value
        assert isinstance(exc, KeyboardInterrupt)
        assert exc.completed < exc.total == 8
        assert f"resume with --resume {root}" in exc.resume_hint
        assert exc.checkpoint_dir == root
        # The spool is valid and the resumed run completes the rest.
        outcome = supervised_map(
            _sleepy_square, range(8), workers=2, policy=FAST,
            checkpoint=CheckpointStore(root, "run-a", 8),
        )
        assert outcome.ok
        assert outcome.resumed == exc.completed
        assert outcome.results == [i * i for i in range(8)]


# ---------------------------------------------------------------------------
# execute(): serial fast path vs supervised dispatch.
# ---------------------------------------------------------------------------
class TestExecuteDispatch:
    def test_serial_fast_path_runs_in_process(self):
        seen = []

        def worker(x):
            seen.append(x)
            return x

        outcome = execute(worker, range(3), workers=1)
        assert outcome.results == [0, 1, 2]
        assert seen == [0, 1, 2]  # parent memory mutated: in-process

    def test_fault_injection_forces_fork_even_serially(self, fault):
        fault(mode="error", task=99, attempts=1)  # never fires
        seen = []

        def worker(x):
            seen.append(x)
            return x

        outcome = execute(worker, range(3), workers=1)
        assert outcome.results == [0, 1, 2]
        assert seen == []  # children mutated copies, not the parent

    def test_policy_forces_supervision(self):
        seen = []

        def worker(x):
            seen.append(x)
            return x

        outcome = execute(worker, range(2), workers=1, policy=FAST)
        assert outcome.results == [0, 1]
        assert seen == []


# ---------------------------------------------------------------------------
# Fleet-level goldens: the headline byte-identity guarantees.
# ---------------------------------------------------------------------------
class TestFleetResilience:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_sigkilled_worker_fleet_matches_golden(
        self, fault, tiny_prepared, workers
    ):
        fault(mode="kill", task=1, attempts=2)
        result = run_fleet(
            _tiny_spec(tiny_prepared),
            workers=workers,
            prepared_map={tiny_prepared.name: tiny_prepared},
            policy=FAST,
        )
        assert result.degraded is None
        assert result.fleet_hash() == GOLDEN_TINY_FLEET_HASH

    def test_interrupted_then_resumed_matches_uninterrupted(
        self, fault, tiny_prepared, tmp_path
    ):
        root = str(tmp_path / "ckpt")
        spec = _tiny_spec(tiny_prepared)
        prepared = {tiny_prepared.name: tiny_prepared}
        # First run dies on shard 1 with its budget exhausted: the
        # other shards' artifacts land in the spool, the report is
        # degraded but valid, and the failure names the shard.
        fault(mode="error", task=1, attempts=99)
        broken = run_fleet(
            spec, workers=2, prepared_map=prepared,
            policy=ExecutionPolicy(
                max_attempts=2, backoff_base_s=0.0,
                poll_interval_s=0.01,
            ),
            checkpoint_dir=root, strict=False,
        )
        assert broken.degraded is not None
        assert broken.degraded["completed"] == 2
        assert broken.degraded["total"] == 3
        assert broken.degraded["missing"][0]["label"] == "shard 1"
        assert "degraded" in broken.report()
        # Healed rerun against the same spool: only shard 1 runs, and
        # the merged artifact is byte-identical to a clean campaign.
        install_worker_fault(None)
        resumed = run_fleet(
            spec, workers=2, prepared_map=prepared,
            checkpoint_dir=root,
        )
        assert resumed.resumed == 2
        assert resumed.degraded is None
        assert "degraded" not in resumed.report()
        assert resumed.fleet_hash() == GOLDEN_TINY_FLEET_HASH

    def test_checkpoint_dir_bound_to_spec(
        self, tiny_prepared, tmp_path
    ):
        root = str(tmp_path / "ckpt")
        prepared = {tiny_prepared.name: tiny_prepared}
        run_fleet(
            _tiny_spec(tiny_prepared), prepared_map=prepared,
            checkpoint_dir=root,
        )
        with pytest.raises(CheckpointError, match="different run"):
            run_fleet(
                _tiny_spec(tiny_prepared, seed=99),
                prepared_map=prepared, checkpoint_dir=root,
            )
