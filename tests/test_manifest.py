"""Tests for the VOXEL-extended DASH manifest."""

import pytest

from repro.prep.manifest import (
    QualityPoint,
    Representation,
    SegmentEntry,
    VoxelManifest,
    _parse_attrs,
    _ranges_from_str,
    _ranges_to_str,
)
from repro.prep.ranking import Ordering


def _entry(index=0, quality=5):
    return SegmentEntry(
        index=index,
        quality=quality,
        media_range=(1000, 5000),
        duration=4.0,
        reliable_size=600,
        ordering=Ordering.QOE_RANK,
        frame_order=(2, 1, 3),
        quality_points=(
            QualityPoint(0.999, 4, 4000),
            QualityPoint(0.99, 3, 3000),
            QualityPoint(0.95, 2, 2000),
        ),
        reliable_ranges=((1000, 1500), (1500, 1532)),
        unreliable_ranges=((1532, 2500), (2500, 3600), (3600, 5000)),
    )


class TestQualityPoint:
    def test_serialize_parse_roundtrip(self):
        point = QualityPoint(0.9876, 42, 123456)
        assert QualityPoint.parse(point.serialize()) == point

    def test_parse_format(self):
        point = QualityPoint.parse("0.9900:49:4303546")
        assert point.score == pytest.approx(0.99)
        assert point.frames == 49
        assert point.bytes == 4303546


class TestRanges:
    def test_roundtrip(self):
        ranges = [(0, 10), (20, 35), (100, 101)]
        assert _ranges_from_str(_ranges_to_str(ranges)) == ranges

    def test_empty(self):
        assert _ranges_from_str("") == []
        assert _ranges_to_str([]) == ""


class TestSegmentEntry:
    def test_total_bytes(self):
        assert _entry().total_bytes == 4000

    def test_pristine_score(self):
        assert _entry().pristine_score == pytest.approx(0.999)

    def test_score_for_bytes_picks_best_fitting(self):
        entry = _entry()
        assert entry.score_for_bytes(4000) == pytest.approx(0.999)
        assert entry.score_for_bytes(3500) == pytest.approx(0.99)
        assert entry.score_for_bytes(2999) == pytest.approx(0.95)
        # Below the smallest point: pessimistic estimate.
        assert entry.score_for_bytes(100) == pytest.approx(0.95)

    def test_bytes_for_score(self):
        entry = _entry()
        assert entry.bytes_for_score(0.99) == 3000
        assert entry.bytes_for_score(0.999) == 4000
        assert entry.bytes_for_score(1.0) is None

    def test_serialize_parse_roundtrip(self):
        entry = _entry()
        parsed = SegmentEntry.parse(entry.serialize(), quality=entry.quality)
        assert parsed == entry

    def test_basic_view_strips_voxel_metadata(self):
        basic = _entry().basic_view()
        assert basic.ordering is Ordering.ORIGINAL
        assert basic.frame_order == ()
        assert basic.unreliable_ranges == ()
        assert basic.reliable_size == basic.total_bytes
        assert basic.reliable_ranges == (basic.media_range,)
        # The pristine score survives for bookkeeping.
        assert basic.pristine_score == pytest.approx(0.999)


class TestManifest:
    def _manifest(self):
        reps = [
            Representation(
                quality=q,
                avg_bitrate_bps=1e6 * (q + 1),
                resolution=(640, 360),
                segments=[_entry(index=i, quality=q) for i in range(3)],
            )
            for q in range(2)
        ]
        return VoxelManifest(
            video="demo", segment_duration=4.0, representations=reps
        )

    def test_shape(self):
        m = self._manifest()
        assert m.num_levels == 2
        assert m.num_segments == 3
        assert m.duration == pytest.approx(12.0)

    def test_serialize_parse_roundtrip(self):
        m = self._manifest()
        parsed = VoxelManifest.parse(m.serialize())
        assert parsed.video == m.video
        assert parsed.num_levels == m.num_levels
        for q in range(m.num_levels):
            for i in range(m.num_segments):
                assert parsed.entry(q, i) == m.entry(q, i)

    def test_real_manifest_roundtrip(self, tiny_prepared):
        manifest = tiny_prepared.manifest
        parsed = VoxelManifest.parse(manifest.serialize())
        assert parsed.num_levels == manifest.num_levels
        entry = manifest.entry(12, 0)
        assert parsed.entry(12, 0).quality_points == entry.quality_points
        assert parsed.entry(12, 0).frame_order == entry.frame_order
        assert parsed.entry(12, 0).reliable_ranges == entry.reliable_ranges

    def test_basic_view(self):
        basic = self._manifest().basic_view()
        for rep in basic.representations:
            for entry in rep.segments:
                assert entry.frame_order == ()

    def test_metadata_bytes_positive(self, tiny_prepared):
        assert tiny_prepared.manifest.metadata_bytes() > 1000

    def test_segment_sizes(self):
        m = self._manifest()
        assert m.segment_sizes(0) == [4000, 4000, 4000]

    def test_parse_rejects_orphan_segment(self):
        text = (
            '<MPD video="x" segmentDuration="4.0">\n'
            + _entry().serialize()
            + "\n</MPD>"
        )
        with pytest.raises(ValueError, match="outside Representation"):
            VoxelManifest.parse(text)


class TestAttrParser:
    def test_parses_attributes(self):
        attrs = _parse_attrs('<Tag a="1" bcd="x y z" e="">')
        assert attrs == {"a": "1", "bcd": "x y z", "e": ""}
