"""Scenario spine: spec serialization, stable hashing, builder parity.

The golden tests here are the refactor's safety net: a session built
from a :class:`ScenarioSpec` through :class:`StackBuilder` must be
byte-identical to the historical hand-wiring (make_abr + get_trace +
SessionConfig + StreamingSession) for both transport backends.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.abr import make_abr
from repro.core.api import stream
from repro.core.build import StackBuilder, build_session
from repro.core.spec import (
    RELIABILITY_MODES,
    ScenarioSpec,
    reliability_mode,
)
from repro.network.traces import constant_trace, get_trace
from repro.obs.tracer import Tracer
from repro.player.session import SessionConfig, StreamingSession


# ---------------------------------------------------------------------------
# Serialization round-trips
# ---------------------------------------------------------------------------
def test_spec_json_round_trip_identity():
    spec = ScenarioSpec(
        video="bbb",
        abr="abr_star",
        abr_kwargs={"gamma": 5.0},
        trace="tmobile",
        seed=7,
        trace_shift_s=42.0,
        reliability="quic",
        buffer_segments=1,
        backend="packet",
        metric="vmaf",
    )
    clone = ScenarioSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.spec_hash() == spec.spec_hash()
    assert clone.to_json() == spec.to_json()


def test_spec_defaults_round_trip():
    spec = ScenarioSpec()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_spec_unknown_key_rejected():
    with pytest.raises(ValueError, match="unknown ScenarioSpec field"):
        ScenarioSpec.from_dict({"video": "bbb", "abr_name": "bola"})


def test_spec_is_frozen_and_hashable():
    spec = ScenarioSpec()
    with pytest.raises(AttributeError):
        spec.video = "ed"
    assert spec in {spec}


def test_with_override():
    spec = ScenarioSpec(abr="bola")
    other = spec.with_(abr="mpc", seed=3)
    assert other.abr == "mpc" and other.seed == 3
    assert spec.abr == "bola" and spec.seed == 0
    assert other.spec_hash() != spec.spec_hash()


def test_reliability_modes():
    assert reliability_mode(True) == "quic*"
    assert reliability_mode(False) == "quic"
    assert reliability_mode(True, force_reliable_payload=True) == "quic*-rel"
    for mode in RELIABILITY_MODES:
        spec = ScenarioSpec(reliability=mode)
        assert spec.partially_reliable == mode.startswith("quic*")
        assert spec.force_reliable_payload == mode.endswith("-rel")
    with pytest.raises(ValueError, match="unknown reliability"):
        ScenarioSpec(reliability="tcp").to_dict()


# ---------------------------------------------------------------------------
# Hash stability
# ---------------------------------------------------------------------------
def test_spec_hash_is_stable_across_processes():
    """The content hash must not depend on PYTHONHASHSEED or process."""
    spec = ScenarioSpec(abr="bola", trace="att", seed=3, buffer_segments=2)
    code = (
        "from repro.core.spec import ScenarioSpec;"
        "print(ScenarioSpec.from_json({!r}).spec_hash())".format(
            spec.to_json()
        )
    )
    hashes = set()
    for hash_seed in ("0", "12345"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        hashes.add(out.stdout.strip())
    assert hashes == {spec.spec_hash()}


def test_spec_hash_ignores_dict_insertion_order():
    a = ScenarioSpec.from_dict({"abr": "bola", "trace": "att"})
    b = ScenarioSpec.from_dict({"trace": "att", "abr": "bola"})
    assert a.spec_hash() == b.spec_hash()


def test_spec_hash_distinguishes_fields():
    base = ScenarioSpec()
    assert base.spec_hash() != base.with_(seed=1).spec_hash()
    assert base.spec_hash() != base.with_(backend="packet").spec_hash()


# ---------------------------------------------------------------------------
# Golden: builder output == historical hand-wiring
# ---------------------------------------------------------------------------
GOLDEN_SCENARIOS = [
    # (abr, reliability, backend) — the representative corners.
    ("bola", "quic", "round"),
    ("abr_star", "quic*", "round"),
    ("abr_star", "quic*", "packet"),
]


@pytest.mark.parametrize("abr,reliability,backend", GOLDEN_SCENARIOS)
def test_builder_matches_legacy_wiring(tiny_prepared, abr, reliability,
                                       backend):
    spec = ScenarioSpec(
        video="tinytest", abr=abr, trace="verizon", seed=0,
        reliability=reliability, backend=backend, buffer_segments=2,
    )
    built = StackBuilder(spec, prepared=tiny_prepared).build().run()

    # The pre-refactor wiring, spelled out by hand.
    legacy = StreamingSession(
        tiny_prepared,
        make_abr(abr, prepared=tiny_prepared),
        get_trace("verizon", seed=0),
        SessionConfig(
            buffer_segments=2,
            partially_reliable=reliability.startswith("quic*"),
            transport_backend=backend,
        ),
    ).run()

    assert built == legacy


def test_build_session_convenience(tiny_prepared):
    spec = ScenarioSpec(video="tinytest", abr="bola", trace="verizon")
    metrics = build_session(spec, prepared=tiny_prepared).run()
    assert metrics.video == "tinytest"
    assert len(metrics.records) == 6


def test_builder_validate_rejects_unknowns(tiny_prepared):
    good = ScenarioSpec(video="tinytest", abr="bola")
    StackBuilder(good, prepared=tiny_prepared).validate()
    with pytest.raises(KeyError, match="unknown ABR"):
        StackBuilder(good.with_(abr="nope"),
                     prepared=tiny_prepared).validate()
    with pytest.raises(KeyError, match="unknown trace"):
        StackBuilder(good.with_(trace="nope"),
                     prepared=tiny_prepared).validate()
    with pytest.raises(ValueError, match="backend"):
        StackBuilder(good.with_(backend="nope"),
                     prepared=tiny_prepared).validate()
    with pytest.raises(KeyError, match="unknown video"):
        StackBuilder(ScenarioSpec(video="nope")).validate()


def test_spec_hash_stamped_into_trace_header(tiny_prepared):
    spec = ScenarioSpec(video="tinytest", abr="bola", trace="verizon",
                        buffer_segments=1)
    tracer = Tracer()
    build_session(spec, prepared=tiny_prepared, tracer=tracer).run()
    starts = [e for e in tracer.events if e.type == "session_start"]
    assert len(starts) == 1
    assert starts[0].fields["spec_hash"] == spec.spec_hash()


# ---------------------------------------------------------------------------
# stream() compatibility shims
# ---------------------------------------------------------------------------
def test_stream_rejects_seed_with_explicit_trace(tiny_prepared):
    with pytest.raises(ValueError, match="seed"):
        stream(tiny_prepared, network_trace=constant_trace(10.0), seed=3)


def test_stream_explicit_trace_without_seed_ok(tiny_prepared):
    result = stream(tiny_prepared, network_trace=constant_trace(10.0))
    assert len(result.metrics.records) == 6


def test_stream_unexpected_kwarg_still_typeerror(tiny_prepared):
    with pytest.raises(TypeError, match="unexpected keyword"):
        stream(tiny_prepared, bogus=1)
