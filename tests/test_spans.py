"""Span profiler, perf ledger, and ``repro diff`` attribution."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.obs import spans
from repro.obs.diff import (
    PerfDiffFormatError,
    diff_bench,
    diff_files,
    diff_ledgers,
    format_diff,
)
from repro.obs.ledger import (
    build_ledger,
    collapsed_stacks,
    format_ledger,
    load_ledger,
    profile_trials,
    write_ledger,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import timed, timing_summary
from repro.obs.spans import SpanProfiler


@pytest.fixture(autouse=True)
def _clean_span_state():
    """No test leaks timers or an installed profiler."""
    yield
    spans.set_timers(False)
    spans.install(None)


class FakeClock:
    def __init__(self):
        self.now = 0.0


def _tree(prof: SpanProfiler):
    return prof.to_dict()["tree"].get("children", {})


class TestSpanProfiler:
    def test_tree_shape_and_counts(self):
        prof = SpanProfiler()
        for _ in range(3):
            with prof.span("segment", "player"):
                with prof.span("request", "player"):
                    pass
        tree = _tree(prof)
        assert set(tree) == {"segment"}
        assert tree["segment"]["count"] == 3
        assert tree["segment"]["children"]["request"]["count"] == 3
        assert prof.total_spans == 6
        assert prof.node_count == 2

    def test_self_excludes_children(self):
        prof = SpanProfiler()
        outer = prof.push("outer", "player")
        inner = prof.push("inner", "abr")
        prof.pop(inner)
        prof.pop(outer)
        nodes = {node.name: node for node, _ in prof._walk()}
        assert nodes["outer"].wall_s >= nodes["inner"].wall_s
        assert nodes["outer"].self_wall_s == pytest.approx(
            nodes["outer"].wall_s - nodes["inner"].wall_s, abs=1e-9
        )

    def test_sim_plane_uses_bound_clock(self):
        clock = FakeClock()
        prof = SpanProfiler(clock=clock)
        frame = prof.push("round", "transport")
        clock.now = 2.5
        prof.pop(frame)
        assert _tree(prof)["round"]["sim_s"] == pytest.approx(2.5)

    def test_span_pushed_before_clock_bind_has_no_sim_time(self):
        prof = SpanProfiler()
        frame = prof.push("early", "player")
        clock = FakeClock()
        clock.now = 9.0
        prof.bind_clock(clock)
        prof.pop(frame)
        assert _tree(prof)["early"]["sim_s"] == 0.0

    def test_pop_unwinds_to_handle(self):
        prof = SpanProfiler()
        outer = prof.push("outer", "player")
        prof.push("mid", "transport")
        prof.push("leaf", "link")
        prof.pop(outer)  # closes leaf, mid, then outer
        assert not prof._stack
        assert prof.total_spans == 3

    def test_pop_stale_handle_is_noop(self):
        first = SpanProfiler()
        stale = first.push("request", "player")
        first.finalize()
        # A generator finalized later must not unwind the new epoch.
        second = SpanProfiler()
        live = second.push("session", "player")
        second.pop(stale)
        assert second._stack == [live]
        second.pop(live)
        assert second.total_spans == 1

    def test_add_flat_top_level(self):
        prof = SpanProfiler()
        prof.add_flat("kernel.step", "kernel", 0.25, count=10)
        prof.add_flat("kernel.step", "kernel", 0.05, count=2)
        node = _tree(prof)["kernel.step"]
        assert node["count"] == 12
        assert prof.total_wall_s == pytest.approx(0.3)

    def test_finalize_closes_open_spans(self):
        prof = SpanProfiler()
        prof.push("a", "player")
        prof.push("b", "player")
        prof.finalize()
        assert not prof._stack
        assert prof.total_spans == 2

    def test_merge_and_serialize_roundtrip(self):
        a = SpanProfiler()
        with a.span("segment", "player"):
            with a.span("request", "player"):
                pass
        b = SpanProfiler()
        with b.span("segment", "player"):
            pass
        merged = SpanProfiler()
        merged.merge_dict(a.to_dict())
        merged.merge_dict(b.to_dict())
        tree = _tree(merged)
        assert tree["segment"]["count"] == 2
        assert tree["segment"]["children"]["request"]["count"] == 1
        # Round-trip through JSON preserves the hash (floats are exact).
        restored = SpanProfiler.from_dict(
            json.loads(json.dumps(merged.to_dict()))
        )
        assert restored.tree_hash() == merged.tree_hash()

    def test_deterministic_dict_excludes_wall_fields(self):
        prof = SpanProfiler()
        with prof.span("segment", "player"):
            pass
        prof.add_flat("kernel.step", "kernel", 0.1)

        def assert_no_wall(node):
            assert "wall_s" not in node
            assert "self_wall_s" not in node
            for child in node.get("children", {}).values():
                assert_no_wall(child)

        state = prof.to_dict(deterministic=True)
        assert state["spans_version"] == spans.SPANS_VERSION
        assert_no_wall(state["tree"])
        # The full dict does carry them.
        assert "wall_s" in prof.to_dict()["tree"]["children"]["segment"]

    def test_from_dict_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            SpanProfiler.from_dict({"spans_version": 99, "tree": {}})

    def test_subsystem_table_no_same_subsystem_double_count(self):
        clock = FakeClock()
        prof = SpanProfiler(clock=clock)
        outer = prof.push("segment", "player")
        clock.now = 1.0
        inner = prof.push("idle", "player")
        clock.now = 3.0
        prof.pop(inner)
        prof.pop(outer)
        table = prof.subsystem_table()
        # Cumulative counts the outer span once, not outer + nested.
        assert table["player"]["sim_s"] == pytest.approx(3.0)
        assert table["player"]["count"] == 2

    def test_collapsed_format(self):
        prof = SpanProfiler()
        node = prof.push("session", "player")
        prof.push("abr.choose", "abr")
        for _ in range(20000):
            pass
        prof.pop(node)
        collapsed = prof.collapsed()
        for line in collapsed.strip().splitlines():
            path, _, micros = line.rpartition(" ")
            assert path
            assert int(micros) > 0
        assert any(
            line.startswith("session;abr.choose ")
            for line in collapsed.splitlines()
        )


class TestTimedHooks:
    def test_timed_decorator_with_explicit_registry(self):
        registry = MetricsRegistry()

        @timed("decorated", registry=registry)
        def work(x):
            return x * 2

        spans.set_timers(True)
        assert work(3) == 6
        assert work(4) == 8
        assert registry.histogram("timing.decorated").count == 2

    def test_disabled_fast_path_writes_nothing(self):
        registry = MetricsRegistry()

        @timed("off", registry=registry)
        def work():
            return 1

        assert not spans.timers_enabled()
        assert work() == 1
        with timed("off2", registry=registry):
            pass
        assert registry.dump()["histograms"] == {}

    def test_timed_records_span_when_profiler_installed(self):
        with spans.profiled() as prof:
            with timed("abr.choose", subsystem="abr"):
                pass
        tree = _tree(prof)
        assert tree["abr.choose"]["subsystem"] == "abr"
        assert tree["abr.choose"]["count"] == 1

    def test_timed_record_span_false_skips_the_span(self):
        with spans.profiled() as prof:
            with timed("transport.download", record_span=False):
                pass
        assert _tree(prof) == {}

    def test_timing_summary_sorted_with_columns(self):
        registry = MetricsRegistry()
        spans.set_timers(True)
        for _ in range(3):
            with timed("slow", registry=registry):
                for _ in range(20000):
                    pass
        with timed("fast", registry=registry):
            pass
        text = timing_summary(registry)
        assert text.startswith("=== timing ===")
        for column in ("total=", "count=", "mean=", "max="):
            assert column in text
        # Sorted by total descending: the busy loop outranks the no-op.
        assert text.index("slow") < text.index("fast")

    def test_timing_summary_empty(self):
        assert "no samples" in timing_summary(MetricsRegistry())


#: Golden hash of the deterministic span tree for the pinned scenario
#: below (tinytest fixture, bola, constant:20, 2 reps, seed 0).
#: Regenerate after an intentional simulation or instrumentation
#: change:
#:   PYTHONPATH=src python -c "..."  # see test_golden_tree_hash
_GOLDEN_SPEC = dict(
    abr="bola", trace="constant:20", repetitions=2, seed=0
)
_GOLDEN_TREE_HASH = (
    "f55207c393a2ef452aec9b4516762b69f3277c78183e82cfb79c177211c5cbcb"
)


class TestRunnerDeterminism:
    def test_span_tree_identical_across_runs_and_workers(self, tiny_prepared):
        config = ExperimentConfig(
            video=tiny_prepared.name, **_GOLDEN_SPEC
        )
        hashes = []
        for workers in (1, 1, 4):
            prof, _, _ = profile_trials(
                config, prepared=tiny_prepared, workers=workers
            )
            assert prof.total_spans > 0
            hashes.append(prof.tree_hash())
        assert len(set(hashes)) == 1

    def test_golden_tree_hash(self, tiny_prepared):
        config = ExperimentConfig(
            video=tiny_prepared.name, **_GOLDEN_SPEC
        )
        prof, _, _ = profile_trials(config, prepared=tiny_prepared)
        assert prof.tree_hash() == _GOLDEN_TREE_HASH

    def test_profiling_state_propagates_to_forked_workers(
        self, tiny_prepared
    ):
        # Satellite: --profile at workers>1 must not be a silent no-op.
        # The forked path yields the same folded span totals as serial.
        config = ExperimentConfig(
            video=tiny_prepared.name, **_GOLDEN_SPEC
        )
        serial, _, _ = profile_trials(
            config, prepared=tiny_prepared, workers=1
        )
        forked, _, _ = profile_trials(
            config, prepared=tiny_prepared, workers=2
        )
        assert forked.total_spans == serial.total_spans > 0
        assert forked.total_sim_s == pytest.approx(serial.total_sim_s)


def _mini_profiler(abr_s: float, transport_s: float) -> SpanProfiler:
    prof = SpanProfiler()
    prof.add_flat("abr.choose", "abr", abr_s, count=10)
    prof.add_flat("transport.round", "transport", transport_s, count=20)
    return prof


class TestLedgerAndDiff:
    def test_ledger_fields(self, tmp_path):
        prof = _mini_profiler(0.2, 0.1)
        ledger = build_ledger(
            prof, wall_s=0.5, label="cell", spec_hash="abc123",
            meta=False,
        )
        assert ledger["ledger_version"] == 1
        assert ledger["wall_s"] == pytest.approx(0.5)
        assert ledger["subsystems"]["abr"]["self_wall_s"] == (
            pytest.approx(0.2)
        )
        assert ledger["subsystems"]["abr"]["self_pct"] == (
            pytest.approx(200.0 / 3.0)
        )
        assert ledger["hotspots"][0]["path"] == "abr.choose"
        assert ledger["deterministic"]["hash"] == prof.tree_hash()
        text = format_ledger(ledger)
        assert "perf ledger" in text and "abr" in text
        path = tmp_path / "ledger.json"
        write_ledger(str(path), ledger)
        assert load_ledger(str(path))["label"] == "cell"

    def test_load_ledger_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"ledger_version": 99}')
        with pytest.raises(ValueError, match="ledger_version"):
            load_ledger(str(path))

    def test_collapsed_stacks_from_ledger(self):
        prof = SpanProfiler()
        frame = prof.push("session", "player")
        prof.push("abr.choose", "abr")
        for _ in range(20000):
            pass
        prof.pop(frame)
        ledger = build_ledger(prof, wall_s=0.1, meta=False)
        lines = collapsed_stacks(ledger).strip().splitlines()
        assert lines
        for line in lines:
            path, _, micros = line.rpartition(" ")
            assert int(micros) > 0
        assert any(l.startswith("session;abr.choose ") for l in lines)

    def test_diff_ledgers_attributes_top_subsystem(self):
        base = build_ledger(
            _mini_profiler(0.2, 0.1), wall_s=0.5, meta=False
        )
        cur = build_ledger(
            _mini_profiler(0.6, 0.1), wall_s=1.0, meta=False
        )
        result = diff_ledgers(base, cur, threshold_pct=10.0)
        assert result["failed"]  # +100% wall
        assert result["top"] == "abr"
        assert result["wall_delta_pct"] == pytest.approx(100.0)
        markdown = format_diff(result)
        assert "`abr`" in markdown
        assert "FAIL" in markdown

    def test_diff_ledgers_under_threshold_passes(self):
        base = build_ledger(
            _mini_profiler(0.2, 0.1), wall_s=0.5, meta=False
        )
        cur = build_ledger(
            _mini_profiler(0.21, 0.1), wall_s=0.51, meta=False
        )
        result = diff_ledgers(base, cur, threshold_pct=10.0)
        assert not result["failed"]
        assert "ok" in format_diff(result)

    @staticmethod
    def _bench_payload(abr_s: float, wall_s: float) -> dict:
        return {
            "schema_version": 1,
            "benchmarks": {
                "macro.spans": {
                    "wall_s": wall_s,
                    "subsystems": {"abr": abr_s, "transport": 0.01},
                    "audit_ok": True,
                },
                "micro.decode_segment": {"wall_s": 0.05},
            },
        }

    def test_diff_bench_names_subsystem_in_markdown_and_json(self):
        base = self._bench_payload(abr_s=0.02, wall_s=0.1)
        cur = self._bench_payload(abr_s=0.35, wall_s=0.4)
        result = diff_bench(base, cur, threshold_pct=50.0)
        assert result["failed"]
        assert result["top"] == "abr"  # --json names the subsystem
        markdown = format_diff(result)
        assert "`abr`" in markdown  # markdown names it too
        assert "macro.spans" in markdown

    def test_diff_files_sniffs_and_rejects_mixed_kinds(self, tmp_path):
        bench_path = tmp_path / "bench.json"
        bench_path.write_text(
            json.dumps(self._bench_payload(0.02, 0.1))
        )
        ledger_path = tmp_path / "ledger.json"
        write_ledger(
            str(ledger_path),
            build_ledger(_mini_profiler(0.2, 0.1), 0.5, meta=False),
        )
        with pytest.raises(PerfDiffFormatError, match="cannot diff"):
            diff_files(str(bench_path), str(ledger_path))
        result = diff_files(str(bench_path), str(bench_path))
        assert result["kind"] == "bench" and not result["failed"]
        result = diff_files(str(ledger_path), str(ledger_path))
        assert result["kind"] == "ledger" and not result["failed"]

    def test_load_perf_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(PerfDiffFormatError, match="neither"):
            diff_files(str(path), str(path))


class TestCLI:
    def test_cli_diff_markdown_and_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        base = tmp_path / "a.json"
        cur = tmp_path / "b.json"
        write_ledger(
            str(base),
            build_ledger(_mini_profiler(0.2, 0.1), 0.5, meta=False),
        )
        write_ledger(
            str(cur),
            build_ledger(_mini_profiler(0.6, 0.1), 1.0, meta=False),
        )
        rc = main(["diff", str(base), str(cur), "--threshold", "10"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "`abr`" in out and "FAIL" in out
        rc = main(["diff", str(base), str(base)])
        assert rc == 0

    def test_cli_diff_json_names_subsystem(self, tmp_path, capsys):
        from repro.cli import main

        base = tmp_path / "a.json"
        cur = tmp_path / "b.json"
        write_ledger(
            str(base),
            build_ledger(_mini_profiler(0.2, 0.1), 0.5, meta=False),
        )
        write_ledger(
            str(cur),
            build_ledger(_mini_profiler(0.6, 0.1), 1.0, meta=False),
        )
        rc = main(["--json", "diff", str(base), str(cur)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["top"] == "abr"
        assert payload["failed"] is True

    def test_cli_profile_smoke(
        self, tiny_prepared, tmp_path, monkeypatch, capsys
    ):
        import importlib

        from repro.cli import main

        # repro.prep re-exports the prepare() function over the
        # submodule attribute; import_module reaches the real module.
        prepare_mod = importlib.import_module("repro.prep.prepare")
        monkeypatch.setattr(
            prepare_mod, "get_prepared", lambda name: tiny_prepared
        )
        out = tmp_path / "ledger.json"
        folded = tmp_path / "prof.folded"
        rc = main([
            "profile", tiny_prepared.name, "--trace", "constant:20",
            "--reps", "1", "--out", str(out),
            "--collapsed", str(folded),
        ])
        assert rc == 0
        assert "perf ledger" in capsys.readouterr().out
        ledger = load_ledger(str(out))
        assert ledger["spans"] > 0
        assert set(ledger["subsystems"]) >= {"abr", "transport", "player"}
        assert folded.read_text().strip()


class TestSweepLedgers:
    def test_sweep_profile_rows_worker_invariant(self, tiny_prepared):
        from repro.experiments.sweep import (
            SweepSpec,
            run_sweep,
            validate_rows,
        )

        spec = SweepSpec(
            base={
                "video": tiny_prepared.name,
                "repetitions": 1,
                "trace": "constant:20",
            },
            grid={"abr": ["bola", "abr_star"]},
        )
        prepared_map = {tiny_prepared.name: tiny_prepared}
        serial = run_sweep(
            spec, workers=1, prepared_map=prepared_map, profile=True
        )
        forked = run_sweep(
            spec, workers=2, prepared_map=prepared_map, profile=True
        )
        assert validate_rows(serial) == 2
        for row_s, row_f in zip(serial, forked):
            det_s = row_s["ledger"]["deterministic"]
            det_f = row_f["ledger"]["deterministic"]
            assert det_s["hash"] == det_f["hash"]
            assert det_s["tree"] == det_f["tree"]
            assert row_s["summary"] == row_f["summary"]
